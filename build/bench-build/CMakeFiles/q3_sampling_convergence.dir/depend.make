# Empty dependencies file for q3_sampling_convergence.
# This may be replaced when dependencies are built.
