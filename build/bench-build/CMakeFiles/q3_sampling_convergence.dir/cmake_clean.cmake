file(REMOVE_RECURSE
  "../bench/q3_sampling_convergence"
  "../bench/q3_sampling_convergence.pdb"
  "CMakeFiles/q3_sampling_convergence.dir/q3_sampling_convergence.cc.o"
  "CMakeFiles/q3_sampling_convergence.dir/q3_sampling_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q3_sampling_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
