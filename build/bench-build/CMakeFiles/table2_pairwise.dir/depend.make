# Empty dependencies file for table2_pairwise.
# This may be replaced when dependencies are built.
