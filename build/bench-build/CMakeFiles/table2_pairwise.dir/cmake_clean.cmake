file(REMOVE_RECURSE
  "../bench/table2_pairwise"
  "../bench/table2_pairwise.pdb"
  "CMakeFiles/table2_pairwise.dir/table2_pairwise.cc.o"
  "CMakeFiles/table2_pairwise.dir/table2_pairwise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
