file(REMOVE_RECURSE
  "../bench/fig2_reward_convergence"
  "../bench/fig2_reward_convergence.pdb"
  "CMakeFiles/fig2_reward_convergence.dir/fig2_reward_convergence.cc.o"
  "CMakeFiles/fig2_reward_convergence.dir/fig2_reward_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_reward_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
