# Empty dependencies file for fig2_reward_convergence.
# This may be replaced when dependencies are built.
