file(REMOVE_RECURSE
  "../bench/ablation_extensions"
  "../bench/ablation_extensions.pdb"
  "CMakeFiles/ablation_extensions.dir/ablation_extensions.cc.o"
  "CMakeFiles/ablation_extensions.dir/ablation_extensions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
