file(REMOVE_RECURSE
  "../bench/ablation_pool"
  "../bench/ablation_pool.pdb"
  "CMakeFiles/ablation_pool.dir/ablation_pool.cc.o"
  "CMakeFiles/ablation_pool.dir/ablation_pool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
