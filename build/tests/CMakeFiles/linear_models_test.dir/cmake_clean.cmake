file(REMOVE_RECURSE
  "CMakeFiles/linear_models_test.dir/linear_models_test.cc.o"
  "CMakeFiles/linear_models_test.dir/linear_models_test.cc.o.d"
  "linear_models_test"
  "linear_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
