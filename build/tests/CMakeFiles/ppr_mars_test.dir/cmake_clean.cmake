file(REMOVE_RECURSE
  "CMakeFiles/ppr_mars_test.dir/ppr_mars_test.cc.o"
  "CMakeFiles/ppr_mars_test.dir/ppr_mars_test.cc.o.d"
  "ppr_mars_test"
  "ppr_mars_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_mars_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
