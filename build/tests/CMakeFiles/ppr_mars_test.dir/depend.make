# Empty dependencies file for ppr_mars_test.
# This may be replaced when dependencies are built.
