file(REMOVE_RECURSE
  "CMakeFiles/replay_buffer_test.dir/replay_buffer_test.cc.o"
  "CMakeFiles/replay_buffer_test.dir/replay_buffer_test.cc.o.d"
  "replay_buffer_test"
  "replay_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
