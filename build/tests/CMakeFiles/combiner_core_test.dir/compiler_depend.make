# Empty compiler generated dependencies file for combiner_core_test.
# This may be replaced when dependencies are built.
