file(REMOVE_RECURSE
  "CMakeFiles/combiner_core_test.dir/combiner_core_test.cc.o"
  "CMakeFiles/combiner_core_test.dir/combiner_core_test.cc.o.d"
  "combiner_core_test"
  "combiner_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
