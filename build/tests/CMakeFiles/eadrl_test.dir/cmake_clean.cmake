file(REMOVE_RECURSE
  "CMakeFiles/eadrl_test.dir/eadrl_test.cc.o"
  "CMakeFiles/eadrl_test.dir/eadrl_test.cc.o.d"
  "eadrl_test"
  "eadrl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
