# Empty dependencies file for eadrl_test.
# This may be replaced when dependencies are built.
