# Empty dependencies file for nn_dense_test.
# This may be replaced when dependencies are built.
