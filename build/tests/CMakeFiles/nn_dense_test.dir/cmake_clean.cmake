file(REMOVE_RECURSE
  "CMakeFiles/nn_dense_test.dir/nn_dense_test.cc.o"
  "CMakeFiles/nn_dense_test.dir/nn_dense_test.cc.o.d"
  "nn_dense_test"
  "nn_dense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
