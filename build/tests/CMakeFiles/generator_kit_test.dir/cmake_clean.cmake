file(REMOVE_RECURSE
  "CMakeFiles/generator_kit_test.dir/generator_kit_test.cc.o"
  "CMakeFiles/generator_kit_test.dir/generator_kit_test.cc.o.d"
  "generator_kit_test"
  "generator_kit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_kit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
