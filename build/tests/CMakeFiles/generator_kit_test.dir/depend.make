# Empty dependencies file for generator_kit_test.
# This may be replaced when dependencies are built.
