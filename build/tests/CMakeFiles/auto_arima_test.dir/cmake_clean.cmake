file(REMOVE_RECURSE
  "CMakeFiles/auto_arima_test.dir/auto_arima_test.cc.o"
  "CMakeFiles/auto_arima_test.dir/auto_arima_test.cc.o.d"
  "auto_arima_test"
  "auto_arima_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_arima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
