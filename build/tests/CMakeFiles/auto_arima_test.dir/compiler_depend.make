# Empty compiler generated dependencies file for auto_arima_test.
# This may be replaced when dependencies are built.
