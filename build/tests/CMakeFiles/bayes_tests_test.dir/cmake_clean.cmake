file(REMOVE_RECURSE
  "CMakeFiles/bayes_tests_test.dir/bayes_tests_test.cc.o"
  "CMakeFiles/bayes_tests_test.dir/bayes_tests_test.cc.o.d"
  "bayes_tests_test"
  "bayes_tests_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayes_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
