# Empty dependencies file for bayes_tests_test.
# This may be replaced when dependencies are built.
