# Empty dependencies file for dynamic_selection_test.
# This may be replaced when dependencies are built.
