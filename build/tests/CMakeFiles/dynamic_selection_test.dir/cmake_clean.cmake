file(REMOVE_RECURSE
  "CMakeFiles/dynamic_selection_test.dir/dynamic_selection_test.cc.o"
  "CMakeFiles/dynamic_selection_test.dir/dynamic_selection_test.cc.o.d"
  "dynamic_selection_test"
  "dynamic_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
