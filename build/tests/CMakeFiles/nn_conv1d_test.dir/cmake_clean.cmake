file(REMOVE_RECURSE
  "CMakeFiles/nn_conv1d_test.dir/nn_conv1d_test.cc.o"
  "CMakeFiles/nn_conv1d_test.dir/nn_conv1d_test.cc.o.d"
  "nn_conv1d_test"
  "nn_conv1d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_conv1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
