file(REMOVE_RECURSE
  "CMakeFiles/stacking_test.dir/stacking_test.cc.o"
  "CMakeFiles/stacking_test.dir/stacking_test.cc.o.d"
  "stacking_test"
  "stacking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stacking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
