file(REMOVE_RECURSE
  "CMakeFiles/nn_regressors_test.dir/nn_regressors_test.cc.o"
  "CMakeFiles/nn_regressors_test.dir/nn_regressors_test.cc.o.d"
  "nn_regressors_test"
  "nn_regressors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_regressors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
