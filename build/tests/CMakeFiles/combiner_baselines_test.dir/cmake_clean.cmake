file(REMOVE_RECURSE
  "CMakeFiles/combiner_baselines_test.dir/combiner_baselines_test.cc.o"
  "CMakeFiles/combiner_baselines_test.dir/combiner_baselines_test.cc.o.d"
  "combiner_baselines_test"
  "combiner_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combiner_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
