# Empty dependencies file for combiner_baselines_test.
# This may be replaced when dependencies are built.
