# Empty dependencies file for ou_noise_test.
# This may be replaced when dependencies are built.
