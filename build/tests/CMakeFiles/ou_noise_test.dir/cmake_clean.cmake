file(REMOVE_RECURSE
  "CMakeFiles/ou_noise_test.dir/ou_noise_test.cc.o"
  "CMakeFiles/ou_noise_test.dir/ou_noise_test.cc.o.d"
  "ou_noise_test"
  "ou_noise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ou_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
