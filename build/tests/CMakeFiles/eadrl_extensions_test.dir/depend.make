# Empty dependencies file for eadrl_extensions_test.
# This may be replaced when dependencies are built.
