file(REMOVE_RECURSE
  "CMakeFiles/eadrl_extensions_test.dir/eadrl_extensions_test.cc.o"
  "CMakeFiles/eadrl_extensions_test.dir/eadrl_extensions_test.cc.o.d"
  "eadrl_extensions_test"
  "eadrl_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadrl_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
