# Empty compiler generated dependencies file for forest_gbm_test.
# This may be replaced when dependencies are built.
