file(REMOVE_RECURSE
  "CMakeFiles/forest_gbm_test.dir/forest_gbm_test.cc.o"
  "CMakeFiles/forest_gbm_test.dir/forest_gbm_test.cc.o.d"
  "forest_gbm_test"
  "forest_gbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_gbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
