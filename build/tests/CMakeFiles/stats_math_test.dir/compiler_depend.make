# Empty compiler generated dependencies file for stats_math_test.
# This may be replaced when dependencies are built.
