file(REMOVE_RECURSE
  "CMakeFiles/stats_math_test.dir/stats_math_test.cc.o"
  "CMakeFiles/stats_math_test.dir/stats_math_test.cc.o.d"
  "stats_math_test"
  "stats_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
