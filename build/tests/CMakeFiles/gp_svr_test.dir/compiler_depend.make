# Empty compiler generated dependencies file for gp_svr_test.
# This may be replaced when dependencies are built.
