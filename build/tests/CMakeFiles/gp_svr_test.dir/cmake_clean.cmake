file(REMOVE_RECURSE
  "CMakeFiles/gp_svr_test.dir/gp_svr_test.cc.o"
  "CMakeFiles/gp_svr_test.dir/gp_svr_test.cc.o.d"
  "gp_svr_test"
  "gp_svr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_svr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
