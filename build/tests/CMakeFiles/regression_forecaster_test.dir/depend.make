# Empty dependencies file for regression_forecaster_test.
# This may be replaced when dependencies are built.
