file(REMOVE_RECURSE
  "CMakeFiles/regression_forecaster_test.dir/regression_forecaster_test.cc.o"
  "CMakeFiles/regression_forecaster_test.dir/regression_forecaster_test.cc.o.d"
  "regression_forecaster_test"
  "regression_forecaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_forecaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
