file(REMOVE_RECURSE
  "CMakeFiles/forecaster_protocol_test.dir/forecaster_protocol_test.cc.o"
  "CMakeFiles/forecaster_protocol_test.dir/forecaster_protocol_test.cc.o.d"
  "forecaster_protocol_test"
  "forecaster_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecaster_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
