# Empty compiler generated dependencies file for forecaster_protocol_test.
# This may be replaced when dependencies are built.
