file(REMOVE_RECURSE
  "CMakeFiles/pcr_pls_test.dir/pcr_pls_test.cc.o"
  "CMakeFiles/pcr_pls_test.dir/pcr_pls_test.cc.o.d"
  "pcr_pls_test"
  "pcr_pls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcr_pls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
