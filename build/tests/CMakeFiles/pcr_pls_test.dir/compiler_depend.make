# Empty compiler generated dependencies file for pcr_pls_test.
# This may be replaced when dependencies are built.
