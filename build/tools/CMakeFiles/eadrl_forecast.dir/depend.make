# Empty dependencies file for eadrl_forecast.
# This may be replaced when dependencies are built.
