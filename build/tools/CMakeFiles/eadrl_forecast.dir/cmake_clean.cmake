file(REMOVE_RECURSE
  "CMakeFiles/eadrl_forecast.dir/eadrl_forecast.cc.o"
  "CMakeFiles/eadrl_forecast.dir/eadrl_forecast.cc.o.d"
  "eadrl_forecast"
  "eadrl_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadrl_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
