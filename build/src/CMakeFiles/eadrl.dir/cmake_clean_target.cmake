file(REMOVE_RECURSE
  "libeadrl.a"
)
