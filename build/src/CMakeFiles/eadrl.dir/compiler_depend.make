# Empty compiler generated dependencies file for eadrl.
# This may be replaced when dependencies are built.
