
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dynamic_selection.cc" "src/CMakeFiles/eadrl.dir/baselines/dynamic_selection.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/baselines/dynamic_selection.cc.o.d"
  "/root/repo/src/baselines/error_tracker.cc" "src/CMakeFiles/eadrl.dir/baselines/error_tracker.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/baselines/error_tracker.cc.o.d"
  "/root/repo/src/baselines/expert_aggregation.cc" "src/CMakeFiles/eadrl.dir/baselines/expert_aggregation.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/baselines/expert_aggregation.cc.o.d"
  "/root/repo/src/baselines/stacking.cc" "src/CMakeFiles/eadrl.dir/baselines/stacking.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/baselines/stacking.cc.o.d"
  "/root/repo/src/baselines/static_combiners.cc" "src/CMakeFiles/eadrl.dir/baselines/static_combiners.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/baselines/static_combiners.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/eadrl.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/eadrl.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/eadrl.dir/common/status.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/eadrl.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/combiner.cc" "src/CMakeFiles/eadrl.dir/core/combiner.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/core/combiner.cc.o.d"
  "/root/repo/src/core/eadrl.cc" "src/CMakeFiles/eadrl.dir/core/eadrl.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/core/eadrl.cc.o.d"
  "/root/repo/src/core/intervals.cc" "src/CMakeFiles/eadrl.dir/core/intervals.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/core/intervals.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/eadrl.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/exp/experiment.cc.o.d"
  "/root/repo/src/math/linalg.cc" "src/CMakeFiles/eadrl.dir/math/linalg.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/math/linalg.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/CMakeFiles/eadrl.dir/math/matrix.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/math/matrix.cc.o.d"
  "/root/repo/src/math/special.cc" "src/CMakeFiles/eadrl.dir/math/special.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/math/special.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/CMakeFiles/eadrl.dir/math/stats.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/math/stats.cc.o.d"
  "/root/repo/src/math/vec.cc" "src/CMakeFiles/eadrl.dir/math/vec.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/math/vec.cc.o.d"
  "/root/repo/src/models/arima.cc" "src/CMakeFiles/eadrl.dir/models/arima.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/arima.cc.o.d"
  "/root/repo/src/models/auto_arima.cc" "src/CMakeFiles/eadrl.dir/models/auto_arima.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/auto_arima.cc.o.d"
  "/root/repo/src/models/ets.cc" "src/CMakeFiles/eadrl.dir/models/ets.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/ets.cc.o.d"
  "/root/repo/src/models/forecaster.cc" "src/CMakeFiles/eadrl.dir/models/forecaster.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/forecaster.cc.o.d"
  "/root/repo/src/models/gbm.cc" "src/CMakeFiles/eadrl.dir/models/gbm.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/gbm.cc.o.d"
  "/root/repo/src/models/gp.cc" "src/CMakeFiles/eadrl.dir/models/gp.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/gp.cc.o.d"
  "/root/repo/src/models/linear.cc" "src/CMakeFiles/eadrl.dir/models/linear.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/linear.cc.o.d"
  "/root/repo/src/models/mars.cc" "src/CMakeFiles/eadrl.dir/models/mars.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/mars.cc.o.d"
  "/root/repo/src/models/naive.cc" "src/CMakeFiles/eadrl.dir/models/naive.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/naive.cc.o.d"
  "/root/repo/src/models/nn_regressors.cc" "src/CMakeFiles/eadrl.dir/models/nn_regressors.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/nn_regressors.cc.o.d"
  "/root/repo/src/models/pcr.cc" "src/CMakeFiles/eadrl.dir/models/pcr.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/pcr.cc.o.d"
  "/root/repo/src/models/pool.cc" "src/CMakeFiles/eadrl.dir/models/pool.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/pool.cc.o.d"
  "/root/repo/src/models/ppr.cc" "src/CMakeFiles/eadrl.dir/models/ppr.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/ppr.cc.o.d"
  "/root/repo/src/models/random_forest.cc" "src/CMakeFiles/eadrl.dir/models/random_forest.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/random_forest.cc.o.d"
  "/root/repo/src/models/regression_forecaster.cc" "src/CMakeFiles/eadrl.dir/models/regression_forecaster.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/regression_forecaster.cc.o.d"
  "/root/repo/src/models/svr.cc" "src/CMakeFiles/eadrl.dir/models/svr.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/svr.cc.o.d"
  "/root/repo/src/models/tree.cc" "src/CMakeFiles/eadrl.dir/models/tree.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/models/tree.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/eadrl.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/conv1d.cc" "src/CMakeFiles/eadrl.dir/nn/conv1d.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/conv1d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/CMakeFiles/eadrl.dir/nn/dense.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/dense.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/eadrl.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/eadrl.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/eadrl.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/eadrl.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/eadrl.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/param.cc" "src/CMakeFiles/eadrl.dir/nn/param.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/param.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/eadrl.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/nn/serialize.cc.o.d"
  "/root/repo/src/rl/ddpg.cc" "src/CMakeFiles/eadrl.dir/rl/ddpg.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/rl/ddpg.cc.o.d"
  "/root/repo/src/rl/env.cc" "src/CMakeFiles/eadrl.dir/rl/env.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/rl/env.cc.o.d"
  "/root/repo/src/rl/ou_noise.cc" "src/CMakeFiles/eadrl.dir/rl/ou_noise.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/rl/ou_noise.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/CMakeFiles/eadrl.dir/rl/replay_buffer.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/rl/replay_buffer.cc.o.d"
  "/root/repo/src/stats/bayes_tests.cc" "src/CMakeFiles/eadrl.dir/stats/bayes_tests.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/stats/bayes_tests.cc.o.d"
  "/root/repo/src/stats/ranking.cc" "src/CMakeFiles/eadrl.dir/stats/ranking.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/stats/ranking.cc.o.d"
  "/root/repo/src/ts/datasets.cc" "src/CMakeFiles/eadrl.dir/ts/datasets.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/datasets.cc.o.d"
  "/root/repo/src/ts/decompose.cc" "src/CMakeFiles/eadrl.dir/ts/decompose.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/decompose.cc.o.d"
  "/root/repo/src/ts/diagnostics.cc" "src/CMakeFiles/eadrl.dir/ts/diagnostics.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/diagnostics.cc.o.d"
  "/root/repo/src/ts/drift.cc" "src/CMakeFiles/eadrl.dir/ts/drift.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/drift.cc.o.d"
  "/root/repo/src/ts/embedding.cc" "src/CMakeFiles/eadrl.dir/ts/embedding.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/embedding.cc.o.d"
  "/root/repo/src/ts/generator_kit.cc" "src/CMakeFiles/eadrl.dir/ts/generator_kit.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/generator_kit.cc.o.d"
  "/root/repo/src/ts/io.cc" "src/CMakeFiles/eadrl.dir/ts/io.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/io.cc.o.d"
  "/root/repo/src/ts/metrics.cc" "src/CMakeFiles/eadrl.dir/ts/metrics.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/metrics.cc.o.d"
  "/root/repo/src/ts/scaler.cc" "src/CMakeFiles/eadrl.dir/ts/scaler.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/scaler.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/CMakeFiles/eadrl.dir/ts/series.cc.o" "gcc" "src/CMakeFiles/eadrl.dir/ts/series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
