file(REMOVE_RECURSE
  "CMakeFiles/example_energy_forecast.dir/energy_forecast.cc.o"
  "CMakeFiles/example_energy_forecast.dir/energy_forecast.cc.o.d"
  "example_energy_forecast"
  "example_energy_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_energy_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
