# Empty compiler generated dependencies file for example_energy_forecast.
# This may be replaced when dependencies are built.
