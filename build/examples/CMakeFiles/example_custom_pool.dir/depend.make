# Empty dependencies file for example_custom_pool.
# This may be replaced when dependencies are built.
