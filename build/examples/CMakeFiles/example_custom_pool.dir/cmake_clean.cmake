file(REMOVE_RECURSE
  "CMakeFiles/example_custom_pool.dir/custom_pool.cc.o"
  "CMakeFiles/example_custom_pool.dir/custom_pool.cc.o.d"
  "example_custom_pool"
  "example_custom_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
