file(REMOVE_RECURSE
  "CMakeFiles/example_stock_index.dir/stock_index.cc.o"
  "CMakeFiles/example_stock_index.dir/stock_index.cc.o.d"
  "example_stock_index"
  "example_stock_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stock_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
