# Empty compiler generated dependencies file for example_stock_index.
# This may be replaced when dependencies are built.
