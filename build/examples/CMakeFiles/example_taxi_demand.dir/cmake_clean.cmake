file(REMOVE_RECURSE
  "CMakeFiles/example_taxi_demand.dir/taxi_demand.cc.o"
  "CMakeFiles/example_taxi_demand.dir/taxi_demand.cc.o.d"
  "example_taxi_demand"
  "example_taxi_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_taxi_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
