# Empty dependencies file for example_taxi_demand.
# This may be replaced when dependencies are built.
