// Reproduces paper Table II: pairwise comparison between EA-DRL and every
// baseline, averaged over the 20 datasets (omega = 10). For each baseline we
// report EA-DRL's losses and wins (significant ones, probability > 95% under
// the Bayesian correlated t-test, in parentheses) plus each method's average
// rank +- stddev across datasets.
//
// Scale knobs (environment): EADRL_BENCH_LENGTH (default 400),
// EADRL_BENCH_EPISODES (default 40), EADRL_BENCH_NN_EPOCHS (default 6).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "exp/experiment.h"
#include "math/matrix.h"
#include "par/thread_pool.h"
#include "stats/bayes_tests.h"
#include "stats/ranking.h"
#include "ts/datasets.h"

namespace {

constexpr char kEadrl[] = "EA-DRL";

}  // namespace

int main() {
  using eadrl::FormatDouble;
  using eadrl::PadRight;
  namespace exp = eadrl::exp;

  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();

  std::printf("Table II: pairwise comparison, EA-DRL vs. baselines "
              "(20 datasets, length %zu, omega = %zu, threads = %zu)\n",
              length, opt.eadrl.omega, eadrl::par::DefaultThreads());

  std::vector<eadrl::ts::Series> datasets;
  for (const auto& spec : eadrl::ts::AllDatasetSpecs()) {
    auto series = eadrl::ts::MakeDataset(spec.id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) {
      std::printf("dataset %d failed: %s\n", spec.id,
                  series.status().ToString().c_str());
      return 1;
    }
    datasets.push_back(std::move(*series));
  }

  // The dataset x method grid runs on the default pool (EADRL_THREADS);
  // results come back in dataset order either way.
  std::vector<exp::DatasetResult> results = exp::RunSuite(datasets, opt);

  // method name -> per-dataset RMSE and per-dataset squared-error traces.
  std::vector<std::string> method_order;
  std::map<std::string, std::vector<double>> rmse;
  std::map<std::string, std::vector<eadrl::math::Vec>> sq_errors;
  for (const exp::DatasetResult& result : results) {
    for (const exp::MethodRun& run : result.methods) {
      if (rmse.find(run.name) == rmse.end()) {
        method_order.push_back(run.name);
      }
      rmse[run.name].push_back(run.rmse);
      sq_errors[run.name].push_back(run.squared_errors);
    }
  }

  const size_t n_datasets = rmse[kEadrl].size();

  // Rank matrix over all methods.
  eadrl::math::Matrix errors(n_datasets, method_order.size());
  for (size_t m = 0; m < method_order.size(); ++m) {
    for (size_t d = 0; d < n_datasets; ++d) {
      errors(d, m) = rmse[method_order[m]][d];
    }
  }
  auto ranks = eadrl::stats::SummarizeRanks(errors, method_order);
  std::map<std::string, eadrl::stats::RankSummary> rank_by_name;
  for (const auto& r : ranks) rank_by_name[r.method] = r;

  std::printf("\n%s %s %s %s\n", PadRight("Method", 10).c_str(),
              PadRight("Looses", 10).c_str(), PadRight("Wins", 10).c_str(),
              "Avg. Rank");
  std::printf("%s\n", std::string(52, '-').c_str());

  for (const std::string& method : method_order) {
    if (method == kEadrl) continue;
    int wins = 0, sig_wins = 0, losses = 0, sig_losses = 0;
    for (size_t d = 0; d < n_datasets; ++d) {
      const eadrl::math::Vec& ea = sq_errors[kEadrl][d];
      const eadrl::math::Vec& other = sq_errors[method][d];
      eadrl::math::Vec diffs(ea.size());
      for (size_t t = 0; t < ea.size(); ++t) diffs[t] = ea[t] - other[t];
      auto test = eadrl::stats::BayesianCorrelatedTTest(diffs,
                                                        /*correlation=*/0.1,
                                                        /*rope=*/0.0);
      if (!test.ok()) continue;
      if (rmse[kEadrl][d] < rmse[method][d]) {
        ++wins;
        if (test->p_a_better > 0.95) ++sig_wins;
      } else {
        ++losses;
        if (test->p_b_better > 0.95) ++sig_losses;
      }
    }
    const auto& rank = rank_by_name[method];
    std::string loss_s = eadrl::StrCat(losses, "(", sig_losses, ")");
    std::string win_s = eadrl::StrCat(wins, "(", sig_wins, ")");
    std::printf("%s %s %s %s +- %s\n", PadRight(method, 10).c_str(),
                PadRight(loss_s, 10).c_str(), PadRight(win_s, 10).c_str(),
                FormatDouble(rank.mean_rank, 2).c_str(),
                FormatDouble(rank.stddev_rank, 1).c_str());
  }
  const auto& ea_rank = rank_by_name[kEadrl];
  std::printf("%s %s %s %s +- %s\n", PadRight(kEadrl, 10).c_str(),
              PadRight("-", 10).c_str(), PadRight("-", 10).c_str(),
              FormatDouble(ea_rank.mean_rank, 2).c_str(),
              FormatDouble(ea_rank.stddev_rank, 1).c_str());
  return 0;
}
