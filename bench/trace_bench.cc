// Tracing-overhead micro-benchmarks (google-benchmark). The contract in
// obs/trace.h is that an un-traced Span construction is a single relaxed
// atomic load — roughly a nanosecond — so instrumentation can stay in hot
// paths unconditionally. The enabled cases price what turning tracing on
// actually costs per span (id allocation, clock reads, shard insert).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "obs/trace.h"

namespace {

// Hot-path contract: tracing disabled, the span must be ~free.
void BM_TraceDisabledSpan(benchmark::State& state) {
  eadrl::obs::SetTraceBuffer(nullptr);
  for (auto _ : state) {
    eadrl::obs::Span span("predict");
    benchmark::DoNotOptimize(span.armed());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TraceDisabledSpan);

void BM_TraceDisabledSpanWithGuardedAttr(benchmark::State& state) {
  eadrl::obs::SetTraceBuffer(nullptr);
  for (auto _ : state) {
    eadrl::obs::Span span("predict");
    if (span.armed()) span.SetAttr("step", 1);
    benchmark::DoNotOptimize(span.armed());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TraceDisabledSpanWithGuardedAttr);

void BM_TraceEnabledSpan(benchmark::State& state) {
  eadrl::obs::TraceBuffer buffer;
  eadrl::obs::SetTraceBuffer(&buffer);
  for (auto _ : state) {
    eadrl::obs::Span span("predict");
    benchmark::DoNotOptimize(span.armed());
  }
  eadrl::obs::SetTraceBuffer(nullptr);
  state.counters["recorded"] = static_cast<double>(buffer.size());
  state.counters["dropped"] = static_cast<double>(buffer.dropped());
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TraceEnabledSpan);

void BM_TraceEnabledSpanWithAttrs(benchmark::State& state) {
  eadrl::obs::TraceBuffer buffer;
  eadrl::obs::SetTraceBuffer(&buffer);
  for (auto _ : state) {
    eadrl::obs::Span span("predict");
    if (span.armed()) {
      span.SetAttr("step", 7);
      span.SetAttr("loss", 0.25);
    }
    benchmark::DoNotOptimize(span.armed());
  }
  eadrl::obs::SetTraceBuffer(nullptr);
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TraceEnabledSpanWithAttrs);

// Depth-3 nesting, the common shape on the training path
// (restart -> episode -> ddpg_update).
void BM_TraceEnabledNestedSpans(benchmark::State& state) {
  eadrl::obs::TraceBuffer buffer;
  eadrl::obs::SetTraceBuffer(&buffer);
  for (auto _ : state) {
    eadrl::obs::Span outer("restart");
    eadrl::obs::Span mid("episode");
    eadrl::obs::Span inner("ddpg_update");
    benchmark::DoNotOptimize(inner.armed());
  }
  eadrl::obs::SetTraceBuffer(nullptr);
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TraceEnabledNestedSpans);

}  // namespace

BENCHMARK_MAIN();
