#ifndef EADRL_BENCH_BENCH_UTIL_H_
#define EADRL_BENCH_BENCH_UTIL_H_

// Shared knobs for the paper-reproduction benches. Every bench is sized so
// the whole bench suite completes in minutes on one core; the environment
// variables below scale the experiments up to paper-fidelity sizes.

#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "exp/experiment.h"
#include "ts/datasets.h"

namespace eadrl::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// Dataset length per series. Paper-scale series are 900-1200 points
/// (EADRL_BENCH_LENGTH=0 keeps each dataset's default length).
inline size_t BenchLength() { return EnvSize("EADRL_BENCH_LENGTH", 400); }

/// The one seed every bench derives from (EADRL_BENCH_SEED overrides), so
/// the whole suite shifts coherently when re-seeded and BENCH snapshots
/// recorded at the same seed are comparable run to run.
inline uint64_t BenchSeed() { return EnvSize("EADRL_BENCH_SEED", 42); }

/// Deterministic per-benchmark RNG: `stream` keeps benchmarks in the same
/// binary decorrelated without each hardcoding its own magic seed.
inline Rng BenchRng(uint64_t stream) { return Rng(BenchSeed() + stream); }

/// The shared series fixture (synthetic dataset `id` at the bench seed) —
/// every suite that needs "a series" sizes and seeds it the same way.
inline ts::Series BenchSeries(int id = 2, size_t length = 400) {
  auto series = ts::MakeDataset(id, BenchSeed(), length);
  return *series;
}

/// Labels a benchmark with the thread count it ran at. Every suite reports
/// `threads:N` (N=1 for serial benches) so BENCH snapshot consumers can
/// filter or normalize by concurrency without parsing benchmark names.
template <typename State>
inline void RegisterThreads(State& state, size_t threads) {
  state.counters["threads"] = static_cast<double>(threads);
}

/// Standard experiment options used by the table benches.
inline exp::ExperimentOptions BenchOptions() {
  exp::ExperimentOptions opt;
  opt.seed = BenchSeed();
  opt.pool.nn_epochs = EnvSize("EADRL_BENCH_NN_EPOCHS", 6);
  opt.eadrl.omega = 10;  // paper Table II setting.
  opt.eadrl.max_episodes = EnvSize("EADRL_BENCH_EPISODES", 40);
  opt.eadrl.max_iterations = EnvSize("EADRL_BENCH_ITERATIONS", 60);
  opt.eadrl.early_stop_patience = 8;
  return opt;
}

}  // namespace eadrl::bench

#endif  // EADRL_BENCH_BENCH_UTIL_H_
