#ifndef EADRL_BENCH_BENCH_UTIL_H_
#define EADRL_BENCH_BENCH_UTIL_H_

// Shared knobs for the paper-reproduction benches. Every bench is sized so
// the whole bench suite completes in minutes on one core; the environment
// variables below scale the experiments up to paper-fidelity sizes.

#include <cstdlib>
#include <string>

#include "exp/experiment.h"

namespace eadrl::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// Dataset length per series. Paper-scale series are 900-1200 points
/// (EADRL_BENCH_LENGTH=0 keeps each dataset's default length).
inline size_t BenchLength() { return EnvSize("EADRL_BENCH_LENGTH", 400); }

/// Standard experiment options used by the table benches.
inline exp::ExperimentOptions BenchOptions() {
  exp::ExperimentOptions opt;
  opt.seed = 42;
  opt.pool.nn_epochs = EnvSize("EADRL_BENCH_NN_EPOCHS", 6);
  opt.eadrl.omega = 10;  // paper Table II setting.
  opt.eadrl.max_episodes = EnvSize("EADRL_BENCH_EPISODES", 40);
  opt.eadrl.max_iterations = EnvSize("EADRL_BENCH_ITERATIONS", 60);
  opt.eadrl.early_stop_patience = 8;
  return opt;
}

}  // namespace eadrl::bench

#endif  // EADRL_BENCH_BENCH_UTIL_H_
