// Ablation beyond the paper: ensemble quality vs. pool size m. The paper's
// future work proposes adding a pruning step before weighting; this bench
// quantifies the headroom by truncating the fitted 43-model pool to its
// first m columns and re-learning the EA-DRL policy.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"
#include "ts/metrics.h"

namespace {
constexpr int kDatasetIds[] = {4, 15};
constexpr size_t kPoolSizes[] = {5, 15, 43};
}  // namespace

int main() {
  namespace exp = eadrl::exp;
  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();
  // Full 43-model pool; EA-DRL policies are retrained per truncation.
  opt.eadrl.max_episodes = 25;

  std::printf("Ablation: EA-DRL test RMSE vs pool size m "
              "(first-m truncation of the 43-model pool)\n\n");
  std::printf("%s", eadrl::PadRight("dataset", 10).c_str());
  for (size_t m : kPoolSizes) {
    std::printf("%s",
                eadrl::PadRight(eadrl::StrCat("m=", m), 14).c_str());
  }
  std::printf("\n%s\n", std::string(52, '-').c_str());

  for (int id : kDatasetIds) {
    auto series = eadrl::ts::MakeDataset(id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    exp::PoolRun pool = exp::PreparePool(*series, opt);

    std::printf("%s", eadrl::PadRight(std::to_string(id), 10).c_str());
    for (size_t m : kPoolSizes) {
      size_t keep = std::min(m, pool.model_names.size());
      eadrl::math::Matrix val(pool.val_preds.rows(), keep);
      eadrl::math::Matrix test(pool.test_preds.rows(), keep);
      for (size_t t = 0; t < val.rows(); ++t) {
        for (size_t i = 0; i < keep; ++i) val(t, i) = pool.val_preds(t, i);
      }
      for (size_t t = 0; t < test.rows(); ++t) {
        for (size_t i = 0; i < keep; ++i) test(t, i) = pool.test_preds(t, i);
      }

      eadrl::core::EadrlCombiner combiner(opt.eadrl);
      eadrl::Status st = combiner.Initialize(val, pool.val_actuals);
      if (!st.ok()) return 1;
      eadrl::math::Vec preds(test.rows());
      for (size_t t = 0; t < test.rows(); ++t) {
        preds[t] = combiner.Predict(test.Row(t));
        combiner.Update(test.Row(t), pool.test_actuals[t]);
      }
      double rmse = eadrl::ts::Rmse(pool.test_actuals, preds);
      std::printf("%s",
                  eadrl::PadRight(eadrl::FormatDouble(rmse, 4), 14).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
