// Supporting micro-benchmarks (google-benchmark): the per-step costs behind
// Table III — policy inference, DDPG updates, replay sampling, drift
// detection and base-model prediction.

#include <benchmark/benchmark.h>

#include "baselines/dynamic_selection.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/eadrl.h"
#include "math/linalg.h"
#include "models/tree.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "rl/ddpg.h"
#include "rl/replay_buffer.h"

namespace {

void BM_DdpgActorInference(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = static_cast<size_t>(state.range(0));
  eadrl::rl::DdpgAgent agent(cfg);
  eadrl::math::Vec s(10, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Act(s));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgActorInference)->Arg(10)->Arg(43);

void BM_DdpgUpdate(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  eadrl::rl::DdpgAgent agent(cfg);
  eadrl::Rng rng = eadrl::bench::BenchRng(1);
  std::vector<eadrl::rl::Transition> batch;
  for (int i = 0; i < 16; ++i) {
    eadrl::rl::Transition t;
    t.state.assign(10, rng.Uniform());
    t.action.assign(43, 1.0 / 43.0);
    t.reward = rng.Uniform(0, 44);
    t.next_state.assign(10, rng.Uniform());
    batch.push_back(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(batch));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgUpdate);

void BM_ReplaySampleMedianSplit(benchmark::State& state) {
  eadrl::rl::ReplayBuffer buffer(5000);
  eadrl::Rng rng = eadrl::bench::BenchRng(2);
  for (int i = 0; i < 5000; ++i) {
    eadrl::rl::Transition t;
    t.state = {0.0};
    t.action = {1.0};
    t.reward = rng.Uniform(0, 44);
    t.next_state = {0.0};
    buffer.Add(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.Sample(
        16, eadrl::rl::SamplingStrategy::kMedianSplit, rng));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ReplaySampleMedianSplit);

void BM_ReplaySampleUniform(benchmark::State& state) {
  eadrl::rl::ReplayBuffer buffer(5000);
  eadrl::Rng rng = eadrl::bench::BenchRng(3);
  for (int i = 0; i < 5000; ++i) {
    eadrl::rl::Transition t;
    t.state = {0.0};
    t.action = {1.0};
    t.reward = rng.Uniform(0, 44);
    t.next_state = {0.0};
    buffer.Add(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buffer.Sample(16, eadrl::rl::SamplingStrategy::kUniform, rng));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ReplaySampleUniform);

void BM_TreePredict(benchmark::State& state) {
  eadrl::Rng rng = eadrl::bench::BenchRng(4);
  eadrl::math::Matrix x(500, 5);
  eadrl::math::Vec y(500);
  for (size_t i = 0; i < 500; ++i) {
    for (size_t j = 0; j < 5; ++j) x(i, j) = rng.Uniform(-1, 1);
    y[i] = x(i, 0) * x(i, 1);
  }
  eadrl::models::RegressionTree tree(eadrl::models::TreeParams{8, 3, 0});
  (void)tree.Fit(x, y);
  eadrl::math::Vec q{0.1, 0.2, 0.3, 0.4, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(q));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TreePredict);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  eadrl::Rng rng = eadrl::bench::BenchRng(5);
  eadrl::math::Matrix a(n, n);
  for (auto& v : a.data()) v = rng.Uniform(-1, 1);
  eadrl::math::Matrix spd = a.Transpose().MatMul(a);
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  eadrl::math::Vec b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eadrl::math::CholeskySolve(spd, b));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_CholeskySolve)->Arg(32)->Arg(128);

void BM_DemscOnlineStep(benchmark::State& state) {
  eadrl::Rng rng = eadrl::bench::BenchRng(6);
  const size_t m = 43;
  eadrl::math::Matrix preds(60, m);
  eadrl::math::Vec actuals(60);
  for (size_t t = 0; t < 60; ++t) {
    actuals[t] = rng.Uniform(0, 10);
    for (size_t i = 0; i < m; ++i) {
      preds(t, i) =
          actuals[t] + rng.Normal(0, 0.5 + 0.1 * static_cast<double>(i));
    }
  }
  eadrl::baselines::DemscCombiner demsc;
  (void)demsc.Initialize(preds, actuals);
  eadrl::math::Vec step(m, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(demsc.Predict(step));
    demsc.Update(step, 5.0);
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DemscOnlineStep);

// --- Observability hot-path overhead (the baseline BENCH_*.json tracks). ---

void BM_ObsCounterInc(benchmark::State& state) {
  eadrl::obs::Counter counter;
  for (auto _ : state) {
    counter.Inc();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(counter.Value());
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  eadrl::obs::Histogram hist(
      eadrl::obs::Histogram::DefaultLatencyBounds());
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v * 1.1;
    if (v > 1.0) v = 1e-6;
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(hist.Count());
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ObsHistogramObserve);

// Disabled-sink event emission: the acceptance bar is < 5 ns per no-op
// (one relaxed atomic load + a predictable branch; the field list is never
// materialized).
void BM_ObsDisabledEventEmission(benchmark::State& state) {
  eadrl::obs::SetTelemetrySink(nullptr);
  double value = 0.25;
  for (auto _ : state) {
    EADRL_TELEMETRY("bench_event", {"value", value}, {"step", size_t{1}},
                    {"name", "noop"});
    benchmark::ClobberMemory();
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ObsDisabledEventEmission);

void BM_ObsEnabledEventEmission(benchmark::State& state) {
  // Counterpart number for the sink-attached cost (in-memory sink).
  eadrl::obs::CollectingSink sink;
  eadrl::obs::SetTelemetrySink(&sink);
  double value = 0.25;
  for (auto _ : state) {
    EADRL_TELEMETRY("bench_event", {"value", value}, {"step", size_t{1}},
                    {"name", "noop"});
    if (sink.size() > 4096) (void)sink.TakeEvents();
  }
  eadrl::obs::SetTelemetrySink(nullptr);
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ObsEnabledEventEmission);

}  // namespace

BENCHMARK_MAIN();
