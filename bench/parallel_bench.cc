// Parallel-runtime benchmarks: pool fitting and per-step prediction fan-out
// at 1/2/4/8 threads against the serial baseline. Thread count 1 uses a
// serial ThreadPool (zero workers, inline Submit), so the Arg(1) rows ARE
// the pre-parallel-runtime baseline; speedup at Arg(N) is relative to them.
//
// Note: each benchmark constructs its own ThreadPool so the thread count is
// per-benchmark instead of the process-sticky default pool.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "models/pool.h"
#include "par/parallel.h"
#include "par/thread_pool.h"
#include "ts/datasets.h"

namespace {

// Fitting the paper's full 43-model pool. The acceptance bar for the
// parallel runtime: >= 2.5x over Arg(1) with 4 threads on a 4+-core box.
void BM_ParallelFitPool(benchmark::State& state) {
  const eadrl::ts::Series series = eadrl::bench::BenchSeries();
  eadrl::models::PoolConfig cfg;
  cfg.nn_epochs = 4;  // keep a single iteration tractable.
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  size_t fitted = 0;
  for (auto _ : state) {
    auto pool = eadrl::models::BuildPaperPool(cfg);
    auto result = eadrl::models::FitPool(std::move(pool), series, &exec);
    fitted = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["models_fitted"] = static_cast<double>(fitted);
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelFitPool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One online step of ensemble prediction: PredictNext across the fitted
// pool, then Observe with the realized value — the fan-out the CLI and the
// experiment loop run per time step.
void BM_ParallelPredictFanout(benchmark::State& state) {
  const eadrl::ts::Series series = eadrl::bench::BenchSeries();
  eadrl::models::PoolConfig cfg;
  cfg.nn_epochs = 4;
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  auto models =
      eadrl::models::FitPool(eadrl::models::BuildPaperPool(cfg), series,
                             &exec);
  const double next_value = series.values().back();
  for (auto _ : state) {
    eadrl::math::Vec preds = eadrl::par::ParallelMap<double>(
        models.size(), [&](size_t m) { return models[m]->PredictNext(); },
        {1, &exec});
    benchmark::DoNotOptimize(preds);
    eadrl::par::ParallelFor(
        0, models.size(), [&](size_t m) { models[m]->Observe(next_value); },
        {1, &exec});
  }
  state.counters["pool_size"] = static_cast<double>(models.size());
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelPredictFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
