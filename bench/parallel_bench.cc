// Parallel-runtime benchmarks: pool fitting and per-step prediction fan-out
// at 1/2/4/8 threads against the serial baseline. Thread count 1 uses a
// serial ThreadPool (zero workers, inline Submit), so the Arg(1) rows ARE
// the pre-parallel-runtime baseline; speedup at Arg(N) is relative to them.
//
// Note: each benchmark constructs its own ThreadPool so the thread count is
// per-benchmark instead of the process-sticky default pool.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "math/matrix.h"
#include "models/pool.h"
#include "nn/mlp.h"
#include "par/parallel.h"
#include "par/thread_pool.h"
#include "rl/ddpg.h"
#include "ts/datasets.h"

namespace {

// Fitting the paper's full 43-model pool. The acceptance bar for the
// parallel runtime: >= 2.5x over Arg(1) with 4 threads on a 4+-core box.
void BM_ParallelFitPool(benchmark::State& state) {
  const eadrl::ts::Series series = eadrl::bench::BenchSeries();
  eadrl::models::PoolConfig cfg;
  cfg.nn_epochs = 4;  // keep a single iteration tractable.
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  size_t fitted = 0;
  for (auto _ : state) {
    auto pool = eadrl::models::BuildPaperPool(cfg);
    auto result = eadrl::models::FitPool(std::move(pool), series, &exec);
    fitted = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["models_fitted"] = static_cast<double>(fitted);
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelFitPool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One online step of ensemble prediction: PredictNext across the fitted
// pool, then Observe with the realized value — the fan-out the CLI and the
// experiment loop run per time step.
void BM_ParallelPredictFanout(benchmark::State& state) {
  const eadrl::ts::Series series = eadrl::bench::BenchSeries();
  eadrl::models::PoolConfig cfg;
  cfg.nn_epochs = 4;
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  auto models =
      eadrl::models::FitPool(eadrl::models::BuildPaperPool(cfg), series,
                             &exec);
  const double next_value = series.values().back();
  for (auto _ : state) {
    eadrl::math::Vec preds = eadrl::par::ParallelMap<double>(
        models.size(), [&](size_t m) { return models[m]->PredictNext(); },
        {1, &exec});
    benchmark::DoNotOptimize(preds);
    eadrl::par::ParallelFor(
        0, models.size(), [&](size_t m) { models[m]->Observe(next_value); },
        {1, &exec});
  }
  state.counters["pool_size"] = static_cast<double>(models.size());
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelPredictFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Batched-kernel fan-out across the work-stealing pool: eight nets each
// answer a 64-row batch per step (the batched analogue of the per-member
// predict fan-out above — within a member the batch is one GEMM per layer,
// across members the runtime parallelizes).
void BM_ParallelBatchedForwardFanout(benchmark::State& state) {
  constexpr size_t kNets = 8;
  eadrl::Rng rng = eadrl::bench::BenchRng(20);
  std::vector<std::unique_ptr<eadrl::nn::Mlp>> nets;
  for (size_t m = 0; m < kNets; ++m) {
    nets.push_back(std::make_unique<eadrl::nn::Mlp>(
        std::vector<size_t>{10, 64, 64, 1}, eadrl::nn::Activation::kRelu,
        eadrl::nn::Activation::kIdentity, rng));
  }
  eadrl::math::Matrix x(64, 10);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    eadrl::par::ParallelFor(
        0, kNets,
        [&](size_t m) {
          benchmark::DoNotOptimize(nets[m]->ForwardBatch(x, /*train=*/false));
        },
        {1, &exec});
  }
  state.counters["nets"] = static_cast<double>(kNets);
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelBatchedForwardFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Concurrent batch-major DDPG updates: independent agents (one workspace
// each) training in parallel — the multi-seed / multi-dataset training
// fan-out. Within an agent the update is single-threaded by design; the
// scaling here is purely across agents.
void BM_ParallelBatchedDdpgUpdate(benchmark::State& state) {
  constexpr size_t kAgents = 8;
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  std::vector<std::unique_ptr<eadrl::rl::DdpgAgent>> agents;
  for (size_t a = 0; a < kAgents; ++a) {
    cfg.seed = 42 + a;
    agents.push_back(std::make_unique<eadrl::rl::DdpgAgent>(cfg));
  }
  eadrl::Rng rng = eadrl::bench::BenchRng(21);
  std::vector<eadrl::rl::Transition> batch;
  for (int i = 0; i < 16; ++i) {
    eadrl::rl::Transition t;
    t.state.assign(10, rng.Uniform());
    t.action.assign(43, 1.0 / 43.0);
    t.reward = rng.Uniform(0, 44);
    t.next_state.assign(10, rng.Uniform());
    batch.push_back(std::move(t));
  }
  eadrl::par::ThreadPool exec(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    eadrl::par::ParallelFor(
        0, kAgents,
        [&](size_t a) { benchmark::DoNotOptimize(agents[a]->Update(batch)); },
        {1, &exec});
  }
  state.counters["agents"] = static_cast<double>(kAgents);
  eadrl::bench::RegisterThreads(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ParallelBatchedDdpgUpdate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
