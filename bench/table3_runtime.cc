// Reproduces paper Table III: empirical online-runtime comparison between
// EA-DRL and DEMSC, its strongest competitor. Only the per-step online work
// is timed (policy inference + combination for EA-DRL; drift detection,
// committee maintenance + combination for DEMSC) — offline training is
// excluded on both sides, matching the paper's fairness note. The claim to
// reproduce is the ordering: EA-DRL's frozen policy is cheaper online than
// DEMSC's informed meta-updates.

#include <cstdio>

#include "baselines/dynamic_selection.h"
#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/stats.h"
#include "models/pool.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "ts/datasets.h"

namespace {

// Offline pool-fitting wall time at 1/2/4/8 threads on one representative
// dataset — the parallel-runtime speedup record that accompanies the online
// numbers below (which are per-step and single-threaded by design).
void PrintFitSpeedups(const eadrl::exp::ExperimentOptions& opt,
                      size_t length) {
  auto series = eadrl::ts::MakeDataset(2, eadrl::bench::BenchSeed(), length);
  if (!series.ok()) return;
  std::printf("Offline pool fit, dataset 2 (43 models, wall seconds):\n");
  double serial_seconds = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    eadrl::par::ThreadPool exec(threads);
    double seconds = 0.0;
    size_t fitted = 0;
    {
      eadrl::obs::ScopedTimer timer(nullptr, &seconds);
      fitted = eadrl::models::FitPool(
                   eadrl::models::BuildPaperPool(opt.pool), *series, &exec)
                   .size();
    }
    if (threads == 1) serial_seconds = seconds;
    std::printf("  threads %zu: %7.3f s  %2zu models  (speedup %.2fx)\n",
                threads, seconds, fitted,
                seconds > 0.0 ? serial_seconds / seconds : 0.0);
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  namespace exp = eadrl::exp;
  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();

  eadrl::math::Vec eadrl_times, demsc_times;

  std::printf("Table III: empirical online runtime, EA-DRL vs DEMSC "
              "(20 datasets, length %zu, EADRL_THREADS default %zu)\n\n",
              length, eadrl::par::DefaultThreads());

  PrintFitSpeedups(opt, length);

  for (const auto& spec : eadrl::ts::AllDatasetSpecs()) {
    auto series = eadrl::ts::MakeDataset(spec.id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    exp::PoolRun pool = exp::PreparePool(*series, opt);

    eadrl::core::EadrlConfig cfg = opt.eadrl;
    // Online runtime does not depend on how long the policy trained; keep
    // the offline phase short here.
    cfg.max_episodes = 15;
    eadrl::core::EadrlCombiner eadrl_combiner(cfg);
    exp::MethodRun ea = exp::RunCombiner(&eadrl_combiner, pool);

    eadrl::baselines::DemscCombiner demsc;
    exp::MethodRun dm = exp::RunCombiner(&demsc, pool);

    // Milliseconds over the whole test segment.
    eadrl_times.push_back(ea.runtime_seconds * 1e3);
    demsc_times.push_back(dm.runtime_seconds * 1e3);
    std::printf("  dataset %2d: EA-DRL %8.3f ms   DEMSC %8.3f ms\n",
                spec.id, ea.runtime_seconds * 1e3, dm.runtime_seconds * 1e3);
    std::fflush(stdout);
  }

  std::printf("\n%s %s\n", eadrl::PadRight("Method", 8).c_str(),
              "Avg. online runtime (ms over test segment)");
  std::printf("%s\n", std::string(52, '-').c_str());
  std::printf("%s %s +- %s\n", eadrl::PadRight("EA-DRL", 8).c_str(),
              eadrl::FormatDouble(eadrl::math::Mean(eadrl_times), 3).c_str(),
              eadrl::FormatDouble(eadrl::math::Stddev(eadrl_times), 3)
                  .c_str());
  std::printf("%s %s +- %s\n", eadrl::PadRight("DEMSC", 8).c_str(),
              eadrl::FormatDouble(eadrl::math::Mean(demsc_times), 3).c_str(),
              eadrl::FormatDouble(eadrl::math::Stddev(demsc_times), 3)
                  .c_str());
  std::printf("\npaper reports 37.93 +- 10.83 s (EA-DRL) vs 67.97 +- 27.4 s "
              "(DEMSC) on its testbed;\nthe reproduced claim is the "
              "ordering, not the absolute scale.\n");
  return 0;
}
