// Reproduces the paper's "On improving the convergence" experiment (Q3):
// the median-split diversity sampling of Sec. II-D (Eq. 4) vs. the uniform
// replay sampling of Lillicrap et al. The paper reports ~100 episodes to
// convergence with diversity sampling vs. >250 with uniform sampling, and a
// correspondingly lower offline wall-clock.
//
// To isolate the sampling mechanism this bench runs the *vanilla* collection
// regime of [Lillicrap et al.] (no counterfactual replay augmentation, which
// would diversify the buffer regardless of the sampling rule) and measures
// convergence as the first episode whose greedy-policy validation score
// reaches 95% of the run's final best.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "math/stats.h"
#include "ts/datasets.h"

namespace {

constexpr int kDatasetIds[] = {2, 9, 15};

// First episode whose eval score reaches `target`; censored at the curve
// length if it never does.
size_t EpisodesToReach(const eadrl::math::Vec& scores, double target) {
  for (size_t e = 0; e < scores.size(); ++e) {
    if (scores[e] >= target) return e + 1;
  }
  return scores.size();
}

}  // namespace

int main() {
  namespace exp = eadrl::exp;
  using Clock = std::chrono::steady_clock;

  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();
  opt.pool.fast_mode = true;
  opt.eadrl.max_episodes =
      eadrl::bench::EnvSize("EADRL_BENCH_EPISODES", 120);
  opt.eadrl.early_stop = false;
  opt.eadrl.restarts = 1;
  opt.eadrl.counterfactual_actions = 0;  // vanilla collection (see header).

  std::printf("Q3: replay sampling strategy vs. convergence "
              "(%zu episodes, vanilla collection)\n\n",
              opt.eadrl.max_episodes);
  std::printf("%s %s %s %s\n", eadrl::PadRight("dataset", 9).c_str(),
              eadrl::PadRight("sampling", 14).c_str(),
              eadrl::PadRight("episodes", 10).c_str(), "offline time (s)");
  std::printf("%s\n", std::string(52, '-').c_str());

  eadrl::math::Vec median_eps, uniform_eps, median_time, uniform_time;

  for (int id : kDatasetIds) {
    auto series = eadrl::ts::MakeDataset(id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    exp::PoolRun pool = exp::PreparePool(*series, opt);

    // Run both strategies over a couple of seeds and measure episodes to a
    // *common* per-seed target: 95% of the better run's improvement over
    // the shared initial policy (anchored at the worse initial score so the
    // comparison cannot be gamed by a lucky first episode).
    for (uint64_t seed : {42ull, 43ull}) {
      eadrl::math::Vec curves[2];
      double seconds[2];
      for (int s = 0; s < 2; ++s) {
        eadrl::core::EadrlConfig cfg = opt.eadrl;
        cfg.seed = seed;
        cfg.sampling = s == 0 ? eadrl::rl::SamplingStrategy::kMedianSplit
                              : eadrl::rl::SamplingStrategy::kUniform;
        eadrl::core::EadrlCombiner combiner(cfg);
        Clock::time_point start = Clock::now();
        eadrl::Status st = combiner.Initialize(pool.val_preds,
                                               pool.val_actuals);
        seconds[s] =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (!st.ok()) return 1;
        curves[s] = combiner.eval_scores();
      }
      double first = std::min(curves[0].front(), curves[1].front());
      double best = std::max(eadrl::math::Max(curves[0]),
                             eadrl::math::Max(curves[1]));
      double target = first + 0.95 * (best - first);

      for (int s = 0; s < 2; ++s) {
        size_t episodes = EpisodesToReach(curves[s], target);
        bool is_median = (s == 0);
        std::printf("%s %s %s %s\n",
                    eadrl::PadRight(
                        eadrl::StrCat(id, "/s", seed), 9)
                        .c_str(),
                    eadrl::PadRight(
                        is_median ? "median-split" : "uniform", 14)
                        .c_str(),
                    eadrl::PadRight(std::to_string(episodes), 10).c_str(),
                    eadrl::FormatDouble(seconds[s], 2).c_str());
        if (is_median) {
          median_eps.push_back(static_cast<double>(episodes));
          median_time.push_back(seconds[s]);
        } else {
          uniform_eps.push_back(static_cast<double>(episodes));
          uniform_time.push_back(seconds[s]);
        }
      }
    }
  }

  std::printf("%s\n", std::string(52, '-').c_str());
  std::printf("mean episodes to 95%%-convergence: median-split %s, "
              "uniform %s\n",
              eadrl::FormatDouble(eadrl::math::Mean(median_eps), 1).c_str(),
              eadrl::FormatDouble(eadrl::math::Mean(uniform_eps), 1).c_str());
  std::printf("mean offline time (s):            median-split %s, "
              "uniform %s\n",
              eadrl::FormatDouble(eadrl::math::Mean(median_time), 2).c_str(),
              eadrl::FormatDouble(eadrl::math::Mean(uniform_time), 2)
                  .c_str());
  return 0;
}
