// Reproduces paper Fig. 2: learning curves of the actor-critic algorithm
// under the two reward definitions.
//   Fig. 2a — reward = 1 - NRMSE of the ensemble on the window (does NOT
//             converge; its magnitude tracks the time-varying series scale).
//   Fig. 2b — rank-based reward of Eq. 3 (converges).
// We print the average reward per episode for three representative datasets
// under each reward, which regenerates the figure's series.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"

namespace {

// Representative datasets: seasonal (bike rentals), drifting (taxi) and
// random-walk (DAX).
constexpr int kDatasetIds[] = {4, 9, 19};

}  // namespace

int main() {
  namespace exp = eadrl::exp;
  const size_t length = eadrl::bench::BenchLength();
  const size_t episodes = eadrl::bench::EnvSize("EADRL_BENCH_EPISODES", 60);

  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();
  opt.pool.fast_mode = true;  // the figure is about the RL loop, not the pool.
  opt.eadrl.max_episodes = episodes;
  opt.eadrl.early_stop = false;  // show the full curve.

  struct Curve {
    int dataset;
    const char* reward;
    eadrl::math::Vec values;
  };
  std::vector<Curve> curves;

  for (int id : kDatasetIds) {
    auto series = eadrl::ts::MakeDataset(id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    exp::PoolRun pool = exp::PreparePool(*series, opt);

    for (auto reward : {eadrl::rl::RewardType::kOneMinusNrmse,
                        eadrl::rl::RewardType::kRank}) {
      eadrl::core::EadrlConfig cfg = opt.eadrl;
      cfg.reward_type = reward;
      eadrl::core::EadrlCombiner combiner(cfg);
      eadrl::Status st = combiner.Initialize(pool.val_preds,
                                             pool.val_actuals);
      if (!st.ok()) {
        std::printf("dataset %d failed: %s\n", id, st.ToString().c_str());
        return 1;
      }
      curves.push_back(
          {id,
           reward == eadrl::rl::RewardType::kRank ? "rank(Eq.3)" : "1-NRMSE",
           combiner.episode_rewards()});
    }
  }

  std::printf("Fig. 2: learning curves (avg reward per episode)\n");
  std::printf("Fig. 2a uses reward = 1-NRMSE, Fig. 2b uses the rank reward "
              "of Eq. 3.\n\n");
  for (const Curve& curve : curves) {
    std::printf("dataset %d, reward=%s:\n", curve.dataset, curve.reward);
    for (size_t e = 0; e < curve.values.size(); ++e) {
      std::printf("  episode %3zu  avg_reward %s\n", e + 1,
                  eadrl::FormatDouble(curve.values[e], 4).c_str());
    }
    // Convergence summary: does the curve actually climb? The paper's
    // contrast is a flat/noisy curve under 1-NRMSE (Fig. 2a) vs a rising,
    // converging curve under the rank reward (Fig. 2b).
    size_t q = curve.values.size() / 4;
    double first_q = 0.0, last_q = 0.0, lo = 0.0, hi = 0.0;
    for (size_t e = 0; e < q; ++e) first_q += curve.values[e];
    lo = hi = curve.values[curve.values.size() - q];
    for (size_t e = curve.values.size() - q; e < curve.values.size(); ++e) {
      last_q += curve.values[e];
      lo = std::min(lo, curve.values[e]);
      hi = std::max(hi, curve.values[e]);
    }
    first_q /= static_cast<double>(q);
    last_q /= static_cast<double>(q);
    std::printf("  first-quarter avg %s -> last-quarter avg %s "
                "(range [%s, %s])\n\n",
                eadrl::FormatDouble(first_q, 4).c_str(),
                eadrl::FormatDouble(last_q, 4).c_str(),
                eadrl::FormatDouble(lo, 4).c_str(),
                eadrl::FormatDouble(hi, 4).c_str());
  }
  return 0;
}
