// Batch-major kernel benchmarks (google-benchmark): the blocked GEMM and
// fused-transpose products in src/math, the batched MLP forward/backward in
// src/nn, and the batched DDPG update they feed. Paired fused-vs-materialized
// and batched-vs-scalar rows quantify exactly the wins the batch-major
// refactor claims (see DESIGN.md, "Batch-major kernels").

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "math/matrix.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"

namespace {

eadrl::math::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t stream) {
  eadrl::Rng rng = eadrl::bench::BenchRng(stream);
  eadrl::math::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

// Square blocked GEMM at the sizes the MLP layers actually hit.
void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const eadrl::math::Matrix a = RandomMatrix(n, n, 10);
  const eadrl::math::Matrix b = RandomMatrix(n, n, 11);
  eadrl::math::Matrix out;
  for (auto _ : state) {
    a.MatMulInto(b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

// The backprop weight-gradient shape, fused: dW = dZ^T X without ever
// materializing dZ^T.
void BM_MatMulTransposeA(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const eadrl::math::Matrix dz = RandomMatrix(batch, 64, 12);
  const eadrl::math::Matrix x = RandomMatrix(batch, 64, 13);
  eadrl::math::Matrix out;
  for (auto _ : state) {
    dz.MatMulTransposeAInto(x, &out);
    benchmark::DoNotOptimize(out.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MatMulTransposeA)->Arg(16)->Arg(64);

// The same product through the materialized chain the lint rule now flags
// in src/ — the baseline the fused kernel is beating.
void BM_TransposeThenMatMul(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const eadrl::math::Matrix dz = RandomMatrix(batch, 64, 12);
  const eadrl::math::Matrix x = RandomMatrix(batch, 64, 13);
  for (auto _ : state) {
    eadrl::math::Matrix out = dz.Transpose().MatMul(x);
    benchmark::DoNotOptimize(out.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_TransposeThenMatMul)->Arg(16)->Arg(64);

// The batched-forward shape: Z = X W^T with W kept row-major.
void BM_MatMulTransposeB(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const eadrl::math::Matrix x = RandomMatrix(batch, 64, 14);
  const eadrl::math::Matrix w = RandomMatrix(64, 64, 15);
  eadrl::math::Matrix out;
  for (auto _ : state) {
    x.MatMulTransposeBInto(w, &out);
    benchmark::DoNotOptimize(out.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(16)->Arg(64);

// One GEMM per layer over the whole batch...
void BM_MlpForwardBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  eadrl::Rng rng = eadrl::bench::BenchRng(16);
  eadrl::nn::Mlp net({10, 64, 64, 43}, eadrl::nn::Activation::kRelu,
                     eadrl::nn::Activation::kIdentity, rng);
  const eadrl::math::Matrix x = RandomMatrix(batch, 10, 17);
  for (auto _ : state) {
    const eadrl::math::Matrix& y = net.ForwardBatch(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(16)->Arg(64);

// ... versus the per-sample walk it replaces (same net, same rows).
void BM_MlpForwardPerSample(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  eadrl::Rng rng = eadrl::bench::BenchRng(16);
  eadrl::nn::Mlp net({10, 64, 64, 43}, eadrl::nn::Activation::kRelu,
                     eadrl::nn::Activation::kIdentity, rng);
  const eadrl::math::Matrix x = RandomMatrix(batch, 10, 17);
  std::vector<eadrl::math::Vec> rows;
  for (size_t b = 0; b < batch; ++b) rows.push_back(x.Row(b));
  for (auto _ : state) {
    for (const eadrl::math::Vec& row : rows) {
      benchmark::DoNotOptimize(net.Predict(row));
    }
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MlpForwardPerSample)->Arg(16)->Arg(64);

std::vector<eadrl::rl::Transition> MakeBatch(size_t n) {
  eadrl::Rng rng = eadrl::bench::BenchRng(18);
  std::vector<eadrl::rl::Transition> batch;
  for (size_t i = 0; i < n; ++i) {
    eadrl::rl::Transition t;
    t.state.assign(10, rng.Uniform());
    t.action.assign(43, 1.0 / 43.0);
    t.reward = rng.Uniform(0, 44);
    t.next_state.assign(10, rng.Uniform());
    batch.push_back(std::move(t));
  }
  return batch;
}

// The full DDPG update on the batch-major path (the production default)...
void BM_DdpgUpdateBatched(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  cfg.batched_update = true;
  eadrl::rl::DdpgAgent agent(cfg);
  const auto batch = MakeBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(batch));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgUpdateBatched)->Arg(16)->Arg(64);

// ... versus the per-transition scalar reference it matches bit for bit.
void BM_DdpgUpdateScalar(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  cfg.batched_update = false;
  eadrl::rl::DdpgAgent agent(cfg);
  const auto batch = MakeBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Update(batch));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgUpdateScalar)->Arg(16)->Arg(64);

// Cross-request serving: B states answered in one ActBatch pass.
void BM_DdpgActBatch(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  eadrl::rl::DdpgAgent agent(cfg);
  const eadrl::math::Matrix states = RandomMatrix(
      static_cast<size_t>(state.range(0)), 10, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.ActBatch(states));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgActBatch)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
