// Ablation of the paper's future-work extensions, implemented in this
// library: online policy updates (periodic and drift-informed), the pruning
// step before weighting, and the diversity-aware reward. Compares test RMSE
// of each variant against the frozen-policy baseline on three datasets.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"

namespace {
constexpr int kDatasetIds[] = {9, 10, 15};  // drift-heavy + trending.
}  // namespace

int main() {
  namespace exp = eadrl::exp;
  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();

  struct Variant {
    const char* name;
    eadrl::core::EadrlConfig (*configure)(eadrl::core::EadrlConfig);
  };
  const Variant variants[] = {
      {"frozen (paper)",
       [](eadrl::core::EadrlConfig c) { return c; }},
      {"online-periodic",
       [](eadrl::core::EadrlConfig c) {
         c.online_update = eadrl::core::OnlineUpdateMode::kPeriodic;
         c.online_update_every = 20;
         return c;
       }},
      {"online-drift",
       [](eadrl::core::EadrlConfig c) {
         c.online_update = eadrl::core::OnlineUpdateMode::kDriftInformed;
         return c;
       }},
      {"pruned (top 10)",
       [](eadrl::core::EadrlConfig c) {
         c.prune_top_n = 10;
         return c;
       }},
      {"diversity reward",
       [](eadrl::core::EadrlConfig c) {
         c.diversity_coef = 0.5;
         return c;
       }},
  };

  std::printf("Ablation: EA-DRL future-work extensions, test RMSE "
              "(length %zu)\n\n",
              length);
  std::printf("%s", eadrl::PadRight("variant", 20).c_str());
  for (int id : kDatasetIds) {
    std::printf("%s",
                eadrl::PadRight(eadrl::StrCat("ds", id), 12).c_str());
  }
  std::printf("\n%s\n", std::string(56, '-').c_str());

  // Pool predictions are reused across variants per dataset.
  std::vector<exp::PoolRun> pools;
  for (int id : kDatasetIds) {
    auto series = eadrl::ts::MakeDataset(id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    pools.push_back(exp::PreparePool(*series, opt));
  }

  for (const Variant& variant : variants) {
    std::printf("%s", eadrl::PadRight(variant.name, 20).c_str());
    for (size_t d = 0; d < pools.size(); ++d) {
      eadrl::core::EadrlCombiner combiner(variant.configure(opt.eadrl));
      exp::MethodRun run = exp::RunCombiner(&combiner, pools[d]);
      std::printf("%s",
                  eadrl::PadRight(eadrl::FormatDouble(run.rmse, 4), 12)
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
