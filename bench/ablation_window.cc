// Ablation beyond the paper: sensitivity of EA-DRL to the state/validation
// window omega (Table II fixes omega = 10). DESIGN.md calls this design
// choice out; here we sweep omega over {5, 10, 20} on three datasets and
// report the test RMSE of the learned policy.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "ts/datasets.h"

namespace {
constexpr int kDatasetIds[] = {2, 9, 18};
constexpr size_t kOmegas[] = {5, 10, 20};
}  // namespace

int main() {
  namespace exp = eadrl::exp;
  const size_t length = eadrl::bench::BenchLength();
  exp::ExperimentOptions opt = eadrl::bench::BenchOptions();
  opt.pool.fast_mode = true;

  std::printf("Ablation: EA-DRL test RMSE vs state window omega\n\n");
  std::printf("%s", eadrl::PadRight("dataset", 10).c_str());
  for (size_t omega : kOmegas) {
    std::printf("%s", eadrl::PadRight(
                          eadrl::StrCat("omega=", omega), 14)
                          .c_str());
  }
  std::printf("\n%s\n", std::string(52, '-').c_str());

  for (int id : kDatasetIds) {
    auto series = eadrl::ts::MakeDataset(id, eadrl::bench::BenchSeed(), length);
    if (!series.ok()) return 1;
    exp::PoolRun pool = exp::PreparePool(*series, opt);

    std::printf("%s", eadrl::PadRight(std::to_string(id), 10).c_str());
    for (size_t omega : kOmegas) {
      eadrl::core::EadrlConfig cfg = opt.eadrl;
      cfg.omega = omega;
      eadrl::core::EadrlCombiner combiner(cfg);
      exp::MethodRun run = exp::RunCombiner(&combiner, pool);
      std::printf("%s",
                  eadrl::PadRight(eadrl::FormatDouble(run.rmse, 4), 14)
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
