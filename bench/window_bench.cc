// Windowed-observability benchmarks (google-benchmark): the PR-10 metrics
// hot paths that sit on every served request — WindowedCounter::Inc and
// WindowedHistogram::Observe on the fast (no-rotation) path and across
// constant rotations, labeled drill-down observes at and past the
// cardinality cap, SloTracker record + evaluate, and snapshotting while a
// writer would normally be live. The plain (unwindowed) Counter/Histogram
// baselines sit alongside so the cost of "live" over "cumulative" is a
// direct A/B in the same suite.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/cardinality.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/window.h"

namespace {

using eadrl::obs::Counter;
using eadrl::obs::Histogram;
using eadrl::obs::LabeledWindowedFamily;
using eadrl::obs::LabeledWindowedFamilyOptions;
using eadrl::obs::SloTracker;
using eadrl::obs::SloTrackerOptions;
using eadrl::obs::WindowedCounter;
using eadrl::obs::WindowedHistogram;
using eadrl::obs::WindowOptions;

// Fake clock so rotation frequency is a benchmark parameter, not a property
// of how fast the host happens to run.
std::atomic<uint64_t> g_now_ns{0};

uint64_t FakeNow() { return g_now_ns.load(std::memory_order_relaxed); }

WindowOptions FakeWindow() {
  WindowOptions options;
  options.buckets = 10;
  options.tick_seconds = 1.0;
  options.now_ns = &FakeNow;
  return options;
}

void BM_CounterIncBaseline(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) counter.Inc();
  benchmark::DoNotOptimize(counter.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncBaseline);

void BM_WindowedCounterInc(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  WindowedCounter counter(FakeWindow());
  for (auto _ : state) counter.Inc();
  benchmark::DoNotOptimize(counter.Cumulative());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedCounterInc);

void BM_WindowedCounterIncRotating(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  WindowedCounter counter(FakeWindow());
  uint64_t now = 0;
  for (auto _ : state) {
    // Advance a full tick every 8 increments: rotation is on the measured
    // path instead of being amortized away.
    now += 125'000'000;
    g_now_ns.store(now, std::memory_order_relaxed);
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.Cumulative());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedCounterIncRotating);

void BM_HistogramObserveBaseline(benchmark::State& state) {
  Histogram hist(Histogram::ExponentialBounds(1e-6, 2.0, 24));
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
  }
  benchmark::DoNotOptimize(hist.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserveBaseline);

void BM_WindowedHistogramObserve(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  WindowedHistogram hist(FakeWindow(), {});
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
  }
  benchmark::DoNotOptimize(hist.CumulativeCount());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedHistogramObserve);

void BM_WindowedHistogramSnapshot(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  WindowedHistogram hist(FakeWindow(), {});
  // Past the exact-sample budget: snapshot merges bucket tails, the
  // steady-state shape for a busy service.
  for (int i = 0; i < 4096; ++i) hist.Observe(1e-4 * (1 + i % 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Snapshot().values.Quantile(0.99));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowedHistogramSnapshot);

void BM_LabeledFamilyObserveTracked(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  LabeledWindowedFamilyOptions options;
  options.name = "bench_family";
  options.max_labels = 64;
  options.window = FakeWindow();
  LabeledWindowedFamily family(options);
  std::vector<std::string> labels;
  for (int t = 0; t < 32; ++t) labels.push_back("t-" + std::to_string(t));
  size_t i = 0;
  for (auto _ : state) {
    family.Observe(labels[i % labels.size()], 1e-4);
    ++i;
  }
  benchmark::DoNotOptimize(family.TrackedLabels());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LabeledFamilyObserveTracked);

void BM_LabeledFamilyObserveOverflowing(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  LabeledWindowedFamilyOptions options;
  options.name = "bench_family";
  options.max_labels = 8;
  options.window = FakeWindow();
  LabeledWindowedFamily family(options);
  // Pre-fill the cap with fresh labels, then hammer the reject path — the
  // cost a tenant storm pays per dropped label.
  for (int t = 0; t < 8; ++t) family.Observe("seat-" + std::to_string(t), 1e-4);
  uint64_t i = 0;
  for (auto _ : state) {
    family.Observe("storm-" + std::to_string(i++ % 1024), 1e-4);
  }
  benchmark::DoNotOptimize(family.Overflow());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LabeledFamilyObserveOverflowing);

void BM_SloRecordLatency(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  SloTrackerOptions options;
  options.objectives.push_back({"latency", 0.05, 0.99});
  options.objectives.push_back({"availability", 0.0, 0.999});
  options.long_window = FakeWindow();
  options.short_window = FakeWindow();
  options.emit_telemetry = false;
  SloTracker tracker(options);
  size_t i = 0;
  for (auto _ : state) {
    tracker.RecordLatency(0, (i++ % 10 == 0) ? 0.2 : 0.001);
  }
  benchmark::DoNotOptimize(tracker.Report().objectives[0].good);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SloRecordLatency);

void BM_SloEvaluate(benchmark::State& state) {
  g_now_ns.store(0, std::memory_order_relaxed);
  SloTrackerOptions options;
  options.objectives.push_back({"latency", 0.05, 0.99});
  options.objectives.push_back({"availability", 0.0, 0.999});
  options.long_window = FakeWindow();
  options.short_window = FakeWindow();
  options.emit_telemetry = false;
  SloTracker tracker(options);
  for (int i = 0; i < 1000; ++i) {
    tracker.RecordLatency(0, (i % 10 == 0) ? 0.2 : 0.001);
    tracker.Record(1, i % 50 != 0);
  }
  for (auto _ : state) {
    tracker.Evaluate();
    benchmark::DoNotOptimize(tracker);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SloEvaluate);

}  // namespace

BENCHMARK_MAIN();
