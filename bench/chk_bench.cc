// Cost of the eadrl::chk contract layer (google-benchmark).
//
// Each *Contract benchmark pairs with a *Baseline benchmark whose loop body
// is identical except for the contract macro. This TU inherits the library's
// EADRL_CHECKS setting (PUBLIC compile definition of the eadrl target), so:
//
//   default build (checks ON):   the pairs show what a live contract costs;
//   -DEADRL_CHECKS=OFF build:    every pair must be within noise — the
//                                macros expand to static_cast<void>(0) and
//                                the argument expressions are never
//                                evaluated. This is the PR's zero-cost
//                                acceptance check.
//
// The library-path benchmarks (MlpForward, DdpgAct) track the end-to-end
// hot paths the contracts were wired through.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chk/chk.h"
#include "common/rng.h"
#include "math/vec.h"
#include "nn/mlp.h"
#include "rl/ddpg.h"

namespace {

eadrl::math::Vec MakeVec(size_t n) {
  eadrl::Rng rng = eadrl::bench::BenchRng(7);
  eadrl::math::Vec v(n);
  for (double& x : v) x = rng.Uniform();
  return v;
}

void BM_FiniteScanBaseline(benchmark::State& state) {
  const eadrl::math::Vec v = MakeVec(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_FiniteScanBaseline)->Arg(16)->Arg(256);

void BM_FiniteScanContract(benchmark::State& state) {
  const eadrl::math::Vec v = MakeVec(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    EADRL_CHK_FINITE(v, "chk_bench vector");
    benchmark::DoNotOptimize(v.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_FiniteScanContract)->Arg(16)->Arg(256);

void BM_SimplexBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const eadrl::math::Vec w(n, 1.0 / static_cast<double>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_SimplexBaseline)->Arg(10)->Arg(43);

void BM_SimplexContract(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const eadrl::math::Vec w(n, 1.0 / static_cast<double>(n));
  for (auto _ : state) {
    EADRL_CHK_SIMPLEX(w, 1e-6, "chk_bench weights");
    benchmark::DoNotOptimize(w.data());
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_SimplexContract)->Arg(10)->Arg(43);

// Library hot paths: the contracts wired through nn/ and rl/ ride along with
// whatever EADRL_CHECKS the library was built with.

void BM_MlpForward(benchmark::State& state) {
  eadrl::Rng rng = eadrl::bench::BenchRng(3);
  eadrl::nn::Mlp mlp({10, 64, 64, 43}, eadrl::nn::Activation::kRelu,
                     eadrl::nn::Activation::kIdentity, rng);
  const eadrl::math::Vec x = MakeVec(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_MlpForward);

void BM_DdpgAct(benchmark::State& state) {
  eadrl::rl::DdpgConfig cfg;
  cfg.state_dim = 10;
  cfg.action_dim = 43;
  eadrl::rl::DdpgAgent agent(cfg);
  const eadrl::math::Vec s(10, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.Act(s));
  }
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_DdpgAct);

}  // namespace

BENCHMARK_MAIN();
