// Reproduces paper Table I: the inventory of the 20 benchmark time series,
// extended with summary statistics of the synthetic stand-ins actually
// generated (see DESIGN.md, "Substitutions").

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "math/stats.h"
#include "ts/datasets.h"

int main() {
  using eadrl::FormatDouble;
  using eadrl::PadRight;

  std::printf("Table I: datasets used for the experiments\n");
  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf("%s %s %s %s %s %s %s %s\n",
              PadRight("ID", 3).c_str(), PadRight("Time-series", 28).c_str(),
              PadRight("Source", 26).c_str(),
              PadRight("Frequency", 12).c_str(), PadRight("Len", 6).c_str(),
              PadRight("Period", 7).c_str(), PadRight("Mean", 10).c_str(),
              PadRight("Stddev", 10).c_str());
  std::printf("%s\n", std::string(118, '-').c_str());

  for (const auto& spec : eadrl::ts::AllDatasetSpecs()) {
    auto series = eadrl::ts::MakeDataset(spec.id, eadrl::bench::BenchSeed());
    if (!series.ok()) {
      std::printf("dataset %d failed: %s\n", spec.id,
                  series.status().ToString().c_str());
      return 1;
    }
    std::printf("%s %s %s %s %s %s %s %s\n",
                PadRight(std::to_string(spec.id), 3).c_str(),
                PadRight(spec.name, 28).c_str(),
                PadRight(spec.source, 26).c_str(),
                PadRight(spec.frequency, 12).c_str(),
                PadRight(std::to_string(series->size()), 6).c_str(),
                PadRight(std::to_string(spec.seasonal_period), 7).c_str(),
                PadRight(FormatDouble(eadrl::math::Mean(series->values()), 2),
                         10)
                    .c_str(),
                PadRight(
                    FormatDouble(eadrl::math::Stddev(series->values()), 2),
                    10)
                    .c_str());
  }
  std::printf("%s\n", std::string(118, '-').c_str());
  std::printf("characteristics reproduced per series:\n");
  for (const auto& spec : eadrl::ts::AllDatasetSpecs()) {
    std::printf("  %2d: %s\n", spec.id, spec.characteristics.c_str());
  }
  return 0;
}
