// Serving-layer benchmarks (google-benchmark): the multi-tenant hot path in
// isolation — session-table lookup under striping, batching-queue
// enqueue/drain overhead, blocking single-tenant predicts, and the
// cross-tenant batched wave at increasing occupancy (the number that should
// amortize: per-request cost falling as more tenants share one actor pass).
//
// Services here run manual_drain so each benchmark iteration pumps exactly
// one deterministic wave on the calling thread — no pool scheduling noise.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "core/eadrl.h"
#include "exp/experiment.h"
#include "serve/batching_queue.h"
#include "serve/service.h"
#include "serve/session_table.h"

namespace {

using eadrl::core::EadrlCombiner;
using eadrl::serve::BatchingQueue;
using eadrl::serve::ForecastService;
using eadrl::serve::Policy;
using eadrl::serve::Request;
using eadrl::serve::ServeConfig;
using eadrl::serve::Session;
using eadrl::serve::SessionTable;

constexpr size_t kMaxWave = 64;

struct TrainedFixture {
  eadrl::exp::PoolRun pool;
  eadrl::core::EadrlConfig eadrl_config;
};

const TrainedFixture& Fixture() {
  static TrainedFixture* fixture = [] {
    auto* f = new TrainedFixture;
    eadrl::ts::Series series = eadrl::bench::BenchSeries(2, 200);
    eadrl::exp::ExperimentOptions opt;
    opt.seed = eadrl::bench::BenchSeed();
    opt.pool.fast_mode = true;
    opt.pool.nn_epochs = 2;
    opt.eadrl.max_episodes = 2;
    f->pool = eadrl::exp::PreparePool(series, opt);
    f->eadrl_config = opt.eadrl;
    return f;
  }();
  return *fixture;
}

std::unique_ptr<EadrlCombiner> TrainedCombiner() {
  const TrainedFixture& f = Fixture();
  auto combiner = std::make_unique<EadrlCombiner>(f.eadrl_config);
  EADRL_CHECK(
      combiner->Initialize(f.pool.val_preds, f.pool.val_actuals).ok());
  return combiner;
}

/// One shared manual-drain service with kMaxWave resident tenants — shared
/// across benchmarks so the (expensive) policy training happens once.
ForecastService& SharedService() {
  static ForecastService* service = [] {
    ServeConfig config;
    config.manual_drain = true;
    config.max_queue = 1u << 16;
    config.max_batch = kMaxWave;
    auto* s = new ForecastService(config);
    const size_t policy_id = s->RegisterPolicy(TrainedCombiner());
    for (size_t t = 0; t < kMaxWave; ++t) {
      EADRL_CHECK(
          s->CreateSession("bench-" + std::to_string(t), policy_id).ok());
    }
    return s;
  }();
  return *service;
}

/// A policy whose sessions never run predicts: table/queue benches need
/// Session objects, not a trained network.
std::shared_ptr<Policy> StubPolicy() {
  auto policy = std::make_shared<Policy>();
  policy->fresh_state.window.assign(10, 0.0);
  return policy;
}

void BM_SessionTableLookup(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  SessionTable::Options options;
  options.shards = 16;
  SessionTable table(options);
  auto policy = StubPolicy();
  std::vector<std::string> names;
  names.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    names.push_back("tenant-" + std::to_string(i));
    EADRL_CHECK(table
                    .Insert(names.back(),
                            std::make_shared<Session>(names.back(), policy, i,
                                                      nullptr, 0.005, 3.0))
                    .ok());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(names[i]));
    i = (i + 1) % sessions;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_SessionTableLookup)->Arg(64)->Arg(1024);

void BM_SessionTableChurn(benchmark::State& state) {
  // Insert + LRU-evict churn at capacity: the resident-set management cost.
  SessionTable::Options options;
  options.shards = 8;
  options.max_sessions = 256;
  SessionTable table(options);
  auto policy = StubPolicy();
  uint64_t next = 0;
  for (auto _ : state) {
    const std::string name = "tenant-" + std::to_string(next);
    EADRL_CHECK(table
                    .Insert(name, std::make_shared<Session>(
                                      name, policy, next, nullptr, 0.005, 3.0))
                    .ok());
    ++next;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_SessionTableChurn);

// Untracked queue (track_queue_delay off, the Options default): the
// queue-delay estimator must cost nothing when nobody asked for it. The
// *Tracked variant prices the enabled path (two clock reads plus one
// windowed observation per drained request); comparing the two is the
// disabled-vs-enabled evidence for the windowed instrumentation.
void RunBatchingQueueEnqueueDrain(benchmark::State& state,
                                  bool track_queue_delay) {
  const size_t batch = static_cast<size_t>(state.range(0));
  BatchingQueue::Options options;
  options.manual_drain = true;
  options.max_queue = batch * 2;
  options.track_queue_delay = track_queue_delay;
  size_t drained = 0;
  BatchingQueue queue(options, [&drained](std::vector<Request> requests) {
    drained += requests.size();
  });
  auto policy = StubPolicy();
  auto session =
      std::make_shared<Session>("tenant-0", policy, 1, nullptr, 0.005, 3.0);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      Request request;
      request.kind = Request::Kind::kObserve;
      request.session = session;
      EADRL_CHECK(queue.TryEnqueue(std::move(request)));
    }
    benchmark::DoNotOptimize(queue.DrainOnce());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.counters["drained"] = static_cast<double>(drained);
  eadrl::bench::RegisterThreads(state, 1);
}

void BM_BatchingQueueEnqueueDrain(benchmark::State& state) {
  RunBatchingQueueEnqueueDrain(state, /*track_queue_delay=*/false);
}
BENCHMARK(BM_BatchingQueueEnqueueDrain)->Arg(1)->Arg(16)->Arg(64);

void BM_BatchingQueueEnqueueDrainTracked(benchmark::State& state) {
  RunBatchingQueueEnqueueDrain(state, /*track_queue_delay=*/true);
}
BENCHMARK(BM_BatchingQueueEnqueueDrainTracked)->Arg(1)->Arg(64);

void BM_ServePredictBlocking(benchmark::State& state) {
  // Single-tenant end-to-end: admission + one-request wave + actor pass.
  ForecastService& service = SharedService();
  const TrainedFixture& f = Fixture();
  const size_t rows = f.pool.test_preds.rows();
  size_t t = 0;
  for (auto _ : state) {
    eadrl::StatusOr<double> out =
        service.Predict("bench-0", f.pool.test_preds.Row(t % rows));
    EADRL_CHECK(out.ok());
    benchmark::DoNotOptimize(*out);
    ++t;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ServePredictBlocking);

void BM_ServeBatchedWave(benchmark::State& state) {
  // B tenants' predicts coalesced into one wave → one ActBatch of B rows.
  // Per-item time should fall as B grows: the cross-tenant batching win.
  const size_t wave = static_cast<size_t>(state.range(0));
  ForecastService& service = SharedService();
  const TrainedFixture& f = Fixture();
  const size_t rows = f.pool.test_preds.rows();
  std::vector<std::string> tenants;
  tenants.reserve(wave);
  for (size_t b = 0; b < wave; ++b) {
    tenants.push_back("bench-" + std::to_string(b));
  }
  size_t t = 0;
  size_t completed = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < wave; ++b) {
      EADRL_CHECK(service
                      .PredictAsync(tenants[b], f.pool.test_preds.Row(t % rows),
                                    [&completed](eadrl::StatusOr<double> r) {
                                      EADRL_CHECK(r.ok());
                                      ++completed;
                                    })
                      .ok());
    }
    EADRL_CHECK(service.DrainOnce());
    ++t;
  }
  EADRL_CHECK(completed == static_cast<size_t>(state.iterations()) * wave);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wave));
  eadrl::bench::RegisterThreads(state, 1);
}
BENCHMARK(BM_ServeBatchedWave)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
