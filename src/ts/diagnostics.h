#ifndef EADRL_TS_DIAGNOSTICS_H_
#define EADRL_TS_DIAGNOSTICS_H_

#include <cstddef>

#include "common/status.h"
#include "math/vec.h"
#include "ts/series.h"

namespace eadrl::ts {

/// Sample autocorrelation function for lags 1..max_lag.
math::Vec Acf(const math::Vec& values, size_t max_lag);

/// Partial autocorrelation function for lags 1..max_lag via the
/// Durbin–Levinson recursion.
StatusOr<math::Vec> Pacf(const math::Vec& values, size_t max_lag);

/// Ljung–Box portmanteau test for autocorrelation in a (residual) series.
struct LjungBoxResult {
  double statistic = 0.0;  ///< Q statistic.
  double p_value = 1.0;    ///< under chi^2 with `lags - fitted_params` dof.
};

/// `fitted_params` shrinks the degrees of freedom when testing model
/// residuals (p + q for an ARMA fit; 0 for a raw series).
StatusOr<LjungBoxResult> LjungBoxTest(const math::Vec& values, size_t lags,
                                      size_t fitted_params = 0);

/// Simplified augmented Dickey–Fuller stationarity check: the t-statistic of
/// gamma in  Δx_t = alpha + gamma x_{t-1} + Σ φ_i Δx_{t-i} + e_t.
/// Values well below ~-2.9 reject a unit root at the 5% level.
struct AdfResult {
  double statistic = 0.0;
  bool stationary_at_5pct = false;
};

StatusOr<AdfResult> AdfTest(const math::Vec& values, size_t lags = 4);

/// Estimates the dominant seasonal period by the highest autocorrelation
/// peak in [min_period, max_period]; returns 0 if no lag exceeds
/// `threshold`.
size_t EstimateSeasonalPeriod(const math::Vec& values, size_t min_period = 2,
                              size_t max_period = 400,
                              double threshold = 0.3);

/// Chi-squared upper-tail probability (used by the Ljung–Box test; exposed
/// for reuse and testing).
double ChiSquaredSurvival(double x, double dof);

}  // namespace eadrl::ts

#endif  // EADRL_TS_DIAGNOSTICS_H_
