#ifndef EADRL_TS_DRIFT_H_
#define EADRL_TS_DRIFT_H_

#include <cstddef>
#include <deque>

namespace eadrl::ts {

/// Page–Hinkley test for detecting an increase in the mean of a streamed
/// signal (typically a model's error). Used by the DEMSC baseline to trigger
/// meta-level updates.
class PageHinkley {
 public:
  /// `delta` is the magnitude tolerance, `lambda` the detection threshold,
  /// `alpha` the forgetting factor applied to the running mean.
  PageHinkley(double delta = 0.005, double lambda = 50.0, double alpha = 0.999);

  /// Feeds one observation; returns true if drift is detected. The detector
  /// resets itself after a detection.
  bool Update(double value);

  void Reset();

  size_t num_observations() const { return n_; }
  double cumulative() const { return cumulative_; }

 private:
  double delta_;
  double lambda_;
  double alpha_;
  size_t n_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
};

/// Simplified adaptive-windowing detector: keeps a bounded window of recent
/// values and signals drift when the mean of the newer half differs from the
/// older half by more than `threshold` pooled standard deviations.
class WindowDriftDetector {
 public:
  explicit WindowDriftDetector(size_t window = 60, double threshold = 3.0);

  /// Feeds one observation; returns true if drift is detected. The window is
  /// cleared after a detection.
  bool Update(double value);

  void Reset() { window_values_.clear(); }

 private:
  size_t window_;
  double threshold_;
  std::deque<double> window_values_;
};

}  // namespace eadrl::ts

#endif  // EADRL_TS_DRIFT_H_
