#ifndef EADRL_TS_DECOMPOSE_H_
#define EADRL_TS_DECOMPOSE_H_

#include "common/status.h"
#include "math/vec.h"
#include "ts/series.h"

namespace eadrl::ts {

/// Additive classical decomposition x = trend + seasonal + remainder.
struct Decomposition {
  math::Vec trend;     ///< centered moving average (endpoints extended).
  math::Vec seasonal;  ///< zero-mean periodic component.
  math::Vec remainder;
};

/// Classical moving-average decomposition with the given period. Returns
/// InvalidArgument if the series is shorter than two periods.
StatusOr<Decomposition> ClassicalDecompose(const math::Vec& values,
                                           size_t period);

/// Convenience overload using the series' declared seasonal period.
StatusOr<Decomposition> ClassicalDecompose(const Series& series);

}  // namespace eadrl::ts

#endif  // EADRL_TS_DECOMPOSE_H_
