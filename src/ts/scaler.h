#ifndef EADRL_TS_SCALER_H_
#define EADRL_TS_SCALER_H_

#include "math/vec.h"

namespace eadrl::ts {

/// Min-max scaler mapping the fitted range to [0, 1]. Degenerate (constant)
/// inputs map to 0.5.
class MinMaxScaler {
 public:
  void Fit(const math::Vec& v);
  double Transform(double x) const;
  double Inverse(double y) const;
  math::Vec Transform(const math::Vec& v) const;
  math::Vec Inverse(const math::Vec& v) const;

  bool fitted() const { return fitted_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  bool fitted_ = false;
  double min_ = 0.0;
  double max_ = 1.0;
};

/// Z-score scaler. Degenerate (zero variance) inputs map to 0.
class StandardScaler {
 public:
  /// A scaler with explicit moments (stddev > 0), without fitting data — the
  /// serving layer uses this to give each tenant session the affine map
  /// between its series' units and the policy's training units.
  static StandardScaler FromMoments(double mean, double stddev);

  void Fit(const math::Vec& v);
  double Transform(double x) const;
  double Inverse(double y) const;
  math::Vec Transform(const math::Vec& v) const;
  math::Vec Inverse(const math::Vec& v) const;

  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace eadrl::ts

#endif  // EADRL_TS_SCALER_H_
