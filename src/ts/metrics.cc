#include "ts/metrics.h"

#include <cmath>

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::ts {

double Rmse(const math::Vec& actual, const math::Vec& predicted) {
  EADRL_CHECK_EQ(actual.size(), predicted.size());
  EADRL_CHECK(!actual.empty());
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double d = actual[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double Nrmse(const math::Vec& actual, const math::Vec& predicted) {
  double range = math::Max(actual) - math::Min(actual);
  double rmse = Rmse(actual, predicted);
  if (range <= 0.0) return rmse;
  return rmse / range;
}

double Mae(const math::Vec& actual, const math::Vec& predicted) {
  EADRL_CHECK_EQ(actual.size(), predicted.size());
  EADRL_CHECK(!actual.empty());
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    s += std::fabs(actual[i] - predicted[i]);
  }
  return s / static_cast<double>(actual.size());
}

double Smape(const math::Vec& actual, const math::Vec& predicted) {
  EADRL_CHECK_EQ(actual.size(), predicted.size());
  EADRL_CHECK(!actual.empty());
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    double denom = std::fabs(actual[i]) + std::fabs(predicted[i]);
    if (denom > 0.0) s += 2.0 * std::fabs(actual[i] - predicted[i]) / denom;
  }
  return s / static_cast<double>(actual.size());
}

double Mase(const math::Vec& train, const math::Vec& actual,
            const math::Vec& predicted) {
  EADRL_CHECK_GE(train.size(), 2u);
  double naive = 0.0;
  for (size_t i = 1; i < train.size(); ++i) {
    naive += std::fabs(train[i] - train[i - 1]);
  }
  naive /= static_cast<double>(train.size() - 1);
  if (naive <= 0.0) naive = 1e-12;
  return Mae(actual, predicted) / naive;
}

}  // namespace eadrl::ts
