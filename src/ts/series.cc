#include "ts/series.h"

#include "common/check.h"

namespace eadrl::ts {

Series Series::Slice(size_t begin, size_t end) const {
  EADRL_CHECK_LE(begin, end);
  EADRL_CHECK_LE(end, values_.size());
  math::Vec sub(values_.begin() + begin, values_.begin() + end);
  return Series(name_, std::move(sub), frequency_, seasonal_period_);
}

Series Series::Diff() const {
  EADRL_CHECK_GE(values_.size(), 2u);
  math::Vec d(values_.size() - 1);
  for (size_t i = 1; i < values_.size(); ++i) d[i - 1] = values_[i] - values_[i - 1];
  return Series(name_ + ".diff", std::move(d), frequency_, seasonal_period_);
}

TrainTestSplit SplitTrainTest(const Series& s, double train_ratio) {
  EADRL_CHECK(train_ratio > 0.0 && train_ratio < 1.0);
  size_t cut = static_cast<size_t>(train_ratio * static_cast<double>(s.size()));
  EADRL_CHECK(cut > 0 && cut < s.size());
  return TrainTestSplit{s.Slice(0, cut), s.Slice(cut, s.size())};
}

}  // namespace eadrl::ts
