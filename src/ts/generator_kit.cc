#include "ts/generator_kit.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace eadrl::ts {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

math::Vec SeasonalWave(size_t n, double period, double amplitude,
                       double phase) {
  EADRL_CHECK_GT(period, 0.0);
  math::Vec out(n);
  for (size_t t = 0; t < n; ++t) {
    out[t] = amplitude * std::sin(kTwoPi * static_cast<double>(t) / period +
                                  phase);
  }
  return out;
}

math::Vec SeasonalWithHarmonic(size_t n, double period, double amplitude,
                               double harmonic_amplitude, double phase) {
  math::Vec base = SeasonalWave(n, period, amplitude, phase);
  math::Vec harm = SeasonalWave(n, period / 2.0, harmonic_amplitude,
                                phase + 0.7);
  for (size_t t = 0; t < n; ++t) base[t] += harm[t];
  return base;
}

math::Vec LinearTrend(size_t n, double total_rise) {
  math::Vec out(n);
  if (n <= 1) return out;
  for (size_t t = 0; t < n; ++t) {
    out[t] = total_rise * static_cast<double>(t) / static_cast<double>(n - 1);
  }
  return out;
}

math::Vec Ar1Noise(size_t n, double phi, double sigma, Rng& rng) {
  math::Vec out(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = phi * x + rng.Normal(0.0, sigma);
    out[t] = x;
  }
  return out;
}

math::Vec RandomWalk(size_t n, double step_sigma, Rng& rng) {
  math::Vec out(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x += rng.Normal(0.0, step_sigma);
    out[t] = x;
  }
  return out;
}

math::Vec GeometricRandomWalk(size_t n, double start, double mu,
                              double base_vol, double vol_persistence,
                              Rng& rng) {
  math::Vec out(n);
  double log_price = std::log(start);
  double var = base_vol * base_vol;
  const double long_run = base_vol * base_vol;
  for (size_t t = 0; t < n; ++t) {
    double eps = rng.Normal(0.0, std::sqrt(var));
    log_price += mu + eps;
    // GARCH(1,1)-style variance recursion.
    var = (1.0 - vol_persistence) * long_run +
          vol_persistence * (0.7 * var + 0.3 * eps * eps);
    out[t] = std::exp(log_price);
  }
  return out;
}

math::Vec LevelShifts(size_t n, size_t num_shifts, double shift_sigma,
                      Rng& rng) {
  math::Vec out(n, 0.0);
  double level = 0.0;
  std::vector<size_t> points;
  for (size_t i = 0; i < num_shifts; ++i) points.push_back(rng.Index(n));
  std::sort(points.begin(), points.end());
  size_t next = 0;
  for (size_t t = 0; t < n; ++t) {
    while (next < points.size() && points[next] == t) {
      level += rng.Normal(0.0, shift_sigma);
      ++next;
    }
    out[t] = level;
  }
  return out;
}

math::Vec SpikeTrain(size_t n, double event_prob, double mean_magnitude,
                     double decay, Rng& rng) {
  math::Vec out(n, 0.0);
  double current = 0.0;
  for (size_t t = 0; t < n; ++t) {
    current *= decay;
    if (rng.Bernoulli(event_prob)) {
      current += rng.Exponential(1.0 / mean_magnitude);
    }
    out[t] = current;
  }
  return out;
}

math::Vec RegimeMultiplier(size_t n, double low, double high,
                           double switch_prob, Rng& rng) {
  math::Vec out(n);
  bool in_high = rng.Bernoulli(0.5);
  for (size_t t = 0; t < n; ++t) {
    if (rng.Bernoulli(switch_prob)) in_high = !in_high;
    out[t] = in_high ? high : low;
  }
  return out;
}

void ClipInPlace(math::Vec* v, double lo, double hi) {
  for (double& x : *v) x = std::clamp(x, lo, hi);
}

math::Vec Mix(const std::vector<math::Vec>& components) {
  EADRL_CHECK(!components.empty());
  math::Vec out(components[0].size(), 0.0);
  for (const auto& c : components) {
    EADRL_CHECK_EQ(c.size(), out.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] += c[i];
  }
  return out;
}

}  // namespace eadrl::ts
