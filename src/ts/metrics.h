#ifndef EADRL_TS_METRICS_H_
#define EADRL_TS_METRICS_H_

#include "math/vec.h"

namespace eadrl::ts {

/// Root mean squared error between predictions and ground truth.
double Rmse(const math::Vec& actual, const math::Vec& predicted);

/// RMSE normalized by the value range of `actual` (max - min); used by the
/// paper's ablation reward 1 - NRMSE. Returns RMSE if the range is zero.
double Nrmse(const math::Vec& actual, const math::Vec& predicted);

/// Mean absolute error.
double Mae(const math::Vec& actual, const math::Vec& predicted);

/// Symmetric mean absolute percentage error, in [0, 2].
double Smape(const math::Vec& actual, const math::Vec& predicted);

/// Mean absolute scaled error; scaled by the in-sample naive (lag-1) MAE of
/// `train`.
double Mase(const math::Vec& train, const math::Vec& actual,
            const math::Vec& predicted);

}  // namespace eadrl::ts

#endif  // EADRL_TS_METRICS_H_
