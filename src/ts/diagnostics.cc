#include "ts/diagnostics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "math/special.h"
#include "math/stats.h"

namespace eadrl::ts {

math::Vec Acf(const math::Vec& values, size_t max_lag) {
  EADRL_CHECK_LT(max_lag, values.size());
  math::Vec acf(max_lag);
  for (size_t k = 1; k <= max_lag; ++k) {
    acf[k - 1] = math::Autocorrelation(values, k);
  }
  return acf;
}

StatusOr<math::Vec> Pacf(const math::Vec& values, size_t max_lag) {
  if (max_lag == 0 || max_lag >= values.size()) {
    return Status::InvalidArgument("Pacf: bad max_lag");
  }
  // Durbin–Levinson recursion on the autocorrelations.
  math::Vec rho(max_lag + 1);
  rho[0] = 1.0;
  for (size_t k = 1; k <= max_lag; ++k) {
    rho[k] = math::Autocorrelation(values, k);
  }

  math::Vec pacf(max_lag);
  math::Vec phi_prev(max_lag + 1, 0.0), phi(max_lag + 1, 0.0);
  double denom = 1.0;
  for (size_t k = 1; k <= max_lag; ++k) {
    double num = rho[k];
    for (size_t j = 1; j < k; ++j) num -= phi_prev[j] * rho[k - j];
    if (std::fabs(denom) < 1e-12) {
      return Status::Internal("Pacf: degenerate recursion");
    }
    double phi_kk = num / denom;
    phi[k] = phi_kk;
    for (size_t j = 1; j < k; ++j) {
      phi[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    }
    denom *= (1.0 - phi_kk * phi_kk);
    pacf[k - 1] = phi_kk;
    phi_prev = phi;
  }
  return pacf;
}

double ChiSquaredSurvival(double x, double dof) {
  EADRL_CHECK_GT(dof, 0.0);
  if (x <= 0.0) return 1.0;
  return 1.0 - math::RegularizedLowerIncompleteGamma(0.5 * dof, 0.5 * x);
}

StatusOr<LjungBoxResult> LjungBoxTest(const math::Vec& values, size_t lags,
                                      size_t fitted_params) {
  if (lags == 0 || lags >= values.size()) {
    return Status::InvalidArgument("LjungBox: bad lag count");
  }
  if (lags <= fitted_params) {
    return Status::InvalidArgument(
        "LjungBox: lags must exceed fitted_params");
  }
  const double n = static_cast<double>(values.size());
  double q = 0.0;
  for (size_t k = 1; k <= lags; ++k) {
    double rho = math::Autocorrelation(values, k);
    q += rho * rho / (n - static_cast<double>(k));
  }
  q *= n * (n + 2.0);

  LjungBoxResult result;
  result.statistic = q;
  result.p_value =
      ChiSquaredSurvival(q, static_cast<double>(lags - fitted_params));
  return result;
}

StatusOr<AdfResult> AdfTest(const math::Vec& values, size_t lags) {
  const size_t n = values.size();
  if (n < lags + 12) {
    return Status::InvalidArgument("AdfTest: series too short");
  }
  // Regression: dx_t = alpha + gamma * x_{t-1} + sum phi_i dx_{t-i} + e.
  const size_t start = lags + 1;
  const size_t rows = n - start;
  const size_t p = 2 + lags;  // intercept, level, lagged differences.
  math::Matrix x(rows, p);
  math::Vec y(rows);
  for (size_t i = 0; i < rows; ++i) {
    size_t t = start + i;
    y[i] = values[t] - values[t - 1];
    x(i, 0) = 1.0;
    x(i, 1) = values[t - 1];
    for (size_t j = 0; j < lags; ++j) {
      x(i, 2 + j) = values[t - 1 - j] - values[t - 2 - j];
    }
  }

  // OLS via normal equations; we need (X^T X)^{-1} for the standard error.
  math::Matrix xtx(p, p);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t a = 0; a < p; ++a) {
      for (size_t b = a; b < p; ++b) xtx(a, b) += x(i, a) * x(i, b);
    }
  }
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += 1e-10;
  }
  StatusOr<math::Matrix> xtx_inv = math::CholeskyInverse(xtx);
  EADRL_RETURN_IF_ERROR(xtx_inv.status());
  math::Vec xty = x.TransposeMatVec(y);
  math::Vec beta = xtx_inv->MatVec(xty);

  double sse = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    double fit = 0.0;
    for (size_t j = 0; j < p; ++j) fit += beta[j] * x(i, j);
    double d = y[i] - fit;
    sse += d * d;
  }
  double sigma2 = sse / static_cast<double>(rows - p);
  double se = std::sqrt(sigma2 * (*xtx_inv)(1, 1));
  if (se <= 0.0) return Status::Internal("AdfTest: zero standard error");

  AdfResult result;
  result.statistic = beta[1] / se;
  // Approximate 5% Dickey-Fuller critical value with constant: -2.86.
  result.stationary_at_5pct = result.statistic < -2.86;
  return result;
}

size_t EstimateSeasonalPeriod(const math::Vec& values, size_t min_period,
                              size_t max_period, double threshold) {
  EADRL_CHECK_GE(min_period, 2u);
  if (values.size() < 3 * min_period) return 0;
  size_t limit = std::min(max_period, values.size() / 3);

  size_t best_lag = 0;
  double best_acf = threshold;
  for (size_t lag = min_period; lag <= limit; ++lag) {
    double a = math::Autocorrelation(values, lag);
    if (a > best_acf) {
      best_acf = a;
      best_lag = lag;
    }
  }
  return best_lag;
}

}  // namespace eadrl::ts
