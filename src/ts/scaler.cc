#include "ts/scaler.h"

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::ts {

void MinMaxScaler::Fit(const math::Vec& v) {
  EADRL_CHECK(!v.empty());
  min_ = math::Min(v);
  max_ = math::Max(v);
  fitted_ = true;
}

double MinMaxScaler::Transform(double x) const {
  EADRL_CHECK(fitted_);
  double range = max_ - min_;
  if (range <= 0.0) return 0.5;
  return (x - min_) / range;
}

double MinMaxScaler::Inverse(double y) const {
  EADRL_CHECK(fitted_);
  return min_ + y * (max_ - min_);
}

math::Vec MinMaxScaler::Transform(const math::Vec& v) const {
  math::Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Transform(v[i]);
  return out;
}

math::Vec MinMaxScaler::Inverse(const math::Vec& v) const {
  math::Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Inverse(v[i]);
  return out;
}

StandardScaler StandardScaler::FromMoments(double mean, double stddev) {
  EADRL_CHECK_GT(stddev, 0.0);
  StandardScaler scaler;
  scaler.mean_ = mean;
  scaler.stddev_ = stddev;
  scaler.fitted_ = true;
  return scaler;
}

void StandardScaler::Fit(const math::Vec& v) {
  EADRL_CHECK(!v.empty());
  mean_ = math::Mean(v);
  stddev_ = math::Stddev(v);
  fitted_ = true;
}

double StandardScaler::Transform(double x) const {
  EADRL_CHECK(fitted_);
  if (stddev_ <= 0.0) return 0.0;
  return (x - mean_) / stddev_;
}

double StandardScaler::Inverse(double y) const {
  EADRL_CHECK(fitted_);
  return mean_ + y * stddev_;
}

math::Vec StandardScaler::Transform(const math::Vec& v) const {
  math::Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Transform(v[i]);
  return out;
}

math::Vec StandardScaler::Inverse(const math::Vec& v) const {
  math::Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = Inverse(v[i]);
  return out;
}

}  // namespace eadrl::ts
