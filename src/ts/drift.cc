#include "ts/drift.h"

#include <cmath>

#include "chk/chk.h"

namespace eadrl::ts {

PageHinkley::PageHinkley(double delta, double lambda, double alpha)
    : delta_(delta), lambda_(lambda), alpha_(alpha) {
  EADRL_CHK(lambda_ > 0.0, "PageHinkley.lambda positive");
  EADRL_CHK(alpha_ > 0.0 && alpha_ <= 1.0, "PageHinkley.alpha in (0, 1]");
}

bool PageHinkley::Update(double value) {
  // One non-finite error observation would stick in the forgetting mean and
  // disarm the detector for the rest of the stream.
  EADRL_CHK_FINITE_VALUE(value, "PageHinkley::Update observation");
  EADRL_CHK_FINITE_VALUE(cumulative_, "PageHinkley cumulative statistic");
  ++n_;
  // Incremental (forgetting) mean.
  mean_ = mean_ + (value - mean_) / static_cast<double>(n_);
  mean_ *= alpha_;
  cumulative_ += value - mean_ - delta_;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);
  if (cumulative_ - min_cumulative_ > lambda_) {
    Reset();
    return true;
  }
  return false;
}

void PageHinkley::Reset() {
  n_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
}

WindowDriftDetector::WindowDriftDetector(size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  // window < 4 would make a half window empty (mean of zero values) and
  // underflow the window_ - 2 variance denominator below.
  EADRL_CHK(window_ >= 4, "WindowDriftDetector.window >= 4");
  EADRL_CHK(threshold_ > 0.0, "WindowDriftDetector.threshold positive");
}

bool WindowDriftDetector::Update(double value) {
  EADRL_CHK_FINITE_VALUE(value, "WindowDriftDetector::Update observation");
  window_values_.push_back(value);
  if (window_values_.size() > window_) window_values_.pop_front();
  if (window_values_.size() < window_) return false;

  const size_t half = window_ / 2;
  double m0 = 0.0, m1 = 0.0;
  for (size_t i = 0; i < half; ++i) m0 += window_values_[i];
  for (size_t i = half; i < window_; ++i) m1 += window_values_[i];
  m0 /= static_cast<double>(half);
  m1 /= static_cast<double>(window_ - half);

  double var = 0.0;
  for (size_t i = 0; i < half; ++i) {
    var += (window_values_[i] - m0) * (window_values_[i] - m0);
  }
  for (size_t i = half; i < window_; ++i) {
    var += (window_values_[i] - m1) * (window_values_[i] - m1);
  }
  var /= static_cast<double>(window_ - 2);
  double se = std::sqrt(2.0 * var / static_cast<double>(half));
  if (se <= 1e-12) return false;

  if (std::fabs(m1 - m0) / se > threshold_) {
    Reset();
    return true;
  }
  return false;
}

}  // namespace eadrl::ts
