#include "ts/datasets.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "ts/generator_kit.h"

namespace eadrl::ts {
namespace {

// Generator implementations. Each mirrors the structural traits of the
// corresponding real series in the paper's Table I (frequency, seasonality,
// boundedness, drift/spike regime); see DESIGN.md for the substitution
// rationale.

// 1: Oporto water consumption — daily, weekly cycle + mild annual component,
// slow upward trend, AR noise.
math::Vec GenWaterConsumption(size_t n, Rng& rng) {
  auto v = Mix({SeasonalWithHarmonic(n, 7.0, 6.0, 2.0),
                SeasonalWave(n, 365.0, 8.0, 1.1),
                LinearTrend(n, 10.0),
                Ar1Noise(n, 0.6, 2.0, rng)});
  for (double& x : v) x += 100.0;
  ClipInPlace(&v, 0.0, 1e9);
  return v;
}

// 2: Bike-sharing humidity — hourly, daily cycle, bounded [0,100], strongly
// autocorrelated.
math::Vec GenHumidity(size_t n, Rng& rng) {
  auto v = Mix({SeasonalWithHarmonic(n, 24.0, 12.0, 4.0, 2.0),
                Ar1Noise(n, 0.92, 2.5, rng)});
  for (double& x : v) x += 62.0;
  ClipInPlace(&v, 0.0, 100.0);
  return v;
}

// 3: Bike-sharing windspeed — hourly, weak diurnal cycle, skewed and
// non-negative.
math::Vec GenWindspeed(size_t n, Rng& rng) {
  auto base = Mix({SeasonalWave(n, 24.0, 3.0, 0.4),
                   Ar1Noise(n, 0.75, 1.6, rng)});
  for (double& x : base) x = std::fabs(x + 9.0);
  return base;
}

// 4: Total bike rentals — hourly counts, daily + weekly cycles, trend as the
// service grows, Poisson-like dispersion.
math::Vec GenBikeRentals(size_t n, Rng& rng) {
  auto shape = Mix({SeasonalWithHarmonic(n, 24.0, 60.0, 25.0, 4.2),
                    SeasonalWave(n, 168.0, 20.0, 0.3),
                    LinearTrend(n, 40.0)});
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    double mean = std::max(2.0, shape[t] + 90.0);
    v[t] = static_cast<double>(rng.Poisson(mean));
  }
  return v;
}

// 5: Vatnsdalsa river flow — daily, annual cycle, precipitation-driven
// exponential surges with slow decay.
math::Vec GenRiverFlow(size_t n, Rng& rng) {
  auto v = Mix({SeasonalWave(n, 365.0, 10.0, -0.5),
                SpikeTrain(n, 0.05, 25.0, 0.9, rng),
                Ar1Noise(n, 0.7, 1.0, rng)});
  for (double& x : v) x += 18.0;
  ClipInPlace(&v, 0.5, 1e9);
  return v;
}

// 6: Total cloud cover — hourly, bounded oktas [0,8], persistent regimes.
math::Vec GenCloudCover(size_t n, Rng& rng) {
  auto regime = RegimeMultiplier(n, 1.5, 6.5, 0.02, rng);
  auto noise = Ar1Noise(n, 0.9, 1.0, rng);
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) v[t] = regime[t] + noise[t];
  ClipInPlace(&v, 0.0, 8.0);
  return v;
}

// 7: Precipitation — hourly, zero-inflated bursts.
math::Vec GenPrecipitation(size_t n, Rng& rng) {
  auto v = SpikeTrain(n, 0.08, 3.0, 0.55, rng);
  for (double& x : v) {
    if (x < 0.15) x = 0.0;  // dry hours dominate.
  }
  return v;
}

// 8: Global horizontal radiation — hourly, hard diurnal cycle (zero at
// night), cloud-attenuation regime switching.
math::Vec GenSolarRadiation(size_t n, Rng& rng) {
  auto attenuation = RegimeMultiplier(n, 0.35, 1.0, 0.04, rng);
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    double hour = static_cast<double>(t % 24);
    double sun = std::sin((hour - 6.0) / 12.0 * M_PI);
    double clear_sky = sun > 0.0 ? 800.0 * sun : 0.0;
    double val = clear_sky * attenuation[t] + rng.Normal(0.0, 12.0);
    v[t] = std::max(0.0, val);
  }
  return v;
}

// 9/10: Porto taxi demand — half-hourly pick-up counts, daily + weekly
// cycles, concept drift via level shifts (the BRIGHT paper's motivation).
math::Vec GenTaxiDemand(size_t n, Rng& rng, double level, double drift_sigma) {
  auto shape = Mix({SeasonalWithHarmonic(n, 48.0, 30.0, 14.0, 4.0),
                    SeasonalWave(n, 336.0, 10.0, 0.9),
                    LevelShifts(n, 3, drift_sigma, rng)});
  math::Vec v(n);
  for (size_t t = 0; t < n; ++t) {
    double mean = std::max(1.0, shape[t] + level);
    v[t] = static_cast<double>(rng.Poisson(mean));
  }
  return v;
}

// 11: NH4 concentration in wastewater — 10-minute steps, mean-reverting with
// inflow spikes and slow drift.
math::Vec GenNh4(size_t n, Rng& rng) {
  auto v = Mix({Ar1Noise(n, 0.95, 0.5, rng),
                SpikeTrain(n, 0.02, 6.0, 0.93, rng),
                LevelShifts(n, 2, 2.0, rng)});
  for (double& x : v) x += 20.0;
  ClipInPlace(&v, 0.0, 1e9);
  return v;
}

// 12-14: Appliances-energy room humidity RH_3/4/5 — 10-minute steps, daily
// cycle (period 144), bounded, highly persistent; rooms differ in phase and
// noise level.
math::Vec GenRoomHumidity(size_t n, Rng& rng, double phase, double noise) {
  auto v = Mix({SeasonalWave(n, 144.0, 4.0, phase),
                Ar1Noise(n, 0.97, noise, rng),
                LinearTrend(n, -3.0)});
  for (double& x : v) x += 40.0;
  ClipInPlace(&v, 0.0, 100.0);
  return v;
}

// 15: Outdoor temperature — 10-minute steps, daily cycle + seasonal warming
// trend (January to May window).
math::Vec GenOutdoorTemperature(size_t n, Rng& rng) {
  return Mix({SeasonalWithHarmonic(n, 144.0, 4.5, 1.5, -1.3),
              LinearTrend(n, 12.0),
              Ar1Noise(n, 0.95, 0.7, rng)});
}

// 16: Station wind speed — 10-minute steps, gusty/skewed.
math::Vec GenStationWind(size_t n, Rng& rng) {
  auto base = Mix({Ar1Noise(n, 0.9, 1.1, rng),
                   SpikeTrain(n, 0.03, 3.0, 0.8, rng)});
  for (double& x : base) x = std::fabs(x + 4.0);
  return base;
}

// 17: Dew point temperature — 10-minute steps, smooth daily cycle + trend,
// strongly autocorrelated.
math::Vec GenDewpoint(size_t n, Rng& rng) {
  return Mix({SeasonalWave(n, 144.0, 2.5, 0.4),
              LinearTrend(n, 8.0),
              Ar1Noise(n, 0.985, 0.25, rng)});
}

// 18-20: European stock indices (CAC/DAX/SMI) — 10-minute data, geometric
// random walk with volatility clustering; indices differ in level, drift and
// volatility.
math::Vec GenStockIndex(size_t n, Rng& rng, double start, double mu,
                        double vol) {
  return GeometricRandomWalk(n, start, mu, vol, 0.9, rng);
}

std::vector<DatasetSpec> BuildSpecs() {
  return {
      {1, "Water consumption", "Oporto city", "daily", 7, 1200,
       "weekly+annual seasonality, upward trend, AR noise"},
      {2, "Humidity", "Bike sharing", "hourly", 24, 1000,
       "daily cycle, bounded [0,100], persistent"},
      {3, "Windspeed", "Bike sharing", "hourly", 24, 1000,
       "weak diurnal cycle, skewed, non-negative"},
      {4, "Total bike rentals", "Bike sharing", "hourly", 24, 1000,
       "daily+weekly cycles, growth trend, count dispersion"},
      {5, "Vatnsdalsa", "River flow", "daily", 365, 1095,
       "annual cycle, exponential flow surges"},
      {6, "Total cloud cover", "Weather data (NREL)", "hourly", 0, 1000,
       "bounded oktas, persistent regimes"},
      {7, "Precipitation", "Weather data (NREL)", "hourly", 0, 1000,
       "zero-inflated bursts"},
      {8, "Global horizontal radiation", "Solar radiation monitoring",
       "hourly", 24, 1000,
       "hard diurnal cycle, cloud attenuation regimes"},
      {9, "Taxi Demand 1", "Porto Taxi Data", "half-hourly", 48, 1200,
       "daily+weekly cycles, concept drift (level shifts)"},
      {10, "Taxi Demand 2", "Porto Taxi Data", "half-hourly", 48, 1200,
       "daily+weekly cycles, stronger drift"},
      {11, "NH4 concentration", "NH4 in wastewater", "10-minute", 0, 900,
       "mean reversion, inflow spikes, slow drift"},
      {12, "Humidity RH_3", "Appliances Energy (UCI)", "10-minute", 144, 1000,
       "daily cycle, bounded, highly persistent"},
      {13, "Humidity RH_4", "Appliances Energy (UCI)", "10-minute", 144, 1000,
       "daily cycle, bounded, highly persistent"},
      {14, "Humidity RH_5", "Appliances Energy (UCI)", "10-minute", 144, 1000,
       "daily cycle, bounded, noisier room"},
      {15, "Temperature T_out", "Appliances Energy (UCI)", "10-minute", 144,
       1000, "daily cycle + seasonal warming trend"},
      {16, "Wind speed", "Appliances Energy (UCI)", "10-minute", 0, 1000,
       "gusty, skewed, non-negative"},
      {17, "Tdewpoint", "Appliances Energy (UCI)", "10-minute", 144, 1000,
       "smooth daily cycle + trend"},
      {18, "France CAC", "European stock indices", "10-minute", 0, 1000,
       "geometric random walk, volatility clustering"},
      {19, "Germany DAX (Ibis)", "European stock indices", "10-minute", 0,
       1000, "geometric random walk, higher volatility"},
      {20, "Switzerland SMI", "European stock indices", "10-minute", 0, 1000,
       "geometric random walk, mild drift"},
  };
}

math::Vec Generate(int id, size_t n, Rng& rng) {
  switch (id) {
    case 1:
      return GenWaterConsumption(n, rng);
    case 2:
      return GenHumidity(n, rng);
    case 3:
      return GenWindspeed(n, rng);
    case 4:
      return GenBikeRentals(n, rng);
    case 5:
      return GenRiverFlow(n, rng);
    case 6:
      return GenCloudCover(n, rng);
    case 7:
      return GenPrecipitation(n, rng);
    case 8:
      return GenSolarRadiation(n, rng);
    case 9:
      return GenTaxiDemand(n, rng, 60.0, 12.0);
    case 10:
      return GenTaxiDemand(n, rng, 45.0, 20.0);
    case 11:
      return GenNh4(n, rng);
    case 12:
      return GenRoomHumidity(n, rng, 0.0, 0.35);
    case 13:
      return GenRoomHumidity(n, rng, 0.9, 0.45);
    case 14:
      return GenRoomHumidity(n, rng, 2.1, 0.7);
    case 15:
      return GenOutdoorTemperature(n, rng);
    case 16:
      return GenStationWind(n, rng);
    case 17:
      return GenDewpoint(n, rng);
    case 18:
      return GenStockIndex(n, rng, 4400.0, 2e-5, 0.0012);
    case 19:
      return GenStockIndex(n, rng, 9800.0, 1e-5, 0.0018);
    case 20:
      return GenStockIndex(n, rng, 7900.0, 3e-5, 0.0009);
    default:
      EADRL_CHECK(false);
  }
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>& specs =
      *new std::vector<DatasetSpec>(  // NOLINT(naked-new): leaked on purpose
          BuildSpecs());              // to dodge destruction-order issues
  return specs;
}

StatusOr<DatasetSpec> GetDatasetSpec(int id) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.id == id) return spec;
  }
  return Status::NotFound(StrCat("no dataset with id ", id));
}

StatusOr<Series> MakeDataset(int id, uint64_t seed, size_t length) {
  StatusOr<DatasetSpec> spec = GetDatasetSpec(id);
  if (!spec.ok()) return spec.status();
  size_t n = length == 0 ? spec->default_length : length;
  if (n < 20) {
    return Status::InvalidArgument("MakeDataset: length must be >= 20");
  }
  Rng rng(seed * 1000003ULL + static_cast<uint64_t>(id));
  math::Vec values = Generate(id, n, rng);
  return Series(spec->name, std::move(values), spec->frequency,
                spec->seasonal_period);
}

std::vector<Series> MakeAllDatasets(uint64_t seed, size_t length) {
  std::vector<Series> all;
  all.reserve(AllDatasetSpecs().size());
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    StatusOr<Series> s = MakeDataset(spec.id, seed, length);
    EADRL_CHECK(s.ok());
    all.push_back(std::move(s).value());
  }
  return all;
}

}  // namespace eadrl::ts
