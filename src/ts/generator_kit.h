#ifndef EADRL_TS_GENERATOR_KIT_H_
#define EADRL_TS_GENERATOR_KIT_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "math/vec.h"

namespace eadrl::ts {

/// Building blocks for the synthetic dataset generators that stand in for the
/// paper's 20 real-world series (see DESIGN.md, "Substitutions"). Each block
/// produces a length-n component that generators combine additively or
/// multiplicatively.

/// Sinusoidal seasonal component with the given period, amplitude and phase.
math::Vec SeasonalWave(size_t n, double period, double amplitude,
                       double phase = 0.0);

/// Sum of the fundamental and one harmonic — gives asymmetric daily shapes.
math::Vec SeasonalWithHarmonic(size_t n, double period, double amplitude,
                               double harmonic_amplitude, double phase = 0.0);

/// Linear trend from 0 to `total_rise` over the series.
math::Vec LinearTrend(size_t n, double total_rise);

/// Stationary AR(1) noise with coefficient phi and innovation stddev sigma.
math::Vec Ar1Noise(size_t n, double phi, double sigma, Rng& rng);

/// Gaussian random walk with the given step stddev.
math::Vec RandomWalk(size_t n, double step_sigma, Rng& rng);

/// Geometric random walk (log-returns) with GARCH(1,1)-style volatility
/// clustering — models intraday stock indices.
math::Vec GeometricRandomWalk(size_t n, double start, double mu,
                              double base_vol, double vol_persistence,
                              Rng& rng);

/// Piecewise-constant level component: `num_shifts` random change points,
/// each shifting the level by N(0, shift_sigma^2). Models concept drift.
math::Vec LevelShifts(size_t n, size_t num_shifts, double shift_sigma,
                      Rng& rng);

/// Sparse exponential-decay spike train: events arrive with probability
/// `event_prob` per step, magnitude ~ Exp(1/mean_magnitude), decaying with
/// factor `decay`. Models river-flow surges and precipitation bursts.
math::Vec SpikeTrain(size_t n, double event_prob, double mean_magnitude,
                     double decay, Rng& rng);

/// Two-state regime-switching multiplier in {low, high} with per-step switch
/// probability. Models cloudy/clear attenuation regimes.
math::Vec RegimeMultiplier(size_t n, double low, double high,
                           double switch_prob, Rng& rng);

/// Clips all values into [lo, hi].
void ClipInPlace(math::Vec* v, double lo, double hi);

/// Elementwise sum of components (all the same length).
math::Vec Mix(const std::vector<math::Vec>& components);

}  // namespace eadrl::ts

#endif  // EADRL_TS_GENERATOR_KIT_H_
