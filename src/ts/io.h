#ifndef EADRL_TS_IO_H_
#define EADRL_TS_IO_H_

#include <string>

#include "common/status.h"
#include "ts/series.h"

namespace eadrl::ts {

/// Options for loading a series from a delimited text file.
struct CsvOptions {
  char delimiter = ',';
  /// Zero-based column holding the values.
  size_t value_column = 0;
  /// Number of leading lines to skip (e.g. 1 for a header row).
  size_t skip_rows = 0;
  /// Name given to the loaded series (defaults to the file name).
  std::string name;
  std::string frequency;
  size_t seasonal_period = 0;
};

/// Loads a univariate series from a CSV/TSV file. Empty lines are skipped;
/// unparsable values produce an InvalidArgument status naming the line.
StatusOr<Series> LoadCsv(const std::string& path, const CsvOptions& options);

/// Writes a series as a single-column CSV (one value per line, header with
/// the series name).
Status SaveCsv(const Series& series, const std::string& path);

}  // namespace eadrl::ts

#endif  // EADRL_TS_IO_H_
