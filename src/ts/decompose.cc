#include "ts/decompose.h"

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::ts {

StatusOr<Decomposition> ClassicalDecompose(const math::Vec& values,
                                           size_t period) {
  if (period < 2) {
    return Status::InvalidArgument("ClassicalDecompose: period must be >= 2");
  }
  const size_t n = values.size();
  if (n < 2 * period) {
    return Status::InvalidArgument(
        "ClassicalDecompose: series shorter than two periods");
  }

  Decomposition out;
  out.trend.resize(n);
  out.seasonal.resize(n);
  out.remainder.resize(n);

  // Centered moving average of width `period` (2x(period) MA when the
  // period is even, per the classical recipe).
  const size_t half = period / 2;
  for (size_t t = 0; t < n; ++t) {
    size_t lo = t >= half ? t - half : 0;
    size_t hi = std::min(n - 1, t + half);
    if (t >= half && t + half < n && period % 2 == 0) {
      // Even period: half-weights at both ends.
      double s = 0.5 * values[t - half] + 0.5 * values[t + half];
      for (size_t j = t - half + 1; j < t + half; ++j) s += values[j];
      out.trend[t] = s / static_cast<double>(period);
    } else {
      double s = 0.0;
      for (size_t j = lo; j <= hi; ++j) s += values[j];
      out.trend[t] = s / static_cast<double>(hi - lo + 1);
    }
  }

  // Average detrended values per seasonal position, then center them.
  math::Vec season_mean(period, 0.0);
  std::vector<size_t> counts(period, 0);
  for (size_t t = 0; t < n; ++t) {
    season_mean[t % period] += values[t] - out.trend[t];
    ++counts[t % period];
  }
  double grand = 0.0;
  for (size_t s = 0; s < period; ++s) {
    season_mean[s] /= static_cast<double>(counts[s]);
    grand += season_mean[s];
  }
  grand /= static_cast<double>(period);
  for (double& s : season_mean) s -= grand;

  for (size_t t = 0; t < n; ++t) {
    out.seasonal[t] = season_mean[t % period];
    out.remainder[t] = values[t] - out.trend[t] - out.seasonal[t];
  }
  return out;
}

StatusOr<Decomposition> ClassicalDecompose(const Series& series) {
  if (series.seasonal_period() == 0) {
    return Status::InvalidArgument(
        "ClassicalDecompose: series declares no seasonal period");
  }
  return ClassicalDecompose(series.values(), series.seasonal_period());
}

}  // namespace eadrl::ts
