#ifndef EADRL_TS_SERIES_H_
#define EADRL_TS_SERIES_H_

#include <string>
#include <vector>

#include "math/vec.h"

namespace eadrl::ts {

/// A univariate time series: an ordered sequence of real values plus
/// descriptive metadata. Values are equally spaced; the sampling frequency is
/// recorded as a human-readable label and an optional dominant seasonal
/// period (in steps) used by seasonal models.
class Series {
 public:
  Series() = default;
  Series(std::string name, math::Vec values, std::string frequency = "",
         size_t seasonal_period = 0)
      : name_(std::move(name)),
        frequency_(std::move(frequency)),
        seasonal_period_(seasonal_period),
        values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  const std::string& frequency() const { return frequency_; }
  size_t seasonal_period() const { return seasonal_period_; }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](size_t i) const { return values_[i]; }
  const math::Vec& values() const { return values_; }
  math::Vec& values() { return values_; }

  /// Returns the subseries [begin, end) keeping the metadata.
  Series Slice(size_t begin, size_t end) const;

  /// First-order difference series (size n-1).
  Series Diff() const;

  /// Appends one observation.
  void PushBack(double v) { values_.push_back(v); }

 private:
  std::string name_;
  std::string frequency_;
  size_t seasonal_period_ = 0;
  math::Vec values_;
};

/// Train/test pair produced by a chronological split.
struct TrainTestSplit {
  Series train;
  Series test;
};

/// Chronological split: the first `train_ratio` fraction becomes the training
/// series, the remainder the test series (no shuffling — order matters).
TrainTestSplit SplitTrainTest(const Series& s, double train_ratio);

}  // namespace eadrl::ts

#endif  // EADRL_TS_SERIES_H_
