#include "ts/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace eadrl::ts {

StatusOr<Series> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("LoadCsv: cannot open ", path));
  }

  math::Vec values;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line_number <= options.skip_rows) continue;
    // Strip trailing carriage return (Windows CSVs).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    // Split to the requested column.
    size_t col = 0;
    size_t start = 0;
    std::string field;
    while (true) {
      size_t end = line.find(options.delimiter, start);
      std::string current = line.substr(
          start, end == std::string::npos ? std::string::npos : end - start);
      if (col == options.value_column) {
        field = current;
        break;
      }
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("LoadCsv: line ", line_number, " has no column ",
                   options.value_column));
      }
      start = end + 1;
      ++col;
    }

    char* parse_end = nullptr;
    double v = std::strtod(field.c_str(), &parse_end);
    if (parse_end == field.c_str()) {
      return Status::InvalidArgument(
          StrCat("LoadCsv: unparsable value '", field, "' at line ",
                 line_number));
    }
    values.push_back(v);
  }
  if (values.empty()) {
    return Status::InvalidArgument(StrCat("LoadCsv: no values in ", path));
  }

  std::string name = options.name;
  if (name.empty()) {
    size_t slash = path.find_last_of('/');
    name = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  return Series(name, std::move(values), options.frequency,
                options.seasonal_period);
}

Status SaveCsv(const Series& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(StrCat("SaveCsv: cannot open ", path));
  }
  out << series.name() << "\n";
  for (size_t i = 0; i < series.size(); ++i) out << series[i] << "\n";
  if (!out) {
    return Status::Internal(StrCat("SaveCsv: write failed for ", path));
  }
  return Status::Ok();
}

}  // namespace eadrl::ts
