#include "ts/embedding.h"

namespace eadrl::ts {

StatusOr<SupervisedData> DelayEmbed(const math::Vec& values, size_t k) {
  if (k == 0) return Status::InvalidArgument("DelayEmbed: k must be positive");
  if (values.size() < k + 1) {
    return Status::InvalidArgument(
        "DelayEmbed: series shorter than embedding dimension + 1");
  }
  const size_t n_rows = values.size() - k;
  SupervisedData data;
  data.x = math::Matrix(n_rows, k);
  data.y.resize(n_rows);
  for (size_t i = 0; i < n_rows; ++i) {
    for (size_t j = 0; j < k; ++j) data.x(i, j) = values[i + j];
    data.y[i] = values[i + k];
  }
  return data;
}

StatusOr<SupervisedData> DelayEmbed(const Series& s, size_t k) {
  return DelayEmbed(s.values(), k);
}

math::Vec LastWindow(const math::Vec& values, size_t k) {
  EADRL_CHECK_GE(values.size(), k);
  return math::Vec(values.end() - static_cast<ptrdiff_t>(k), values.end());
}

}  // namespace eadrl::ts
