#ifndef EADRL_TS_EMBEDDING_H_
#define EADRL_TS_EMBEDDING_H_

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "ts/series.h"

namespace eadrl::ts {

/// A supervised-learning view of a series produced by delay embedding:
/// row i of `x` holds the k lagged values (x_{t-k}, ..., x_{t-1}) and
/// `y[i]` holds the target x_t, for t = k .. n-1.
struct SupervisedData {
  math::Matrix x;
  math::Vec y;
};

/// Delay (Takens) embedding of a series with embedding dimension k.
/// The paper uses k = 5 for all series. Returns InvalidArgument if the series
/// is shorter than k + 1.
StatusOr<SupervisedData> DelayEmbed(const Series& s, size_t k);

/// Embeds a raw value vector (same layout as DelayEmbed).
StatusOr<SupervisedData> DelayEmbed(const math::Vec& values, size_t k);

/// Extracts the most recent k values as a feature row for one-step-ahead
/// prediction.
math::Vec LastWindow(const math::Vec& values, size_t k);

}  // namespace eadrl::ts

#endif  // EADRL_TS_EMBEDDING_H_
