#include "models/ets.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"
#include "math/stats.h"

namespace eadrl::models {
namespace {

const char* VariantName(EtsVariant v) {
  switch (v) {
    case EtsVariant::kSimple:
      return "ses";
    case EtsVariant::kHolt:
      return "holt";
    case EtsVariant::kDampedHolt:
      return "damped-holt";
    case EtsVariant::kHoltWintersAdditive:
      return "holt-winters";
  }
  return "?";
}

}  // namespace

EtsForecaster::EtsForecaster(EtsVariant variant, size_t seasonal_period)
    : name_(StrCat("ets-", VariantName(variant))),
      variant_(variant),
      period_(seasonal_period) {}

double EtsForecaster::RunSse(const math::Vec& data, double alpha, double beta,
                             double gamma, State* final_state) const {
  const bool trended = variant_ != EtsVariant::kSimple;
  const bool seasonal =
      variant_ == EtsVariant::kHoltWintersAdditive && period_ >= 2 &&
      data.size() >= 2 * period_;
  const double phi =
      variant_ == EtsVariant::kDampedHolt ? damping_ : 1.0;

  State st;
  size_t start = 1;
  if (seasonal) {
    // Initialize level/seasonals from the first full period.
    double first_mean = 0.0;
    for (size_t i = 0; i < period_; ++i) first_mean += data[i];
    first_mean /= static_cast<double>(period_);
    st.level = first_mean;
    st.seasonal.resize(period_);
    for (size_t i = 0; i < period_; ++i) {
      st.seasonal[i] = data[i] - first_mean;
    }
    st.season_index = 0;
    if (trended) {
      double second_mean = 0.0;
      for (size_t i = period_; i < 2 * period_; ++i) second_mean += data[i];
      second_mean /= static_cast<double>(period_);
      st.trend = (second_mean - first_mean) / static_cast<double>(period_);
    }
    start = period_;
  } else {
    st.level = data[0];
    if (trended && data.size() > 1) st.trend = data[1] - data[0];
  }

  double sse = 0.0;
  for (size_t t = start; t < data.size(); ++t) {
    double seas = seasonal ? st.seasonal[st.season_index] : 0.0;
    double forecast = st.level + phi * st.trend + seas;
    double err = data[t] - forecast;
    sse += err * err;

    double prev_level = st.level;
    st.level = alpha * (data[t] - seas) +
               (1.0 - alpha) * (st.level + phi * st.trend);
    if (trended) {
      st.trend = beta * (st.level - prev_level) + (1.0 - beta) * phi * st.trend;
    }
    if (seasonal) {
      st.seasonal[st.season_index] =
          gamma * (data[t] - st.level) +
          (1.0 - gamma) * st.seasonal[st.season_index];
      st.season_index = (st.season_index + 1) % period_;
    }
  }
  if (final_state != nullptr) *final_state = st;
  return sse;
}

Status EtsForecaster::Fit(const ts::Series& train) {
  if (train.size() < 10) {
    return Status::InvalidArgument("ETS: training series too short");
  }
  if (variant_ == EtsVariant::kHoltWintersAdditive && period_ == 0) {
    period_ = train.seasonal_period();
  }

  const math::Vec& data = train.values();
  const bool trended = variant_ != EtsVariant::kSimple;
  const bool seasonal = variant_ == EtsVariant::kHoltWintersAdditive;

  static const double kGrid[] = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
  double best_sse = std::numeric_limits<double>::infinity();
  for (double a : kGrid) {
    if (!trended) {
      double sse = RunSse(data, a, 0.0, 0.0, nullptr);
      if (sse < best_sse) {
        best_sse = sse;
        alpha_ = a;
      }
      continue;
    }
    for (double b : kGrid) {
      if (!seasonal) {
        double sse = RunSse(data, a, b, 0.0, nullptr);
        if (sse < best_sse) {
          best_sse = sse;
          alpha_ = a;
          beta_ = b;
        }
        continue;
      }
      for (double g : kGrid) {
        double sse = RunSse(data, a, b, g, nullptr);
        if (sse < best_sse) {
          best_sse = sse;
          alpha_ = a;
          beta_ = b;
          gamma_ = g;
        }
      }
    }
  }

  RunSse(data, alpha_, beta_, gamma_, &state_);
  fitted_ = true;
  return Status::Ok();
}

double EtsForecaster::ForecastFromState() const {
  const bool trended = variant_ != EtsVariant::kSimple;
  const double phi = variant_ == EtsVariant::kDampedHolt ? damping_ : 1.0;
  double seas = state_.seasonal.empty()
                    ? 0.0
                    : state_.seasonal[state_.season_index];
  return state_.level + (trended ? phi * state_.trend : 0.0) + seas;
}

double EtsForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  double pred = ForecastFromState();
  if (!std::isfinite(pred)) pred = state_.level;
  return pred;
}

void EtsForecaster::UpdateState(double value) {
  const bool trended = variant_ != EtsVariant::kSimple;
  const double phi = variant_ == EtsVariant::kDampedHolt ? damping_ : 1.0;
  double seas = state_.seasonal.empty()
                    ? 0.0
                    : state_.seasonal[state_.season_index];
  double prev_level = state_.level;
  state_.level = alpha_ * (value - seas) +
                 (1.0 - alpha_) * (state_.level + phi * state_.trend);
  if (trended) {
    state_.trend = beta_ * (state_.level - prev_level) +
                   (1.0 - beta_) * phi * state_.trend;
  }
  if (!state_.seasonal.empty()) {
    state_.seasonal[state_.season_index] =
        gamma_ * (value - state_.level) +
        (1.0 - gamma_) * state_.seasonal[state_.season_index];
    state_.season_index = (state_.season_index + 1) % state_.seasonal.size();
  }
}

void EtsForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  UpdateState(value);
}

}  // namespace eadrl::models
