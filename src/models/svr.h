#ifndef EADRL_MODELS_SVR_H_
#define EADRL_MODELS_SVR_H_

#include "common/rng.h"
#include "math/matrix.h"
#include "models/regressor.h"

namespace eadrl::models {

/// Support vector regression trained in the primal with stochastic
/// subgradient descent on the epsilon-insensitive loss (Drucker et al. 1997;
/// Pegasos-style optimization). An optional random-Fourier-feature map
/// (Rahimi & Recht 2007) approximates an RBF kernel; with
/// `rff_features == 0` the model is linear.
class SvrRegressor : public Regressor {
 public:
  struct Params {
    double c = 1.0;           ///< inverse regularization strength.
    double epsilon = 0.01;    ///< insensitivity tube half-width.
    size_t epochs = 40;
    double learning_rate = 0.05;
    size_t rff_features = 0;  ///< 0 = linear SVR.
    double rff_length_scale = 1.0;
    uint64_t seed = 42;
  };

  explicit SvrRegressor(Params params);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  math::Vec MapFeatures(const math::Vec& x) const;

  Params params_;
  math::Matrix rff_w_;   // rff_features x input_dim
  math::Vec rff_b_;
  math::Vec weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_SVR_H_
