#include "models/arima.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace eadrl::models {

ArimaForecaster::ArimaForecaster(size_t p, size_t d, size_t q)
    : name_(StrCat("arima(", p, ",", d, ",", q, ")")), p_(p), d_(d), q_(q) {
  EADRL_CHECK_LE(d, 2u);
  EADRL_CHECK(p + q > 0);
}

math::Vec ArimaForecaster::Difference(const math::Vec& v, size_t d) {
  math::Vec out = v;
  for (size_t round = 0; round < d; ++round) {
    math::Vec next(out.size() - 1);
    for (size_t i = 1; i < out.size(); ++i) next[i - 1] = out[i] - out[i - 1];
    out = std::move(next);
  }
  return out;
}

Status ArimaForecaster::Fit(const ts::Series& train) {
  const size_t min_len = p_ + q_ + d_ + 20;
  if (train.size() < min_len) {
    return Status::InvalidArgument("ARIMA: training series too short");
  }
  math::Vec w = Difference(train.values(), d_);
  const size_t n = w.size();

  // Stage 1: long AR to estimate innovations.
  const size_t long_p = std::min<size_t>(
      std::max<size_t>(p_ + q_ + 5, 10), n / 4);
  math::Matrix x_long(n - long_p, long_p);
  math::Vec y_long(n - long_p);
  for (size_t i = 0; i < n - long_p; ++i) {
    for (size_t j = 0; j < long_p; ++j) {
      x_long(i, j) = w[i + long_p - 1 - j];
    }
    y_long[i] = w[i + long_p];
  }
  double w_mean = math::Mean(w);
  // Center to absorb the mean into an implicit intercept for stage 1.
  for (auto& v : x_long.data()) v -= w_mean;
  for (auto& v : y_long) v -= w_mean;
  StatusOr<math::Vec> ar_long = math::SolveRidge(x_long, y_long, 1e-4);
  EADRL_RETURN_IF_ERROR(ar_long.status());

  math::Vec e(n, 0.0);  // innovations; zero for the first long_p entries.
  for (size_t i = long_p; i < n; ++i) {
    double pred = w_mean;
    for (size_t j = 0; j < long_p; ++j) {
      pred += (*ar_long)[j] * (w[i - 1 - j] - w_mean);
    }
    e[i] = w[i] - pred;
  }

  // Stage 2: regress w_t on p lags of w and q lags of e.
  const size_t start = std::max(std::max(p_, q_), long_p);
  const size_t rows = n - start;
  if (rows < 10) return Status::InvalidArgument("ARIMA: too few rows");
  math::Matrix x2(rows, p_ + q_);
  math::Vec y2(rows);
  for (size_t i = 0; i < rows; ++i) {
    size_t t = start + i;
    for (size_t j = 0; j < p_; ++j) x2(i, j) = w[t - 1 - j];
    for (size_t j = 0; j < q_; ++j) x2(i, p_ + j) = e[t - 1 - j];
    y2[i] = w[t];
  }
  // Center lagged-w columns and y (the innovations are mean zero already).
  math::Vec col_means(p_ + q_, 0.0);
  for (size_t j = 0; j < p_ + q_; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < rows; ++i) s += x2(i, j);
    col_means[j] = s / static_cast<double>(rows);
  }
  double y2_mean = math::Mean(y2);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < p_ + q_; ++j) x2(i, j) -= col_means[j];
    y2[i] -= y2_mean;
  }
  StatusOr<math::Vec> coef = math::SolveRidge(x2, y2, 1e-4);
  EADRL_RETURN_IF_ERROR(coef.status());

  phi_.assign(coef->begin(), coef->begin() + p_);
  theta_.assign(coef->begin() + p_, coef->end());
  intercept_ = y2_mean;
  for (size_t j = 0; j < p_ + q_; ++j) {
    intercept_ -= (*coef)[j] * col_means[j];
  }

  // Initialize forecasting state from the series tail.
  recent_w_.clear();
  recent_e_.clear();
  last_raw_.clear();
  size_t keep = std::max<size_t>(std::max(p_, q_), 1);
  for (size_t i = n >= keep ? n - keep : 0; i < n; ++i) {
    recent_w_.push_back(w[i]);
    recent_e_.push_back(e[i]);
  }
  for (size_t i = train.size() >= d_ ? train.size() - d_ : 0;
       i < train.size(); ++i) {
    last_raw_.push_back(train[i]);
  }
  last_forecast_w_ = ForecastDifferenced();
  fitted_ = true;
  return Status::Ok();
}

double ArimaForecaster::ForecastDifferenced() const {
  double pred = intercept_;
  for (size_t j = 0; j < p_ && j < recent_w_.size(); ++j) {
    pred += phi_[j] * recent_w_[recent_w_.size() - 1 - j];
  }
  for (size_t j = 0; j < q_ && j < recent_e_.size(); ++j) {
    pred += theta_[j] * recent_e_[recent_e_.size() - 1 - j];
  }
  return pred;
}

double ArimaForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  last_forecast_w_ = ForecastDifferenced();
  // Integrate back to the raw scale.
  double pred = last_forecast_w_;
  if (d_ == 1) {
    pred += last_raw_.back();
  } else if (d_ == 2) {
    pred += 2.0 * last_raw_.back() - last_raw_.front();
  }
  if (!std::isfinite(pred)) pred = last_raw_.empty() ? 0.0 : last_raw_.back();
  return pred;
}

void ArimaForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  // Differenced new value.
  double w_new = value;
  if (d_ == 1) {
    w_new = value - last_raw_.back();
  } else if (d_ == 2) {
    w_new = value - 2.0 * last_raw_.back() + last_raw_.front();
  }
  double innovation = w_new - ForecastDifferenced();

  recent_w_.push_back(w_new);
  if (recent_w_.size() > std::max<size_t>(std::max(p_, q_), 1)) {
    recent_w_.pop_front();
  }
  recent_e_.push_back(innovation);
  if (recent_e_.size() > std::max<size_t>(std::max(p_, q_), 1)) {
    recent_e_.pop_front();
  }
  if (d_ > 0) {
    last_raw_.push_back(value);
    while (last_raw_.size() > d_) last_raw_.pop_front();
  }
}

}  // namespace eadrl::models
