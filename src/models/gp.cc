#include "models/gp.h"

#include <cmath>

#include "common/check.h"
#include "math/linalg.h"
#include "math/stats.h"

namespace eadrl::models {

GaussianProcessRegressor::GaussianProcessRegressor(Params params)
    : params_(params) {
  EADRL_CHECK_GT(params_.length_scale, 0.0);
  EADRL_CHECK_GT(params_.noise_variance, 0.0);
}

double GaussianProcessRegressor::Kernel(const math::Vec& a,
                                        const math::Vec& b) const {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  return params_.signal_variance *
         std::exp(-0.5 * d2 / (params_.length_scale * params_.length_scale));
}

Status GaussianProcessRegressor::Fit(const math::Matrix& x,
                                     const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("GP: bad training data");
  }
  // Uniform stride subsampling preserves the temporal spread of embedded
  // windows better than random subsampling.
  size_t n = x.rows();
  if (n > params_.max_points) {
    double stride = static_cast<double>(n) /
                    static_cast<double>(params_.max_points);
    math::Matrix xs(params_.max_points, x.cols());
    math::Vec ys(params_.max_points);
    for (size_t i = 0; i < params_.max_points; ++i) {
      size_t src = static_cast<size_t>(static_cast<double>(i) * stride);
      xs.SetRow(i, x.Row(src));
      ys[i] = y[src];
    }
    train_x_ = std::move(xs);
    y_mean_ = math::Mean(ys);
    n = params_.max_points;

    math::Matrix k(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        double v = Kernel(train_x_.Row(i), train_x_.Row(j));
        k(i, j) = v;
        k(j, i) = v;
      }
      k(i, i) += params_.noise_variance;
    }
    math::Vec centered(n);
    for (size_t i = 0; i < n; ++i) centered[i] = ys[i] - y_mean_;
    StatusOr<math::Vec> alpha = math::CholeskySolve(k, centered);
    EADRL_RETURN_IF_ERROR(alpha.status());
    alpha_ = std::move(alpha).value();
    StatusOr<math::Matrix> inv = math::CholeskyInverse(k);
    EADRL_RETURN_IF_ERROR(inv.status());
    k_inverse_ = std::move(inv).value();
  } else {
    train_x_ = x;
    y_mean_ = math::Mean(y);
    math::Matrix k(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        double v = Kernel(train_x_.Row(i), train_x_.Row(j));
        k(i, j) = v;
        k(j, i) = v;
      }
      k(i, i) += params_.noise_variance;
    }
    math::Vec centered(n);
    for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
    StatusOr<math::Vec> alpha = math::CholeskySolve(k, centered);
    EADRL_RETURN_IF_ERROR(alpha.status());
    alpha_ = std::move(alpha).value();
    StatusOr<math::Matrix> inv = math::CholeskyInverse(k);
    EADRL_RETURN_IF_ERROR(inv.status());
    k_inverse_ = std::move(inv).value();
  }
  fitted_ = true;
  return Status::Ok();
}

double GaussianProcessRegressor::Predict(const math::Vec& x) const {
  double mean, var;
  PredictWithVariance(x, &mean, &var);
  return mean;
}

void GaussianProcessRegressor::PredictWithVariance(const math::Vec& x,
                                                   double* mean,
                                                   double* variance) const {
  EADRL_CHECK(fitted_);
  const size_t n = train_x_.rows();
  math::Vec kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = Kernel(train_x_.Row(i), x);
  *mean = y_mean_ + math::Dot(kstar, alpha_);
  math::Vec kinv_kstar = k_inverse_.MatVec(kstar);
  double v = Kernel(x, x) - math::Dot(kstar, kinv_kstar);
  *variance = std::max(0.0, v);
}

}  // namespace eadrl::models
