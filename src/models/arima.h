#ifndef EADRL_MODELS_ARIMA_H_
#define EADRL_MODELS_ARIMA_H_

#include <deque>
#include <string>

#include "math/vec.h"
#include "models/forecaster.h"

namespace eadrl::models {

/// ARIMA(p, d, q) forecaster fit by the Hannan–Rissanen two-stage procedure:
/// a long autoregression estimates innovations, then the ARMA coefficients
/// are obtained by (ridge-regularized) least squares on lagged values and
/// lagged innovations. Differencing of order d (0, 1 or 2) is handled by
/// integrating forecasts back to the original scale.
class ArimaForecaster : public Forecaster {
 public:
  ArimaForecaster(size_t p, size_t d, size_t q);

  const std::string& name() const override { return name_; }
  Status Fit(const ts::Series& train) override;
  double PredictNext() override;
  void Observe(double value) override;

  const math::Vec& ar_coefficients() const { return phi_; }
  const math::Vec& ma_coefficients() const { return theta_; }
  double intercept() const { return intercept_; }

 private:
  /// Differences a vector d times.
  static math::Vec Difference(const math::Vec& v, size_t d);

  /// Computes the ARMA one-step forecast on the differenced scale.
  double ForecastDifferenced() const;

  std::string name_;
  size_t p_;
  size_t d_;
  size_t q_;
  math::Vec phi_;
  math::Vec theta_;
  double intercept_ = 0.0;
  bool fitted_ = false;

  // State: recent differenced values (newest at back), recent innovations,
  // and the last d raw values needed for integration.
  std::deque<double> recent_w_;
  std::deque<double> recent_e_;
  std::deque<double> last_raw_;
  double last_forecast_w_ = 0.0;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_ARIMA_H_
