#ifndef EADRL_MODELS_GP_H_
#define EADRL_MODELS_GP_H_

#include "common/rng.h"
#include "models/regressor.h"

namespace eadrl::models {

/// Gaussian-process regression with an RBF kernel and Gaussian noise
/// (Rasmussen & Williams 2006, Alg. 2.1). Exact inference via Cholesky; to
/// bound the O(n^3) cost the training set is uniformly subsampled to
/// `max_points` when larger.
class GaussianProcessRegressor : public Regressor {
 public:
  struct Params {
    double length_scale = 1.0;
    double signal_variance = 1.0;
    double noise_variance = 0.1;
    size_t max_points = 400;
    uint64_t seed = 42;
  };

  explicit GaussianProcessRegressor(Params params);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  /// Predictive mean and variance at a point.
  void PredictWithVariance(const math::Vec& x, double* mean,
                           double* variance) const;

 private:
  double Kernel(const math::Vec& a, const math::Vec& b) const;

  Params params_;
  math::Matrix train_x_;
  math::Vec alpha_;        // K^{-1} (y - mean)
  math::Matrix k_inverse_; // for predictive variance.
  double y_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_GP_H_
