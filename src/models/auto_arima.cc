#include "models/auto_arima.h"

#include <cmath>
#include <limits>

#include "models/forecaster.h"
#include "ts/metrics.h"

namespace eadrl::models {

StatusOr<AutoArimaResult> AutoArima(const ts::Series& series,
                                    const AutoArimaOptions& options) {
  if (options.holdout_ratio <= 0.0 || options.holdout_ratio >= 0.5) {
    return Status::InvalidArgument("AutoArima: holdout_ratio out of (0,0.5)");
  }
  if (series.size() < 60) {
    return Status::InvalidArgument("AutoArima: series too short");
  }
  ts::TrainTestSplit split =
      ts::SplitTrainTest(series, 1.0 - options.holdout_ratio);

  AutoArimaResult best;
  double best_rmse = std::numeric_limits<double>::infinity();

  for (size_t d = 0; d <= options.max_d; ++d) {
    for (size_t p = 0; p <= options.max_p; ++p) {
      for (size_t q = 0; q <= options.max_q; ++q) {
        if (p + q == 0) continue;  // ArimaForecaster needs p + q > 0.
        ArimaForecaster candidate(p, d, q);
        if (!candidate.Fit(split.train).ok()) continue;
        math::Vec preds = RollingForecast(&candidate, split.test);
        double rmse = ts::Rmse(split.test.values(), preds);
        if (rmse < best_rmse) {
          best_rmse = rmse;
          best.p = p;
          best.d = d;
          best.q = q;
        }
      }
    }
  }
  if (!std::isfinite(best_rmse)) {
    return Status::Internal("AutoArima: no candidate order could be fit");
  }

  best.holdout_rmse = best_rmse;
  best.model = std::make_unique<ArimaForecaster>(best.p, best.d, best.q);
  EADRL_RETURN_IF_ERROR(best.model->Fit(series));
  return StatusOr<AutoArimaResult>(std::move(best));
}

}  // namespace eadrl::models
