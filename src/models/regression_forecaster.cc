#include "models/regression_forecaster.h"

#include <cmath>

#include "common/check.h"
#include "ts/embedding.h"

namespace eadrl::models {

RegressionForecaster::RegressionForecaster(
    std::string name, size_t k, std::unique_ptr<Regressor> regressor)
    : name_(std::move(name)), k_(k), regressor_(std::move(regressor)) {
  EADRL_CHECK_GT(k_, 0u);
  EADRL_CHECK(regressor_ != nullptr);
}

Status RegressionForecaster::Fit(const ts::Series& train) {
  if (train.size() < k_ + 2) {
    return Status::InvalidArgument(
        "RegressionForecaster: training series too short");
  }
  scaler_.Fit(train.values());
  math::Vec scaled = scaler_.Transform(train.values());

  StatusOr<ts::SupervisedData> data = ts::DelayEmbed(scaled, k_);
  EADRL_RETURN_IF_ERROR(data.status());
  EADRL_RETURN_IF_ERROR(regressor_->Fit(data->x, data->y));

  window_.assign(train.values().end() - static_cast<ptrdiff_t>(k_),
                 train.values().end());
  fitted_ = true;
  return Status::Ok();
}

double RegressionForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  math::Vec features(k_);
  for (size_t i = 0; i < k_; ++i) features[i] = scaler_.Transform(window_[i]);
  double pred_scaled = regressor_->Predict(features);
  double pred = scaler_.Inverse(pred_scaled);
  if (!std::isfinite(pred)) pred = window_.back();  // defensive fallback.
  return pred;
}

void RegressionForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  window_.push_back(value);
  window_.pop_front();
}

}  // namespace eadrl::models
