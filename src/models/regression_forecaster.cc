#include "models/regression_forecaster.h"

#include <cmath>

#include "common/check.h"
#include "ts/embedding.h"

namespace eadrl::models {

RegressionForecaster::RegressionForecaster(
    std::string name, size_t k, std::unique_ptr<Regressor> regressor)
    : name_(std::move(name)), k_(k), regressor_(std::move(regressor)) {
  EADRL_CHECK_GT(k_, 0u);
  EADRL_CHECK(regressor_ != nullptr);
}

Status RegressionForecaster::Fit(const ts::Series& train) {
  if (train.size() < k_ + 2) {
    return Status::InvalidArgument(
        "RegressionForecaster: training series too short");
  }
  scaler_.Fit(train.values());
  math::Vec scaled = scaler_.Transform(train.values());

  StatusOr<ts::SupervisedData> data = ts::DelayEmbed(scaled, k_);
  EADRL_RETURN_IF_ERROR(data.status());
  EADRL_RETURN_IF_ERROR(regressor_->Fit(data->x, data->y));

  window_.assign(train.values().end() - static_cast<ptrdiff_t>(k_),
                 train.values().end());
  fitted_ = true;
  return Status::Ok();
}

double RegressionForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  math::Vec features(k_);
  for (size_t i = 0; i < k_; ++i) features[i] = scaler_.Transform(window_[i]);
  double pred_scaled = regressor_->Predict(features);
  double pred = scaler_.Inverse(pred_scaled);
  if (!std::isfinite(pred)) pred = window_.back();  // defensive fallback.
  return pred;
}

bool RegressionForecaster::TryRollingForecast(const ts::Series& eval,
                                              math::Vec* preds) {
  EADRL_CHECK(fitted_);
  const size_t n = eval.size();
  preds->clear();
  if (n == 0) return true;
  // The window at step t is the last k values of window_ ++ eval[0..t-1];
  // stream[t..t+k) is exactly that slice.
  math::Vec stream(window_.begin(), window_.end());
  stream.insert(stream.end(), eval.values().begin(), eval.values().end());
  math::Matrix features(n, k_);
  for (size_t t = 0; t < n; ++t) {
    double* row = features.RowPtr(t);
    for (size_t i = 0; i < k_; ++i) row[i] = scaler_.Transform(stream[t + i]);
  }
  math::Vec scaled;
  if (!regressor_->PredictBatch(features, &scaled)) return false;
  preds->resize(n);
  for (size_t t = 0; t < n; ++t) {
    double pred = scaler_.Inverse(scaled[t]);
    // Same defensive fallback as PredictNext: the newest raw window value.
    if (!std::isfinite(pred)) pred = stream[t + k_ - 1];
    (*preds)[t] = pred;
  }
  window_.assign(stream.end() - static_cast<ptrdiff_t>(k_), stream.end());
  return true;
}

void RegressionForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  window_.push_back(value);
  window_.pop_front();
}

}  // namespace eadrl::models
