#ifndef EADRL_MODELS_FORECASTER_H_
#define EADRL_MODELS_FORECASTER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "math/vec.h"
#include "ts/series.h"

namespace eadrl::models {

/// One-step-ahead forecaster interface shared by every base model in the
/// pool and by the ensemble combiners' single-model baselines.
///
/// Protocol: call `Fit(train)` once; then, for each time step, call
/// `PredictNext()` for the one-step-ahead forecast and `Observe(value)` with
/// the value that materialized (the true observation during evaluation, or a
/// predicted one during multi-step rollout, paper Algorithm 1).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Stable identifier of this configured model (e.g. "arima(2,1,1)").
  virtual const std::string& name() const = 0;

  /// Trains on the series and initializes forecasting state at its end.
  virtual Status Fit(const ts::Series& train) = 0;

  /// One-step-ahead forecast from the current state. Requires a prior Fit.
  virtual double PredictNext() = 0;

  /// Advances the internal state with the next observed value.
  virtual void Observe(double value) = 0;

  /// Batched fan-out hook: a forecaster that can evaluate the whole
  /// teacher-forced one-step-ahead sweep in one batched pass fills `preds`
  /// (bit-identical to the PredictNext/Observe walk), advances its state
  /// past `eval`, and returns true. The default says "unsupported";
  /// RollingForecast then runs the scalar protocol.
  virtual bool TryRollingForecast(const ts::Series& eval, math::Vec* preds) {
    (void)eval;
    (void)preds;
    return false;
  }
};

/// Convenience: runs `PredictNext`/`Observe` over an evaluation series and
/// returns the one-step-ahead predictions (same length as `eval`). The
/// forecaster state afterwards includes all of `eval`.
math::Vec RollingForecast(Forecaster* model, const ts::Series& eval);

}  // namespace eadrl::models

#endif  // EADRL_MODELS_FORECASTER_H_
