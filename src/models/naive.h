#ifndef EADRL_MODELS_NAIVE_H_
#define EADRL_MODELS_NAIVE_H_

#include <deque>
#include <string>

#include "models/forecaster.h"

namespace eadrl::models {

/// Random-walk forecast: predicts the last observed value. Reference model
/// for sanity tests and MASE scaling.
class NaiveForecaster : public Forecaster {
 public:
  NaiveForecaster() : name_("naive") {}

  const std::string& name() const override { return name_; }
  Status Fit(const ts::Series& train) override;
  double PredictNext() override;
  void Observe(double value) override;

 private:
  std::string name_;
  double last_ = 0.0;
  bool fitted_ = false;
};

/// Seasonal naive: predicts the value one season ago.
class SeasonalNaiveForecaster : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(size_t period);

  const std::string& name() const override { return name_; }
  Status Fit(const ts::Series& train) override;
  double PredictNext() override;
  void Observe(double value) override;

 private:
  std::string name_;
  size_t period_;
  std::deque<double> buffer_;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_NAIVE_H_
