#include "models/pcr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/linalg.h"
#include "math/stats.h"
#include "math/vec.h"

namespace eadrl::models {

Status PcrRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() < 3) {
    return Status::InvalidArgument("PCR: bad training data");
  }
  const size_t n = x.rows(), p = x.cols();
  const size_t k = std::min(num_components_, p);

  feature_mean_.assign(p, 0.0);
  feature_scale_.assign(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    math::Vec col = x.Col(j);
    feature_mean_[j] = math::Mean(col);
    double sd = math::Stddev(col);
    feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
  }

  math::Matrix z(n, p);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) {
      z(i, j) = (x(i, j) - feature_mean_[j]) / feature_scale_[j];
    }
  }

  // Covariance and eigendecomposition.
  math::Matrix cov(p, p);
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = a; b < p; ++b) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) s += z(i, a) * z(i, b);
      s /= static_cast<double>(n - 1);
      cov(a, b) = s;
      cov(b, a) = s;
    }
  }
  StatusOr<math::EigenResult> eig = math::JacobiEigenSymmetric(cov);
  EADRL_RETURN_IF_ERROR(eig.status());

  components_ = math::Matrix(p, k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < p; ++i) components_(i, j) = eig->vectors(i, j);
  }

  // Scores and OLS on scores.
  math::Matrix scores = z.MatMul(components_);
  double y_mean = math::Mean(y);
  math::Vec yc(n);
  for (size_t i = 0; i < n; ++i) yc[i] = y[i] - y_mean;
  StatusOr<math::Vec> w = math::SolveRidge(scores, yc, 1e-8);
  EADRL_RETURN_IF_ERROR(w.status());
  coef_ = std::move(w).value();
  intercept_ = y_mean;
  fitted_ = true;
  return Status::Ok();
}

double PcrRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  const size_t p = feature_mean_.size();
  EADRL_CHECK_EQ(x.size(), p);
  math::Vec z(p);
  for (size_t j = 0; j < p; ++j) {
    z[j] = (x[j] - feature_mean_[j]) / feature_scale_[j];
  }
  double s = intercept_;
  for (size_t c = 0; c < components_.cols(); ++c) {
    double score = 0.0;
    for (size_t j = 0; j < p; ++j) score += z[j] * components_(j, c);
    s += coef_[c] * score;
  }
  return s;
}

Status PlsRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() < 3) {
    return Status::InvalidArgument("PLS: bad training data");
  }
  const size_t n = x.rows(), p = x.cols();
  const size_t k = std::min(num_components_, p);

  feature_mean_.assign(p, 0.0);
  feature_scale_.assign(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    math::Vec col = x.Col(j);
    feature_mean_[j] = math::Mean(col);
    double sd = math::Stddev(col);
    feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
  }
  double y_mean = math::Mean(y);

  math::Matrix e(n, p);  // deflated standardized X.
  math::Vec f(n);        // deflated y.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) {
      e(i, j) = (x(i, j) - feature_mean_[j]) / feature_scale_[j];
    }
    f[i] = y[i] - y_mean;
  }

  // NIPALS PLS1: accumulate the regression vector directly.
  coef_.assign(p, 0.0);
  math::Matrix w_mat(p, k), p_mat(p, k);
  math::Vec q_vec(k, 0.0);
  size_t extracted = 0;
  for (size_t c = 0; c < k; ++c) {
    math::Vec w = e.TransposeMatVec(f);
    double wn = math::Norm2(w);
    if (wn <= 1e-12) break;
    for (double& v : w) v /= wn;

    math::Vec t = e.MatVec(w);
    double tt = math::Dot(t, t);
    if (tt <= 1e-12) break;

    math::Vec pl = e.TransposeMatVec(t);
    for (double& v : pl) v /= tt;
    double q = math::Dot(f, t) / tt;

    for (size_t j = 0; j < p; ++j) {
      w_mat(j, c) = w[j];
      p_mat(j, c) = pl[j];
    }
    q_vec[c] = q;
    ++extracted;

    // Deflation.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < p; ++j) e(i, j) -= t[i] * pl[j];
      f[i] -= q * t[i];
    }
  }
  if (extracted == 0) {
    // Degenerate (e.g. constant target): intercept-only model.
    coef_.assign(p, 0.0);
    intercept_ = y_mean;
    fitted_ = true;
    return Status::Ok();
  }

  // B = W (P^T W)^{-1} q, using the first `extracted` components.
  math::Matrix ptw(extracted, extracted);
  for (size_t a = 0; a < extracted; ++a) {
    for (size_t b = 0; b < extracted; ++b) {
      double s = 0.0;
      for (size_t j = 0; j < p; ++j) s += p_mat(j, a) * w_mat(j, b);
      ptw(a, b) = s;
    }
  }
  math::Vec q_trunc(q_vec.begin(), q_vec.begin() + extracted);
  StatusOr<math::Vec> sol = math::LuSolve(ptw, q_trunc);
  EADRL_RETURN_IF_ERROR(sol.status());
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t c = 0; c < extracted; ++c) s += w_mat(j, c) * (*sol)[c];
    coef_[j] = s;
  }

  intercept_ = y_mean;
  fitted_ = true;
  return Status::Ok();
}

double PlsRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  double s = intercept_;
  for (size_t j = 0; j < coef_.size(); ++j) {
    s += coef_[j] * (x[j] - feature_mean_[j]) / feature_scale_[j];
  }
  return s;
}

}  // namespace eadrl::models
