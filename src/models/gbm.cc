#include "models/gbm.h"

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::models {

GbmRegressor::GbmRegressor(Params params)
    : params_(params), rng_(params.seed) {
  EADRL_CHECK_GT(params_.num_trees, 0u);
  EADRL_CHECK_GT(params_.learning_rate, 0.0);
}

Status GbmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("GBM: bad training data");
  }
  trees_.clear();
  base_prediction_ = math::Mean(y);

  const size_t n = x.rows();
  math::Vec residual(n);
  math::Vec current(n, base_prediction_);
  for (size_t t = 0; t < params_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) residual[i] = y[i] - current[i];

    std::vector<size_t> rows;
    if (params_.subsample < 1.0) {
      size_t m = std::max<size_t>(
          2, static_cast<size_t>(params_.subsample * static_cast<double>(n)));
      rows = rng_.SampleWithoutReplacement(n, m);
    } else {
      rows.resize(n);
      for (size_t i = 0; i < n; ++i) rows[i] = i;
    }

    auto tree = std::make_unique<RegressionTree>(params_.tree, &rng_);
    EADRL_RETURN_IF_ERROR(tree->FitSubset(x, residual, rows));
    for (size_t i = 0; i < n; ++i) {
      current[i] += params_.learning_rate * tree->Predict(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::Ok();
}

double GbmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(!trees_.empty());
  double s = base_prediction_;
  for (const auto& tree : trees_) {
    s += params_.learning_rate * tree->Predict(x);
  }
  return s;
}

}  // namespace eadrl::models
