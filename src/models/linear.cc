#include "models/linear.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "math/linalg.h"
#include "math/stats.h"

namespace eadrl::models {

Status RidgeRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("Ridge: bad training data");
  }
  // Center y and columns of X so the intercept is handled exactly and is not
  // penalized.
  const size_t n = x.rows(), p = x.cols();
  math::Vec col_means(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += x(i, j);
    col_means[j] = s / static_cast<double>(n);
  }
  double y_mean = math::Mean(y);

  math::Matrix xc(n, p);
  math::Vec yc(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) xc(i, j) = x(i, j) - col_means[j];
    yc[i] = y[i] - y_mean;
  }

  StatusOr<math::Vec> w = math::SolveRidge(xc, yc, lambda_);
  EADRL_RETURN_IF_ERROR(w.status());
  coef_ = std::move(w).value();
  intercept_ = y_mean;
  for (size_t j = 0; j < p; ++j) intercept_ -= coef_[j] * col_means[j];
  fitted_ = true;
  return Status::Ok();
}

double RidgeRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  EADRL_CHECK_EQ(x.size(), coef_.size());
  return intercept_ + math::Dot(coef_, x);
}

Status KnnRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("KNN: bad training data");
  }
  if (k_ == 0) return Status::InvalidArgument("KNN: k must be positive");
  train_x_ = x;
  train_y_ = y;
  return Status::Ok();
}

double KnnRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK_GT(train_x_.rows(), 0u);
  const size_t n = train_x_.rows();
  const size_t k = std::min(k_, n);

  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    double d = 0.0;
    for (size_t j = 0; j < train_x_.cols(); ++j) {
      double diff = train_x_(i, j) - x[j];
      d += diff * diff;
    }
    dist[i] = {d, i};
  }
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());

  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double w = distance_weighted_ ? 1.0 / (std::sqrt(dist[i].first) + 1e-8)
                                  : 1.0;
    num += w * train_y_[dist[i].second];
    den += w;
  }
  return num / den;
}

}  // namespace eadrl::models
