#ifndef EADRL_MODELS_REGRESSOR_H_
#define EADRL_MODELS_REGRESSOR_H_

#include <memory>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::models {

/// Generic tabular regressor trained on (X, y). The pool applies regressors
/// to time series through delay embedding (paper Sec. III: "Regression models
/// ... are applied after using time series embedding to dimension k").
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual Status Fit(const math::Matrix& x, const math::Vec& y) = 0;
  virtual double Predict(const math::Vec& x) const = 0;

  /// Batched predict hook: when supported, fills `out` with out[i] =
  /// Predict(row i of x) — bit for bit — in one batched pass and returns
  /// true. The default says "unsupported"; callers fall back to scalar
  /// Predict calls.
  virtual bool PredictBatch(const math::Matrix& x, math::Vec* out) const {
    (void)x;
    (void)out;
    return false;
  }
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_REGRESSOR_H_
