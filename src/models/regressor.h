#ifndef EADRL_MODELS_REGRESSOR_H_
#define EADRL_MODELS_REGRESSOR_H_

#include <memory>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::models {

/// Generic tabular regressor trained on (X, y). The pool applies regressors
/// to time series through delay embedding (paper Sec. III: "Regression models
/// ... are applied after using time series embedding to dimension k").
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual Status Fit(const math::Matrix& x, const math::Vec& y) = 0;
  virtual double Predict(const math::Vec& x) const = 0;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_REGRESSOR_H_
