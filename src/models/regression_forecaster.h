#ifndef EADRL_MODELS_REGRESSION_FORECASTER_H_
#define EADRL_MODELS_REGRESSION_FORECASTER_H_

#include <deque>
#include <memory>
#include <string>

#include "models/forecaster.h"
#include "models/regressor.h"
#include "ts/scaler.h"

namespace eadrl::models {

/// Adapts a tabular `Regressor` into a one-step-ahead `Forecaster` via delay
/// embedding with dimension k: features are the k most recent (standardized)
/// values, the target the next value.
class RegressionForecaster : public Forecaster {
 public:
  RegressionForecaster(std::string name, size_t k,
                       std::unique_ptr<Regressor> regressor);

  const std::string& name() const override { return name_; }
  Status Fit(const ts::Series& train) override;
  double PredictNext() override;
  void Observe(double value) override;

  /// Teacher forcing makes every delay-embedded feature row known up front,
  /// so when the wrapped regressor supports PredictBatch the whole rolling
  /// sweep is one batched call (bit-identical to the scalar walk).
  bool TryRollingForecast(const ts::Series& eval, math::Vec* preds) override;

 private:
  std::string name_;
  size_t k_;
  std::unique_ptr<Regressor> regressor_;
  ts::StandardScaler scaler_;
  std::deque<double> window_;  // last k raw values.
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_REGRESSION_FORECASTER_H_
