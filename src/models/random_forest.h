#ifndef EADRL_MODELS_RANDOM_FOREST_H_
#define EADRL_MODELS_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "models/tree.h"

namespace eadrl::models {

/// Random-forest regressor (Breiman 1996/2001): bagged CART trees with
/// per-split feature subsampling; predictions are averaged.
class RandomForestRegressor : public Regressor {
 public:
  struct Params {
    size_t num_trees = 25;
    TreeParams tree;
    /// Bootstrap sample fraction of the training set.
    double sample_fraction = 1.0;
    uint64_t seed = 42;
  };

  explicit RandomForestRegressor(Params params);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  Params params_;
  std::vector<std::unique_ptr<RegressionTree>> trees_;
  Rng rng_;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_RANDOM_FOREST_H_
