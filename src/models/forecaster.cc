#include "models/forecaster.h"

namespace eadrl::models {

math::Vec RollingForecast(Forecaster* model, const ts::Series& eval) {
  math::Vec preds;
  if (model->TryRollingForecast(eval, &preds)) return preds;
  preds.reserve(eval.size());
  for (size_t t = 0; t < eval.size(); ++t) {
    preds.push_back(model->PredictNext());
    model->Observe(eval[t]);
  }
  return preds;
}

}  // namespace eadrl::models
