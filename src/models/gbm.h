#ifndef EADRL_MODELS_GBM_H_
#define EADRL_MODELS_GBM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "models/tree.h"

namespace eadrl::models {

/// Gradient boosting machine for least-squares regression (Friedman 2001):
/// sequential shallow CART trees fit to residuals, combined with shrinkage
/// and optional stochastic row subsampling.
class GbmRegressor : public Regressor {
 public:
  struct Params {
    size_t num_trees = 100;
    double learning_rate = 0.1;
    TreeParams tree{/*max_depth=*/3, /*min_samples_leaf=*/3,
                    /*max_features=*/0};
    /// Fraction of rows sampled (without replacement) per boosting round.
    double subsample = 1.0;
    uint64_t seed = 42;
  };

  explicit GbmRegressor(Params params);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  Params params_;
  double base_prediction_ = 0.0;
  std::vector<std::unique_ptr<RegressionTree>> trees_;
  Rng rng_;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_GBM_H_
