#include "models/ppr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "math/linalg.h"
#include "math/stats.h"
#include "math/vec.h"

namespace eadrl::models {

Status BinnedSmoother::Fit(const math::Vec& x, const math::Vec& y) {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("BinnedSmoother: bad data");
  }
  const size_t n = x.size();
  const size_t bins = std::min(bins_, n);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });

  centers_.clear();
  values_.clear();
  size_t per_bin = n / bins;
  for (size_t b = 0; b < bins; ++b) {
    size_t begin = b * per_bin;
    size_t end = (b + 1 == bins) ? n : (b + 1) * per_bin;
    if (begin >= end) continue;
    double cx = 0.0, cy = 0.0;
    for (size_t i = begin; i < end; ++i) {
      cx += x[order[i]];
      cy += y[order[i]];
    }
    double cnt = static_cast<double>(end - begin);
    centers_.push_back(cx / cnt);
    values_.push_back(cy / cnt);
  }
  if (centers_.empty()) {
    return Status::Internal("BinnedSmoother: no bins produced");
  }
  return Status::Ok();
}

double BinnedSmoother::Predict(double x) const {
  EADRL_CHECK(!centers_.empty());
  if (x <= centers_.front()) return values_.front();
  if (x >= centers_.back()) return values_.back();
  // Linear interpolation between the neighboring bin centers.
  auto it = std::upper_bound(centers_.begin(), centers_.end(), x);
  size_t hi = static_cast<size_t>(it - centers_.begin());
  size_t lo = hi - 1;
  double span = centers_[hi] - centers_[lo];
  if (span <= 0.0) return values_[lo];
  double frac = (x - centers_[lo]) / span;
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Status PprRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("PPR: bad training data");
  }
  const size_t n = x.rows();
  y_mean_ = math::Mean(y);
  math::Vec residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean_;

  terms_.clear();
  for (size_t m = 0; m < params_.num_terms; ++m) {
    StatusOr<math::Vec> dir =
        math::SolveRidge(x, residual, params_.ridge_lambda);
    EADRL_RETURN_IF_ERROR(dir.status());
    double norm = math::Norm2(*dir);
    if (norm <= 1e-10) break;  // residual no longer explainable linearly.
    Term term;
    term.direction = math::Scale(*dir, 1.0 / norm);
    term.smoother = BinnedSmoother(params_.smoother_bins);

    math::Vec proj = x.MatVec(term.direction);
    EADRL_RETURN_IF_ERROR(term.smoother.Fit(proj, residual));
    for (size_t i = 0; i < n; ++i) {
      residual[i] -= term.smoother.Predict(proj[i]);
    }
    terms_.push_back(std::move(term));
  }

  // Backfitting: cyclically refit each smoother against the residual that
  // excludes its own contribution.
  for (size_t pass = 0; pass < params_.backfit_passes; ++pass) {
    for (Term& term : terms_) {
      math::Vec proj = x.MatVec(term.direction);
      for (size_t i = 0; i < n; ++i) {
        residual[i] += term.smoother.Predict(proj[i]);
      }
      EADRL_RETURN_IF_ERROR(term.smoother.Fit(proj, residual));
      for (size_t i = 0; i < n; ++i) {
        residual[i] -= term.smoother.Predict(proj[i]);
      }
    }
  }
  fitted_ = true;
  return Status::Ok();
}

double PprRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  double s = y_mean_;
  for (const Term& term : terms_) {
    s += term.smoother.Predict(math::Dot(term.direction, x));
  }
  return s;
}

}  // namespace eadrl::models
