#ifndef EADRL_MODELS_PCR_H_
#define EADRL_MODELS_PCR_H_

#include "math/matrix.h"
#include "models/regressor.h"

namespace eadrl::models {

/// Principal component regression: PCA on standardized features (symmetric
/// Jacobi eigendecomposition of the covariance), followed by ordinary least
/// squares on the leading `num_components` scores.
class PcrRegressor : public Regressor {
 public:
  explicit PcrRegressor(size_t num_components)
      : num_components_(num_components) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  size_t effective_components() const { return components_.cols(); }

 private:
  size_t num_components_;
  math::Vec feature_mean_;
  math::Vec feature_scale_;
  math::Matrix components_;  // p x k, columns = principal directions.
  math::Vec coef_;           // k coefficients on scores.
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Partial least squares regression (PLS1, NIPALS algorithm): extracts
/// components that maximize covariance with the target, then regresses on
/// the latent scores.
class PlsRegressor : public Regressor {
 public:
  explicit PlsRegressor(size_t num_components)
      : num_components_(num_components) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t num_components_;
  math::Vec feature_mean_;
  math::Vec feature_scale_;
  math::Vec coef_;  // final regression vector in standardized feature space.
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_PCR_H_
