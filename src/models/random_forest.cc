#include "models/random_forest.h"

#include <cmath>

#include "common/check.h"

namespace eadrl::models {

RandomForestRegressor::RandomForestRegressor(Params params)
    : params_(params), rng_(params.seed) {
  EADRL_CHECK_GT(params_.num_trees, 0u);
}

Status RandomForestRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("RandomForest: bad training data");
  }
  trees_.clear();
  TreeParams tp = params_.tree;
  if (tp.max_features == 0) {
    // Default per-split subsampling: ceil(sqrt(p)).
    tp.max_features = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  }
  const size_t n = x.rows();
  const size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(params_.sample_fraction * static_cast<double>(n)));

  for (size_t t = 0; t < params_.num_trees; ++t) {
    std::vector<size_t> bootstrap(sample_n);
    for (size_t i = 0; i < sample_n; ++i) bootstrap[i] = rng_.Index(n);
    auto tree = std::make_unique<RegressionTree>(tp, &rng_);
    EADRL_RETURN_IF_ERROR(tree->FitSubset(x, y, bootstrap));
    trees_.push_back(std::move(tree));
  }
  return Status::Ok();
}

double RandomForestRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(!trees_.empty());
  double s = 0.0;
  for (const auto& tree : trees_) s += tree->Predict(x);
  return s / static_cast<double>(trees_.size());
}

}  // namespace eadrl::models
