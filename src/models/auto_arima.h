#ifndef EADRL_MODELS_AUTO_ARIMA_H_
#define EADRL_MODELS_AUTO_ARIMA_H_

#include <memory>

#include "common/status.h"
#include "models/arima.h"

namespace eadrl::models {

/// Order-selection options for AutoArima.
struct AutoArimaOptions {
  size_t max_p = 3;
  size_t max_d = 1;
  size_t max_q = 2;
  /// Fraction of the training series held out to score candidate orders by
  /// one-step-ahead RMSE (an empirical analogue of AIC selection that works
  /// with the Hannan–Rissanen fit used by ArimaForecaster).
  double holdout_ratio = 0.2;
};

/// Result of the search: the selected order plus the model refit on the
/// full series.
struct AutoArimaResult {
  size_t p = 0;
  size_t d = 0;
  size_t q = 0;
  double holdout_rmse = 0.0;
  std::unique_ptr<ArimaForecaster> model;
};

/// Grid-searches ARIMA(p, d, q) orders and returns the best model fit on
/// the whole series (cf. `forecast::auto.arima`).
StatusOr<AutoArimaResult> AutoArima(const ts::Series& series,
                                    const AutoArimaOptions& options = {});

}  // namespace eadrl::models

#endif  // EADRL_MODELS_AUTO_ARIMA_H_
