#ifndef EADRL_MODELS_MARS_H_
#define EADRL_MODELS_MARS_H_

#include <vector>

#include "models/regressor.h"

namespace eadrl::models {

/// Multivariate adaptive regression splines (Friedman 1991), additive
/// (degree-1) form: a greedy forward pass adds mirrored hinge pairs
/// max(0, x_j - c) / max(0, c - x_j) at quantile knots, refitting the whole
/// basis with ridge after each addition; the pair with the best in-sample SSE
/// wins. A backward pass prunes bases by generalized cross-validation.
class MarsRegressor : public Regressor {
 public:
  struct Params {
    size_t max_terms = 10;       ///< max hinge bases (excluding intercept).
    size_t knots_per_feature = 8;
    double ridge_lambda = 1e-4;
    bool prune = true;
  };

  explicit MarsRegressor(Params params) : params_(params) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  size_t num_bases() const { return bases_.size(); }

 private:
  struct Hinge {
    size_t feature;
    double knot;
    bool positive;  // true: max(0, x - c); false: max(0, c - x).
  };

  static double EvalHinge(const Hinge& h, const math::Vec& x);

  Params params_;
  std::vector<Hinge> bases_;
  math::Vec coef_;       // one per basis.
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_MARS_H_
