#ifndef EADRL_MODELS_LINEAR_H_
#define EADRL_MODELS_LINEAR_H_

#include "models/regressor.h"

namespace eadrl::models {

/// Ridge-regularized linear regression with an intercept.
class RidgeRegressor : public Regressor {
 public:
  explicit RidgeRegressor(double lambda = 1e-3) : lambda_(lambda) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

  const math::Vec& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  math::Vec coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Distance-weighted k-nearest-neighbors regression.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(size_t k, bool distance_weighted = true)
      : k_(k), distance_weighted_(distance_weighted) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t k_;
  bool distance_weighted_;
  math::Matrix train_x_;
  math::Vec train_y_;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_LINEAR_H_
