#include "models/pool.h"

#include <chrono>
#include <utility>

#include "chk/chk.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "models/arima.h"
#include "models/ets.h"
#include "models/gbm.h"
#include "models/gp.h"
#include "models/linear.h"
#include "models/mars.h"
#include "models/nn_regressors.h"
#include "models/pcr.h"
#include "models/ppr.h"
#include "models/random_forest.h"
#include "models/regression_forecaster.h"
#include "models/svr.h"
#include "models/tree.h"
#include "par/parallel.h"

namespace eadrl::models {
namespace {

std::unique_ptr<Forecaster> Wrap(std::string name, size_t k,
                                 std::unique_ptr<Regressor> reg) {
  return std::make_unique<RegressionForecaster>(std::move(name), k,
                                                std::move(reg));
}

}  // namespace

std::vector<std::unique_ptr<Forecaster>> BuildPaperPool(
    const PoolConfig& config) {
  std::vector<std::unique_ptr<Forecaster>> pool;
  const size_t k = config.embedding_dim;
  const uint64_t seed = config.seed;
  NnTrainParams nn;
  nn.epochs = config.nn_epochs;
  nn.seed = seed;

  if (config.fast_mode) {
    // Reduced 10-model pool spanning the main families.
    pool.push_back(std::make_unique<ArimaForecaster>(2, 1, 1));
    pool.push_back(std::make_unique<EtsForecaster>(EtsVariant::kHolt));
    pool.push_back(Wrap("ridge", k, std::make_unique<RidgeRegressor>(1e-3)));
    pool.push_back(Wrap("dt(6)", k,
                        std::make_unique<RegressionTree>(
                            TreeParams{6, 3, 0})));
    {
      RandomForestRegressor::Params p;
      p.num_trees = 10;
      p.seed = seed;
      pool.push_back(Wrap("rf(10,8)", k,
                          std::make_unique<RandomForestRegressor>(p)));
    }
    {
      GbmRegressor::Params p;
      p.num_trees = 30;
      p.seed = seed;
      pool.push_back(Wrap("gbm(30,0.1,3)", k,
                          std::make_unique<GbmRegressor>(p)));
    }
    pool.push_back(Wrap("knn(5)", k, std::make_unique<KnnRegressor>(5)));
    pool.push_back(Wrap("pls(2)", k, std::make_unique<PlsRegressor>(2)));
    pool.push_back(Wrap("mlp(8)", k, std::make_unique<MlpRegressor>(
                                         std::vector<size_t>{8}, nn)));
    pool.push_back(Wrap("lstm(8)", k,
                        std::make_unique<LstmRegressor>(8, nn)));
    return pool;
  }

  // --- ARIMA (3) -----------------------------------------------------------
  pool.push_back(std::make_unique<ArimaForecaster>(1, 0, 0));
  pool.push_back(std::make_unique<ArimaForecaster>(2, 1, 1));
  pool.push_back(std::make_unique<ArimaForecaster>(5, 1, 0));

  // --- ETS (3) --------------------------------------------------------------
  pool.push_back(std::make_unique<EtsForecaster>(EtsVariant::kSimple));
  pool.push_back(std::make_unique<EtsForecaster>(EtsVariant::kHolt));
  pool.push_back(
      std::make_unique<EtsForecaster>(EtsVariant::kHoltWintersAdditive));

  // --- GBM (3) ---------------------------------------------------------------
  {
    GbmRegressor::Params p;
    p.num_trees = 50;
    p.learning_rate = 0.1;
    p.tree.max_depth = 3;
    p.seed = seed;
    pool.push_back(Wrap("gbm(50,0.10,3)", k,
                        std::make_unique<GbmRegressor>(p)));
  }
  {
    GbmRegressor::Params p;
    p.num_trees = 100;
    p.learning_rate = 0.05;
    p.tree.max_depth = 3;
    p.subsample = 0.8;
    p.seed = seed + 1;
    pool.push_back(Wrap("gbm(100,0.05,3)", k,
                        std::make_unique<GbmRegressor>(p)));
  }
  {
    GbmRegressor::Params p;
    p.num_trees = 60;
    p.learning_rate = 0.1;
    p.tree.max_depth = 5;
    p.seed = seed + 2;
    pool.push_back(Wrap("gbm(60,0.10,5)", k,
                        std::make_unique<GbmRegressor>(p)));
  }

  // --- GP (2) ----------------------------------------------------------------
  {
    GaussianProcessRegressor::Params p;
    p.length_scale = 1.0;
    p.noise_variance = 0.1;
    p.seed = seed;
    pool.push_back(Wrap("gp(1.0,0.10)", k,
                        std::make_unique<GaussianProcessRegressor>(p)));
  }
  {
    GaussianProcessRegressor::Params p;
    p.length_scale = 3.0;
    p.noise_variance = 0.05;
    p.seed = seed + 1;
    pool.push_back(Wrap("gp(3.0,0.05)", k,
                        std::make_unique<GaussianProcessRegressor>(p)));
  }

  // --- SVR (3) ---------------------------------------------------------------
  {
    SvrRegressor::Params p;
    p.c = 1.0;
    p.epsilon = 0.01;
    p.seed = seed;
    pool.push_back(Wrap("svr-linear(1.0)", k,
                        std::make_unique<SvrRegressor>(p)));
  }
  {
    SvrRegressor::Params p;
    p.c = 1.0;
    p.epsilon = 0.01;
    p.rff_features = 50;
    p.rff_length_scale = 1.0;
    p.seed = seed + 1;
    pool.push_back(Wrap("svr-rbf(1.0,50)", k,
                        std::make_unique<SvrRegressor>(p)));
  }
  {
    SvrRegressor::Params p;
    p.c = 10.0;
    p.epsilon = 0.005;
    p.rff_features = 100;
    p.rff_length_scale = 2.0;
    p.seed = seed + 2;
    pool.push_back(Wrap("svr-rbf(10.0,100)", k,
                        std::make_unique<SvrRegressor>(p)));
  }

  // --- RF (3) ----------------------------------------------------------------
  {
    RandomForestRegressor::Params p;
    p.num_trees = 25;
    p.tree.max_depth = 8;
    p.seed = seed;
    pool.push_back(Wrap("rf(25,8)", k,
                        std::make_unique<RandomForestRegressor>(p)));
  }
  {
    RandomForestRegressor::Params p;
    p.num_trees = 50;
    p.tree.max_depth = 10;
    p.seed = seed + 1;
    pool.push_back(Wrap("rf(50,10)", k,
                        std::make_unique<RandomForestRegressor>(p)));
  }
  {
    RandomForestRegressor::Params p;
    p.num_trees = 25;
    p.tree.max_depth = 12;
    p.tree.max_features = 5;  // all features with k = 5.
    p.sample_fraction = 0.7;
    p.seed = seed + 2;
    pool.push_back(Wrap("rf(25,12,0.7)", k,
                        std::make_unique<RandomForestRegressor>(p)));
  }

  // --- PPR (2) ---------------------------------------------------------------
  {
    PprRegressor::Params p;
    p.num_terms = 2;
    pool.push_back(Wrap("ppr(2)", k, std::make_unique<PprRegressor>(p)));
  }
  {
    PprRegressor::Params p;
    p.num_terms = 4;
    p.backfit_passes = 2;
    pool.push_back(Wrap("ppr(4)", k, std::make_unique<PprRegressor>(p)));
  }

  // --- MARS (2) --------------------------------------------------------------
  {
    MarsRegressor::Params p;
    p.max_terms = 8;
    pool.push_back(Wrap("mars(8)", k, std::make_unique<MarsRegressor>(p)));
  }
  {
    MarsRegressor::Params p;
    p.max_terms = 12;
    p.prune = false;
    pool.push_back(Wrap("mars(12)", k, std::make_unique<MarsRegressor>(p)));
  }

  // --- PCR (2) ---------------------------------------------------------------
  pool.push_back(Wrap("pcr(2)", k, std::make_unique<PcrRegressor>(2)));
  pool.push_back(Wrap("pcr(3)", k, std::make_unique<PcrRegressor>(3)));

  // --- DT (3) ----------------------------------------------------------------
  pool.push_back(Wrap("dt(4)", k, std::make_unique<RegressionTree>(
                                      TreeParams{4, 5, 0})));
  pool.push_back(Wrap("dt(8)", k, std::make_unique<RegressionTree>(
                                      TreeParams{8, 3, 0})));
  pool.push_back(Wrap("dt(12)", k, std::make_unique<RegressionTree>(
                                       TreeParams{12, 2, 0})));

  // --- PLS (2) ---------------------------------------------------------------
  pool.push_back(Wrap("pls(2)", k, std::make_unique<PlsRegressor>(2)));
  pool.push_back(Wrap("pls(3)", k, std::make_unique<PlsRegressor>(3)));

  // --- kNN (3) ---------------------------------------------------------------
  pool.push_back(Wrap("knn(3)", k, std::make_unique<KnnRegressor>(3)));
  pool.push_back(Wrap("knn(7)", k, std::make_unique<KnnRegressor>(7)));
  pool.push_back(Wrap("knn(15)", k, std::make_unique<KnnRegressor>(15)));

  // --- MLP (3) ---------------------------------------------------------------
  pool.push_back(Wrap("mlp(8)", k,
                      std::make_unique<MlpRegressor>(
                          std::vector<size_t>{8}, nn)));
  pool.push_back(Wrap("mlp(16)", k,
                      std::make_unique<MlpRegressor>(
                          std::vector<size_t>{16}, nn)));
  pool.push_back(Wrap("mlp(16,8)", k,
                      std::make_unique<MlpRegressor>(
                          std::vector<size_t>{16, 8}, nn)));

  // --- LSTM (3) --------------------------------------------------------------
  pool.push_back(Wrap("lstm(8)", k, std::make_unique<LstmRegressor>(8, nn)));
  pool.push_back(Wrap("lstm(16)", k,
                      std::make_unique<LstmRegressor>(16, nn)));
  pool.push_back(Wrap("lstm(24)", k,
                      std::make_unique<LstmRegressor>(24, nn)));

  // --- Bi-LSTM (2) -----------------------------------------------------------
  pool.push_back(Wrap("bilstm(8)", k,
                      std::make_unique<BiLstmRegressor>(8, nn)));
  pool.push_back(Wrap("bilstm(12)", k,
                      std::make_unique<BiLstmRegressor>(12, nn)));

  // --- CNN-LSTM (2) ----------------------------------------------------------
  pool.push_back(Wrap("cnn-lstm(4,2,8)", k,
                      std::make_unique<CnnLstmRegressor>(4, 2, 8, nn)));
  pool.push_back(Wrap("cnn-lstm(8,3,12)", k,
                      std::make_unique<CnnLstmRegressor>(8, 3, 12, nn)));

  // --- Conv-LSTM (2) ---------------------------------------------------------
  pool.push_back(Wrap("conv-lstm(2,8)", k,
                      std::make_unique<ConvLstmRegressor>(2, 8, nn)));
  pool.push_back(Wrap("conv-lstm(3,12)", k,
                      std::make_unique<ConvLstmRegressor>(3, 12, nn)));

  return pool;
}

std::vector<std::unique_ptr<Forecaster>> FitPool(
    std::vector<std::unique_ptr<Forecaster>> pool, const ts::Series& train,
    par::ThreadPool* exec) {
  par::ThreadPool& executor = exec != nullptr ? *exec : par::DefaultPool();
  const size_t n = pool.size();
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  obs::Histogram* fit_hist = registry.GetHistogram("eadrl_pool_fit_seconds");
  obs::Counter* fitted_counter =
      registry.GetCounter("eadrl_pool_models_fitted_total");
  obs::Counter* dropped_counter =
      registry.GetCounter("eadrl_pool_models_dropped_total");

  // Fit concurrently; per-model work is fully independent (slot i only).
  // Warnings and telemetry are deferred to the ordered scan below so the
  // observable output does not depend on completion order.
  std::vector<Status> statuses(n);
  std::vector<double> fit_seconds(n, 0.0);
  obs::Span pool_span("pool_fit");
  pool_span.SetAttr("models", n);
  const auto wall_start = std::chrono::steady_clock::now();
  par::ParallelFor(
      0, n,
      [&](size_t i) {
        EADRL_CHK_BOUND(i, n, "FitPool fit slot");
        obs::Span span("model_fit");
        span.SetAttr("model", pool[i]->name());
        obs::ScopedTimer timer(fit_hist, &fit_seconds[i]);
        statuses[i] = pool[i]->Fit(train);
      },
      {/*grain=*/1, &executor});
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<std::unique_ptr<Forecaster>> fitted;
  fitted.reserve(n);
  double cpu_seconds = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cpu_seconds += fit_seconds[i];
    EADRL_TELEMETRY("model_fit", {"model", pool[i]->name()},
                    {"seconds", fit_seconds[i]}, {"ok", statuses[i].ok()});
    if (!statuses[i].ok()) {
      dropped_counter->Inc();
      EADRL_LOG(Warning) << "dropping model " << pool[i]->name()
                         << " from pool: " << statuses[i].ToString();
      continue;
    }
    fitted_counter->Inc();
    fitted.push_back(std::move(pool[i]));
  }
  EADRL_TELEMETRY(
      "pool_fit", {"models", n}, {"fitted", fitted.size()},
      {"wall_seconds", wall_seconds}, {"cpu_seconds", cpu_seconds},
      {"speedup", wall_seconds > 0.0 ? cpu_seconds / wall_seconds : 1.0},
      {"threads", executor.concurrency()});
  return fitted;
}

}  // namespace eadrl::models
