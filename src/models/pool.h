#ifndef EADRL_MODELS_POOL_H_
#define EADRL_MODELS_POOL_H_

#include <memory>
#include <vector>

#include "models/forecaster.h"
#include "par/thread_pool.h"

namespace eadrl::models {

/// Configuration of the base-model pool.
struct PoolConfig {
  /// Delay-embedding dimension for the regression models (paper: k = 5).
  size_t embedding_dim = 5;
  /// Seed for the stochastic models (forests, boosting, neural nets).
  uint64_t seed = 42;
  /// Training epochs for the neural regressors; the paper's absolute budget
  /// is hardware-dependent, this scales the experiment cost.
  size_t nn_epochs = 12;
  /// When true builds a reduced 10-model pool (for tests and examples that
  /// need to run quickly); the full pool has the paper's 43 configurations.
  bool fast_mode = false;
};

/// Builds the paper's pool of 43 base models across 16 families (Sec. III,
/// "Single base models set-up"): ARIMA, ETS, GBM, GP, SVR, RF, PPR, MARS,
/// PCR, DT, PLS, k-NN, MLP, LSTM, Bi-LSTM, CNN-LSTM and Conv-LSTM, each in
/// several parameter settings. Exact configurations are documented in
/// DESIGN.md.
std::vector<std::unique_ptr<Forecaster>> BuildPaperPool(
    const PoolConfig& config);

/// Fits every model on the training series; models whose Fit fails (e.g. the
/// series is too short for their configuration) are dropped with a warning.
/// Returns the fitted subset.
///
/// Fits run concurrently on `exec` (nullptr means the process default pool;
/// a serial pool restores the sequential path). Results are deterministic
/// regardless of completion order: the returned models keep their original
/// pool order, and drop warnings / per-model telemetry are emitted after the
/// join, in original pool order.
std::vector<std::unique_ptr<Forecaster>> FitPool(
    std::vector<std::unique_ptr<Forecaster>> pool, const ts::Series& train,
    par::ThreadPool* exec = nullptr);

}  // namespace eadrl::models

#endif  // EADRL_MODELS_POOL_H_
