#ifndef EADRL_MODELS_NN_REGRESSORS_H_
#define EADRL_MODELS_NN_REGRESSORS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "models/regressor.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace eadrl::models {

/// Shared training hyper-parameters for the neural regressors. The inputs are
/// already standardized by RegressionForecaster, so modest learning rates and
/// epoch counts suffice.
struct NnTrainParams {
  size_t epochs = 20;
  double learning_rate = 0.01;
  double grad_clip = 5.0;
  uint64_t seed = 42;
};

/// Multilayer perceptron regressor.
class MlpRegressor : public Regressor {
 public:
  MlpRegressor(std::vector<size_t> hidden_sizes, NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;
  bool PredictBatch(const math::Matrix& x, math::Vec* out) const override;

 private:
  std::vector<size_t> hidden_sizes_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Mlp> net_;
};

/// LSTM regressor: the k-lag window is consumed as a length-k sequence of
/// scalars; the final hidden state feeds a linear head.
class LstmRegressor : public Regressor {
 public:
  LstmRegressor(size_t hidden_size, NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t hidden_size_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Lstm> lstm_;
  mutable std::unique_ptr<nn::Dense> head_;
};

/// Bidirectional LSTM regressor: forward and backward passes over the window
/// are concatenated before the linear head.
class BiLstmRegressor : public Regressor {
 public:
  BiLstmRegressor(size_t hidden_size, NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t hidden_size_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Lstm> fwd_;
  mutable std::unique_ptr<nn::Lstm> bwd_;
  mutable std::unique_ptr<nn::Dense> head_;
};

/// CNN-LSTM regressor (Kim & Cho 2019 style, reduced to 1-D univariate):
/// a Conv1D feature extractor over the window feeds an LSTM, whose final
/// hidden state feeds a linear head.
class CnnLstmRegressor : public Regressor {
 public:
  CnnLstmRegressor(size_t filters, size_t kernel_size, size_t hidden_size,
                   NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t filters_;
  size_t kernel_size_;
  size_t hidden_size_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Conv1d> conv_;
  mutable std::unique_ptr<nn::Lstm> lstm_;
  mutable std::unique_ptr<nn::Dense> head_;
};

/// Conv-LSTM regressor (Shi et al. 2015, reduced to 1-D): the input-to-state
/// transition is convolutional — each recurrence step consumes an
/// overlapping patch of the window instead of a single scalar, which is the
/// univariate analogue of ConvLSTM's convolutional gates.
class ConvLstmRegressor : public Regressor {
 public:
  ConvLstmRegressor(size_t patch_size, size_t hidden_size,
                    NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  std::vector<math::Vec> ToPatches(const math::Vec& window) const;

  size_t patch_size_;
  size_t hidden_size_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Lstm> lstm_;
  mutable std::unique_ptr<nn::Dense> head_;
};

/// Stacked (two-layer) LSTM regressor — the paper's StLSTM baseline, an
/// ensemble-by-cascading of LSTMs.
class StackedLstmRegressor : public Regressor {
 public:
  StackedLstmRegressor(size_t hidden_size, NnTrainParams train);

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  size_t hidden_size_;
  NnTrainParams train_;
  mutable std::unique_ptr<nn::Lstm> lstm1_;
  mutable std::unique_ptr<nn::Lstm> lstm2_;
  mutable std::unique_ptr<nn::Dense> head_;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_NN_REGRESSORS_H_
