#include "models/tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace eadrl::models {

Status RegressionTree::Fit(const math::Matrix& x, const math::Vec& y) {
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0u);
  return FitSubset(x, y, indices);
}

Status RegressionTree::FitSubset(const math::Matrix& x, const math::Vec& y,
                                 const std::vector<size_t>& indices) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("RegressionTree: X/y size mismatch");
  }
  if (indices.empty()) {
    return Status::InvalidArgument("RegressionTree: no training samples");
  }
  nodes_.clear();
  std::vector<size_t> work = indices;
  Build(x, y, work, 0, work.size(), 0);
  return Status::Ok();
}

int RegressionTree::Build(const math::Matrix& x, const math::Vec& y,
                          std::vector<size_t>& indices, size_t begin,
                          size_t end, size_t depth) {
  const size_t n = end - begin;
  EADRL_CHECK_GT(n, 0u);

  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[indices[i]];
    sum_sq += y[indices[i]] * y[indices[i]];
  }
  double mean = sum / static_cast<double>(n);
  double sse = sum_sq - sum * mean;

  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = mean;

  if (depth >= params_.max_depth || n < 2 * params_.min_samples_leaf ||
      sse <= 1e-12) {
    return node_id;
  }

  // Candidate features: all, or a random subset for forests.
  std::vector<size_t> features(x.cols());
  std::iota(features.begin(), features.end(), 0u);
  if (params_.max_features > 0 && params_.max_features < x.cols()) {
    EADRL_CHECK(rng_ != nullptr);
    features = rng_->SampleWithoutReplacement(x.cols(), params_.max_features);
  }

  // Best split by variance reduction: for each feature sort the index range
  // by feature value and scan prefix sums.
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted(indices.begin() + begin, indices.begin() + end);
  for (size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x(a, f) < x(b, f);
    });
    double left_sum = 0.0, left_sq = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      double yi = y[sorted[i]];
      left_sum += yi;
      left_sq += yi * yi;
      size_t left_n = i + 1;
      size_t right_n = n - left_n;
      if (left_n < params_.min_samples_leaf ||
          right_n < params_.min_samples_leaf) {
        continue;
      }
      double xv = x(sorted[i], f);
      double xn = x(sorted[i + 1], f);
      if (xv == xn) continue;  // cannot split between equal values.
      double right_sum = sum - left_sum;
      double right_sq = sum_sq - left_sq;
      double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      double gain = sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (xv + xn);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition the index range in place.
  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t idx) {
        return x(idx, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition.

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = Build(x, y, indices, begin, mid, depth + 1);
  int right = Build(x, y, indices, mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const math::Vec& x) const {
  EADRL_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& node = nodes_[cur];
    cur = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                 : node.right;
  }
  return nodes_[cur].value;
}

}  // namespace eadrl::models
