#include "models/nn_regressors.h"

#include <numeric>

#include "common/check.h"
#include "nn/activation.h"
#include "nn/loss.h"
#include "nn/param.h"

namespace eadrl::models {
namespace {

// Converts a feature row into a sequence of 1-dim inputs.
std::vector<math::Vec> ToScalarSequence(const math::Vec& window) {
  std::vector<math::Vec> seq;
  seq.reserve(window.size());
  for (double v : window) seq.push_back(math::Vec{v});
  return seq;
}

std::vector<size_t> ShuffledOrder(size_t n, Rng& rng) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(&order);
  return order;
}

}  // namespace

// ---------------------------------------------------------------------------
// MlpRegressor

MlpRegressor::MlpRegressor(std::vector<size_t> hidden_sizes,
                           NnTrainParams train)
    : hidden_sizes_(std::move(hidden_sizes)), train_(train) {}

Status MlpRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("MlpRegressor: bad training data");
  }
  Rng rng(train_.seed);
  std::vector<size_t> sizes;
  sizes.push_back(x.cols());
  for (size_t h : hidden_sizes_) sizes.push_back(h);
  sizes.push_back(1);
  net_ = std::make_unique<nn::Mlp>(sizes, nn::Activation::kRelu,
                                   nn::Activation::kIdentity, rng);

  nn::Adam opt(train_.learning_rate);
  auto params = net_->Params();
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      math::Vec pred = net_->Forward(x.Row(idx));
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});
      net_->Backward(loss.grad);
      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double MlpRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(net_ != nullptr);
  return net_->Predict(x)[0];  // no-grad path: nothing stashed, no scratch.
}

bool MlpRegressor::PredictBatch(const math::Matrix& x, math::Vec* out) const {
  EADRL_CHECK(net_ != nullptr);
  const math::Matrix& y = net_->ForwardBatch(x, /*train=*/false);
  out->resize(x.rows());
  for (size_t b = 0; b < x.rows(); ++b) (*out)[b] = y(b, 0);
  return true;
}

// ---------------------------------------------------------------------------
// LstmRegressor

LstmRegressor::LstmRegressor(size_t hidden_size, NnTrainParams train)
    : hidden_size_(hidden_size), train_(train) {}

Status LstmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("LstmRegressor: bad training data");
  }
  Rng rng(train_.seed);
  lstm_ = std::make_unique<nn::Lstm>(1, hidden_size_, rng);
  head_ = std::make_unique<nn::Dense>(hidden_size_, 1,
                                      nn::Activation::kIdentity, rng);

  std::vector<nn::Param*> params = lstm_->Params();
  for (nn::Param* p : head_->Params()) params.push_back(p);
  nn::Adam opt(train_.learning_rate);
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      std::vector<math::Vec> seq = ToScalarSequence(x.Row(idx));
      std::vector<math::Vec> hs = lstm_->Forward(seq);
      math::Vec pred = head_->Forward(hs.back());
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});
      math::Vec dh_last = head_->Backward(loss.grad);

      std::vector<math::Vec> grad_hidden(seq.size(),
                                         math::Vec(hidden_size_, 0.0));
      grad_hidden.back() = dh_last;
      lstm_->Backward(grad_hidden);
      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double LstmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(lstm_ != nullptr);
  std::vector<math::Vec> hs = lstm_->Forward(ToScalarSequence(x));
  return head_->Forward(hs.back())[0];
}

// ---------------------------------------------------------------------------
// BiLstmRegressor

BiLstmRegressor::BiLstmRegressor(size_t hidden_size, NnTrainParams train)
    : hidden_size_(hidden_size), train_(train) {}

Status BiLstmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("BiLstmRegressor: bad training data");
  }
  Rng rng(train_.seed);
  fwd_ = std::make_unique<nn::Lstm>(1, hidden_size_, rng);
  bwd_ = std::make_unique<nn::Lstm>(1, hidden_size_, rng);
  head_ = std::make_unique<nn::Dense>(2 * hidden_size_, 1,
                                      nn::Activation::kIdentity, rng);

  std::vector<nn::Param*> params = fwd_->Params();
  for (nn::Param* p : bwd_->Params()) params.push_back(p);
  for (nn::Param* p : head_->Params()) params.push_back(p);
  nn::Adam opt(train_.learning_rate);
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      std::vector<math::Vec> seq = ToScalarSequence(x.Row(idx));
      std::vector<math::Vec> rev(seq.rbegin(), seq.rend());

      std::vector<math::Vec> hf = fwd_->Forward(seq);
      std::vector<math::Vec> hb = bwd_->Forward(rev);
      math::Vec concat(2 * hidden_size_);
      for (size_t j = 0; j < hidden_size_; ++j) {
        concat[j] = hf.back()[j];
        concat[hidden_size_ + j] = hb.back()[j];
      }
      math::Vec pred = head_->Forward(concat);
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});
      math::Vec dconcat = head_->Backward(loss.grad);

      std::vector<math::Vec> gf(seq.size(), math::Vec(hidden_size_, 0.0));
      std::vector<math::Vec> gb(seq.size(), math::Vec(hidden_size_, 0.0));
      for (size_t j = 0; j < hidden_size_; ++j) {
        gf.back()[j] = dconcat[j];
        gb.back()[j] = dconcat[hidden_size_ + j];
      }
      fwd_->Backward(gf);
      bwd_->Backward(gb);
      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double BiLstmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fwd_ != nullptr);
  std::vector<math::Vec> seq = ToScalarSequence(x);
  std::vector<math::Vec> rev(seq.rbegin(), seq.rend());
  std::vector<math::Vec> hf = fwd_->Forward(seq);
  std::vector<math::Vec> hb = bwd_->Forward(rev);
  math::Vec concat(2 * hidden_size_);
  for (size_t j = 0; j < hidden_size_; ++j) {
    concat[j] = hf.back()[j];
    concat[hidden_size_ + j] = hb.back()[j];
  }
  return head_->Forward(concat)[0];
}

// ---------------------------------------------------------------------------
// CnnLstmRegressor

CnnLstmRegressor::CnnLstmRegressor(size_t filters, size_t kernel_size,
                                   size_t hidden_size, NnTrainParams train)
    : filters_(filters),
      kernel_size_(kernel_size),
      hidden_size_(hidden_size),
      train_(train) {}

Status CnnLstmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("CnnLstmRegressor: bad training data");
  }
  if (x.cols() < kernel_size_) {
    return Status::InvalidArgument(
        "CnnLstmRegressor: window shorter than kernel");
  }
  Rng rng(train_.seed);
  conv_ = std::make_unique<nn::Conv1d>(1, filters_, kernel_size_,
                                       nn::Activation::kRelu, rng);
  lstm_ = std::make_unique<nn::Lstm>(filters_, hidden_size_, rng);
  head_ = std::make_unique<nn::Dense>(hidden_size_, 1,
                                      nn::Activation::kIdentity, rng);

  std::vector<nn::Param*> params = conv_->Params();
  for (nn::Param* p : lstm_->Params()) params.push_back(p);
  for (nn::Param* p : head_->Params()) params.push_back(p);
  nn::Adam opt(train_.learning_rate);
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      math::Vec window = x.Row(idx);
      math::Matrix input(window.size(), 1);
      for (size_t t = 0; t < window.size(); ++t) input(t, 0) = window[t];

      math::Matrix feats = conv_->Forward(input);
      std::vector<math::Vec> seq;
      seq.reserve(feats.rows());
      for (size_t t = 0; t < feats.rows(); ++t) seq.push_back(feats.Row(t));

      std::vector<math::Vec> hs = lstm_->Forward(seq);
      math::Vec pred = head_->Forward(hs.back());
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});

      math::Vec dh_last = head_->Backward(loss.grad);
      std::vector<math::Vec> grad_hidden(seq.size(),
                                         math::Vec(hidden_size_, 0.0));
      grad_hidden.back() = dh_last;
      std::vector<math::Vec> dseq = lstm_->Backward(grad_hidden);

      math::Matrix dfeats(feats.rows(), filters_);
      for (size_t t = 0; t < feats.rows(); ++t) dfeats.SetRow(t, dseq[t]);
      conv_->Backward(dfeats);

      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double CnnLstmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(conv_ != nullptr);
  math::Matrix input(x.size(), 1);
  for (size_t t = 0; t < x.size(); ++t) input(t, 0) = x[t];
  math::Matrix feats = conv_->Forward(input);
  std::vector<math::Vec> seq;
  seq.reserve(feats.rows());
  for (size_t t = 0; t < feats.rows(); ++t) seq.push_back(feats.Row(t));
  std::vector<math::Vec> hs = lstm_->Forward(seq);
  return head_->Forward(hs.back())[0];
}

// ---------------------------------------------------------------------------
// ConvLstmRegressor

ConvLstmRegressor::ConvLstmRegressor(size_t patch_size, size_t hidden_size,
                                     NnTrainParams train)
    : patch_size_(patch_size), hidden_size_(hidden_size), train_(train) {}

std::vector<math::Vec> ConvLstmRegressor::ToPatches(
    const math::Vec& window) const {
  EADRL_CHECK_GE(window.size(), patch_size_);
  std::vector<math::Vec> patches;
  for (size_t t = 0; t + patch_size_ <= window.size(); ++t) {
    patches.emplace_back(window.begin() + t,
                         window.begin() + t + patch_size_);
  }
  return patches;
}

Status ConvLstmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("ConvLstmRegressor: bad training data");
  }
  if (x.cols() < patch_size_) {
    return Status::InvalidArgument(
        "ConvLstmRegressor: window shorter than patch");
  }
  Rng rng(train_.seed);
  lstm_ = std::make_unique<nn::Lstm>(patch_size_, hidden_size_, rng);
  head_ = std::make_unique<nn::Dense>(hidden_size_, 1,
                                      nn::Activation::kIdentity, rng);

  std::vector<nn::Param*> params = lstm_->Params();
  for (nn::Param* p : head_->Params()) params.push_back(p);
  nn::Adam opt(train_.learning_rate);
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      std::vector<math::Vec> seq = ToPatches(x.Row(idx));
      std::vector<math::Vec> hs = lstm_->Forward(seq);
      math::Vec pred = head_->Forward(hs.back());
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});
      math::Vec dh_last = head_->Backward(loss.grad);

      std::vector<math::Vec> grad_hidden(seq.size(),
                                         math::Vec(hidden_size_, 0.0));
      grad_hidden.back() = dh_last;
      lstm_->Backward(grad_hidden);
      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double ConvLstmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(lstm_ != nullptr);
  std::vector<math::Vec> hs = lstm_->Forward(ToPatches(x));
  return head_->Forward(hs.back())[0];
}

// ---------------------------------------------------------------------------
// StackedLstmRegressor

StackedLstmRegressor::StackedLstmRegressor(size_t hidden_size,
                                           NnTrainParams train)
    : hidden_size_(hidden_size), train_(train) {}

Status StackedLstmRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("StackedLstmRegressor: bad training data");
  }
  Rng rng(train_.seed);
  lstm1_ = std::make_unique<nn::Lstm>(1, hidden_size_, rng);
  lstm2_ = std::make_unique<nn::Lstm>(hidden_size_, hidden_size_, rng);
  head_ = std::make_unique<nn::Dense>(hidden_size_, 1,
                                      nn::Activation::kIdentity, rng);

  std::vector<nn::Param*> params = lstm1_->Params();
  for (nn::Param* p : lstm2_->Params()) params.push_back(p);
  for (nn::Param* p : head_->Params()) params.push_back(p);
  nn::Adam opt(train_.learning_rate);
  opt.Register(params);

  for (size_t epoch = 0; epoch < train_.epochs; ++epoch) {
    for (size_t idx : ShuffledOrder(x.rows(), rng)) {
      std::vector<math::Vec> seq = ToScalarSequence(x.Row(idx));
      std::vector<math::Vec> h1 = lstm1_->Forward(seq);
      std::vector<math::Vec> h2 = lstm2_->Forward(h1);
      math::Vec pred = head_->Forward(h2.back());
      nn::LossResult loss = nn::MseLoss(pred, {y[idx]});
      math::Vec dh_last = head_->Backward(loss.grad);

      std::vector<math::Vec> g2(seq.size(), math::Vec(hidden_size_, 0.0));
      g2.back() = dh_last;
      std::vector<math::Vec> dinputs2 = lstm2_->Backward(g2);
      lstm1_->Backward(dinputs2);
      nn::ClipGradNorm(params, train_.grad_clip);
      opt.StepAndZero();
    }
  }
  return Status::Ok();
}

double StackedLstmRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(lstm1_ != nullptr);
  std::vector<math::Vec> h1 = lstm1_->Forward(ToScalarSequence(x));
  std::vector<math::Vec> h2 = lstm2_->Forward(h1);
  return head_->Forward(h2.back())[0];
}

}  // namespace eadrl::models
