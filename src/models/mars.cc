#include "models/mars.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/linalg.h"
#include "math/stats.h"

namespace eadrl::models {
namespace {

// Fits ridge coefficients for a basis expansion and returns the SSE.
// `design` has one column per basis plus no intercept column; y is centered
// by the caller passing `intercept` out separately.
double FitBasis(const math::Matrix& design, const math::Vec& y, double lambda,
                math::Vec* coef, double* intercept) {
  const size_t n = design.rows();
  // Center columns and target; solve ridge on centered data.
  const size_t p = design.cols();
  math::Vec col_mean(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += design(i, j);
    col_mean[j] = s / static_cast<double>(n);
  }
  double y_mean = math::Mean(y);
  math::Matrix xc(n, p);
  math::Vec yc(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) xc(i, j) = design(i, j) - col_mean[j];
    yc[i] = y[i] - y_mean;
  }
  StatusOr<math::Vec> w = math::SolveRidge(xc, yc, lambda);
  if (!w.ok()) return std::numeric_limits<double>::infinity();
  *coef = std::move(w).value();
  *intercept = y_mean;
  for (size_t j = 0; j < p; ++j) *intercept -= (*coef)[j] * col_mean[j];

  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pred = *intercept;
    for (size_t j = 0; j < p; ++j) pred += (*coef)[j] * design(i, j);
    double d = y[i] - pred;
    sse += d * d;
  }
  return sse;
}

}  // namespace

double MarsRegressor::EvalHinge(const Hinge& h, const math::Vec& x) {
  double v = h.positive ? x[h.feature] - h.knot : h.knot - x[h.feature];
  return v > 0.0 ? v : 0.0;
}

Status MarsRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() < 4) {
    return Status::InvalidArgument("MARS: bad training data");
  }
  const size_t n = x.rows();
  const size_t p = x.cols();

  // Candidate knots: interior quantiles per feature.
  std::vector<Hinge> candidates;
  for (size_t j = 0; j < p; ++j) {
    math::Vec col = x.Col(j);
    for (size_t q = 1; q <= params_.knots_per_feature; ++q) {
      double knot = math::Quantile(
          col, static_cast<double>(q) /
                   static_cast<double>(params_.knots_per_feature + 1));
      candidates.push_back({j, knot, true});
      candidates.push_back({j, knot, false});
    }
  }

  bases_.clear();
  coef_.clear();
  intercept_ = math::Mean(y);
  double best_sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = y[i] - intercept_;
    best_sse += d * d;
  }

  // Greedy forward pass, adding mirrored pairs.
  std::vector<math::Vec> basis_columns;  // cached evaluations.
  while (bases_.size() + 2 <= params_.max_terms) {
    double round_best = best_sse - 1e-9;
    int round_best_cand = -1;
    math::Vec round_coef;
    double round_intercept = 0.0;

    for (size_t c = 0; c + 1 < candidates.size(); c += 2) {
      // Candidate pair c (positive) and c+1 (negative) share a knot.
      math::Matrix design(n, basis_columns.size() + 2);
      for (size_t j = 0; j < basis_columns.size(); ++j) {
        for (size_t i = 0; i < n; ++i) design(i, j) = basis_columns[j][i];
      }
      for (size_t i = 0; i < n; ++i) {
        design(i, basis_columns.size()) = EvalHinge(candidates[c], x.Row(i));
        design(i, basis_columns.size() + 1) =
            EvalHinge(candidates[c + 1], x.Row(i));
      }
      math::Vec w;
      double b0;
      double sse = FitBasis(design, y, params_.ridge_lambda, &w, &b0);
      if (sse < round_best) {
        round_best = sse;
        round_best_cand = static_cast<int>(c);
        round_coef = w;
        round_intercept = b0;
      }
    }

    if (round_best_cand < 0) break;  // no improving pair.
    size_t c = static_cast<size_t>(round_best_cand);
    for (size_t k = 0; k < 2; ++k) {
      bases_.push_back(candidates[c + k]);
      math::Vec colv(n);
      for (size_t i = 0; i < n; ++i) {
        colv[i] = EvalHinge(candidates[c + k], x.Row(i));
      }
      basis_columns.push_back(std::move(colv));
    }
    coef_ = round_coef;
    intercept_ = round_intercept;
    best_sse = round_best;
  }

  // Backward pruning by GCV = SSE / (n * (1 - C(M)/n)^2), C(M) = 1 + 3M.
  if (params_.prune && !bases_.empty()) {
    auto gcv = [&](double sse, size_t terms) {
      double cm = 1.0 + 3.0 * static_cast<double>(terms);
      double denom = 1.0 - cm / static_cast<double>(n);
      if (denom <= 0.0) return std::numeric_limits<double>::infinity();
      return sse / (static_cast<double>(n) * denom * denom);
    };
    double best_gcv = gcv(best_sse, bases_.size());
    bool improved = true;
    while (improved && bases_.size() > 1) {
      improved = false;
      size_t drop = 0;
      math::Vec drop_coef;
      double drop_intercept = 0.0;
      double drop_gcv = best_gcv;
      for (size_t r = 0; r < bases_.size(); ++r) {
        math::Matrix design(n, bases_.size() - 1);
        size_t col = 0;
        for (size_t j = 0; j < bases_.size(); ++j) {
          if (j == r) continue;
          for (size_t i = 0; i < n; ++i) {
            design(i, col) = basis_columns[j][i];
          }
          ++col;
        }
        math::Vec w;
        double b0;
        double sse = FitBasis(design, y, params_.ridge_lambda, &w, &b0);
        double g = gcv(sse, bases_.size() - 1);
        if (g < drop_gcv) {
          drop_gcv = g;
          drop = r;
          drop_coef = w;
          drop_intercept = b0;
          improved = true;
        }
      }
      if (improved) {
        bases_.erase(bases_.begin() + drop);
        basis_columns.erase(basis_columns.begin() + drop);
        coef_ = drop_coef;
        intercept_ = drop_intercept;
        best_gcv = drop_gcv;
      }
    }
  }

  fitted_ = true;
  return Status::Ok();
}

double MarsRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  double s = intercept_;
  for (size_t j = 0; j < bases_.size(); ++j) {
    s += coef_[j] * EvalHinge(bases_[j], x);
  }
  return s;
}

}  // namespace eadrl::models
