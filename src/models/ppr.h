#ifndef EADRL_MODELS_PPR_H_
#define EADRL_MODELS_PPR_H_

#include <vector>

#include "models/regressor.h"

namespace eadrl::models {

/// 1-D binned piecewise-linear smoother used by PPR ridge functions.
class BinnedSmoother {
 public:
  explicit BinnedSmoother(size_t bins = 12) : bins_(bins) {}

  Status Fit(const math::Vec& x, const math::Vec& y);
  double Predict(double x) const;

 private:
  size_t bins_;
  math::Vec centers_;
  math::Vec values_;
};

/// Projection pursuit regression (Friedman & Stuetzle 1981), additive form:
/// y = mean + sum_m g_m(w_m . x). Each stage projects the residual on a
/// ridge-regression direction and fits a 1-D smoother; stages are applied
/// greedily with optional backfitting passes.
class PprRegressor : public Regressor {
 public:
  struct Params {
    size_t num_terms = 3;
    size_t smoother_bins = 12;
    size_t backfit_passes = 1;
    double ridge_lambda = 1e-3;
  };

  explicit PprRegressor(Params params) : params_(params) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;
  double Predict(const math::Vec& x) const override;

 private:
  struct Term {
    math::Vec direction;
    BinnedSmoother smoother{12};
  };

  Params params_;
  double y_mean_ = 0.0;
  std::vector<Term> terms_;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_PPR_H_
