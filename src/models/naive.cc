#include "models/naive.h"

#include "common/check.h"
#include "common/string_util.h"

namespace eadrl::models {

Status NaiveForecaster::Fit(const ts::Series& train) {
  if (train.empty()) {
    return Status::InvalidArgument("naive: empty training series");
  }
  last_ = train[train.size() - 1];
  fitted_ = true;
  return Status::Ok();
}

double NaiveForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  return last_;
}

void NaiveForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  last_ = value;
}

SeasonalNaiveForecaster::SeasonalNaiveForecaster(size_t period)
    : name_(StrCat("snaive(", period, ")")), period_(period) {
  EADRL_CHECK_GT(period, 0u);
}

Status SeasonalNaiveForecaster::Fit(const ts::Series& train) {
  if (train.size() < period_) {
    return Status::InvalidArgument("snaive: series shorter than period");
  }
  buffer_.assign(train.values().end() - static_cast<ptrdiff_t>(period_),
                 train.values().end());
  fitted_ = true;
  return Status::Ok();
}

double SeasonalNaiveForecaster::PredictNext() {
  EADRL_CHECK(fitted_);
  return buffer_.front();
}

void SeasonalNaiveForecaster::Observe(double value) {
  EADRL_CHECK(fitted_);
  buffer_.push_back(value);
  buffer_.pop_front();
}

}  // namespace eadrl::models
