#ifndef EADRL_MODELS_TREE_H_
#define EADRL_MODELS_TREE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "models/regressor.h"

namespace eadrl::models {

/// Hyper-parameters for a CART regression tree.
struct TreeParams {
  size_t max_depth = 8;
  size_t min_samples_leaf = 3;
  /// Number of features considered per split; 0 means all.
  size_t max_features = 0;
};

/// CART regression tree with variance-reduction splits. Serves as the base
/// learner for the DT base model, Random Forest and GBM.
class RegressionTree : public Regressor {
 public:
  explicit RegressionTree(TreeParams params, Rng* rng = nullptr)
      : params_(params), rng_(rng) {}

  Status Fit(const math::Matrix& x, const math::Vec& y) override;

  /// Fits using only the given sample indices (bootstrap support).
  Status FitSubset(const math::Matrix& x, const math::Vec& y,
                   const std::vector<size_t>& indices);

  double Predict(const math::Vec& x) const override;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;  // -1 => leaf.
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction.
    int left = -1;
    int right = -1;
  };

  int Build(const math::Matrix& x, const math::Vec& y,
            std::vector<size_t>& indices, size_t begin, size_t end,
            size_t depth);

  TreeParams params_;
  Rng* rng_;  // optional; required if max_features > 0.
  std::vector<Node> nodes_;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_TREE_H_
