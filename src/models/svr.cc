#include "models/svr.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace eadrl::models {

SvrRegressor::SvrRegressor(Params params) : params_(params) {
  EADRL_CHECK_GT(params_.c, 0.0);
  EADRL_CHECK_GE(params_.epsilon, 0.0);
}

math::Vec SvrRegressor::MapFeatures(const math::Vec& x) const {
  if (params_.rff_features == 0) return x;
  // Random Fourier features: sqrt(2/D) * cos(Wx + b).
  math::Vec z = rff_w_.MatVec(x);
  double scale = std::sqrt(2.0 / static_cast<double>(params_.rff_features));
  for (size_t i = 0; i < z.size(); ++i) {
    z[i] = scale * std::cos(z[i] + rff_b_[i]);
  }
  return z;
}

Status SvrRegressor::Fit(const math::Matrix& x, const math::Vec& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("SVR: bad training data");
  }
  Rng rng(params_.seed);
  const size_t input_dim = x.cols();
  if (params_.rff_features > 0) {
    rff_w_ = math::Matrix(params_.rff_features, input_dim);
    rff_b_.resize(params_.rff_features);
    for (double& v : rff_w_.data()) {
      v = rng.Normal(0.0, 1.0 / params_.rff_length_scale);
    }
    for (double& v : rff_b_) v = rng.Uniform(0.0, 2.0 * M_PI);
  }

  const size_t dim = params_.rff_features > 0 ? params_.rff_features
                                              : input_dim;
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  const double lambda = 1.0 / (params_.c * static_cast<double>(x.rows()));

  std::vector<size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0u);

  long long step = 0;
  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      ++step;
      double lr = params_.learning_rate /
                  (1.0 + 0.01 * static_cast<double>(step) *
                             params_.learning_rate);
      math::Vec phi = MapFeatures(x.Row(idx));
      double pred = bias_ + math::Dot(weights_, phi);
      double err = pred - y[idx];

      // Subgradient of epsilon-insensitive loss + L2 regularizer.
      double g = 0.0;
      if (err > params_.epsilon) {
        g = 1.0;
      } else if (err < -params_.epsilon) {
        g = -1.0;
      }
      for (size_t j = 0; j < dim; ++j) {
        weights_[j] -= lr * (g * phi[j] + lambda * weights_[j]);
      }
      bias_ -= lr * g;
    }
  }
  fitted_ = true;
  return Status::Ok();
}

double SvrRegressor::Predict(const math::Vec& x) const {
  EADRL_CHECK(fitted_);
  math::Vec phi = MapFeatures(x);
  return bias_ + math::Dot(weights_, phi);
}

}  // namespace eadrl::models
