#ifndef EADRL_MODELS_ETS_H_
#define EADRL_MODELS_ETS_H_

#include <string>

#include "math/vec.h"
#include "models/forecaster.h"

namespace eadrl::models {

/// Exponential-smoothing family variants.
enum class EtsVariant {
  kSimple,             ///< SES: level only.
  kHolt,               ///< additive trend.
  kDampedHolt,         ///< damped additive trend.
  kHoltWintersAdditive ///< additive trend + additive seasonality.
};

/// Exponential smoothing (ETS) forecaster. Smoothing parameters are selected
/// by a coarse grid search minimizing the in-sample one-step-ahead SSE, as in
/// the classic `forecast::ets` default behaviour. The Holt–Winters variant
/// requires the series to declare a seasonal period; otherwise it degrades
/// to Holt.
class EtsForecaster : public Forecaster {
 public:
  explicit EtsForecaster(EtsVariant variant, size_t seasonal_period = 0);

  const std::string& name() const override { return name_; }
  Status Fit(const ts::Series& train) override;
  double PredictNext() override;
  void Observe(double value) override;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }

 private:
  struct State {
    double level = 0.0;
    double trend = 0.0;
    math::Vec seasonal;  // circular buffer of seasonal components.
    size_t season_index = 0;
  };

  /// Runs the smoothing recursion over `data` from a fresh initial state and
  /// returns the SSE of one-step-ahead forecasts; writes the final state.
  double RunSse(const math::Vec& data, double alpha, double beta,
                double gamma, State* final_state) const;

  double ForecastFromState() const;
  void UpdateState(double value);

  std::string name_;
  EtsVariant variant_;
  size_t period_;
  double alpha_ = 0.3;
  double beta_ = 0.1;
  double gamma_ = 0.1;
  double damping_ = 0.9;
  State state_;
  bool fitted_ = false;
};

}  // namespace eadrl::models

#endif  // EADRL_MODELS_ETS_H_
