#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "chk/chk.h"
#include "common/json.h"
#include "common/string_util.h"

namespace eadrl::obs {
namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendKey(std::string* out, const char* key) {
  *out += '"';
  *out += key;
  *out += "\":";
}

// Typed member lookups; every miss is a Status so a truncated or hand-edited
// snapshot reports *which* member is wrong instead of aborting.
Status GetNumber(const json::Value& obj, const char* key, double* out) {
  const json::Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(
        StrCat("bench snapshot: missing or non-numeric member '", key, "'"));
  }
  *out = v->AsNumber();
  return Status::Ok();
}

double NumberOr(const json::Value& obj, const char* key, double fallback) {
  const json::Value* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string StringOr(const json::Value& obj, const char* key,
                     const std::string& fallback) {
  const json::Value* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

uint64_t U64Or(const json::Value& obj, const char* key, uint64_t fallback) {
  const json::Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  const double n = v->AsNumber();
  return n > 0 ? static_cast<uint64_t>(n) : fallback;
}

// google-benchmark time_unit -> nanoseconds multiplier.
double TimeUnitToNs(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // google-benchmark defaults to ns.
}

}  // namespace

StatusOr<std::vector<BenchEntry>> ParseGoogleBenchmarkJson(
    const std::string& text, const std::string& prefix) {
  StatusOr<json::Value> doc = json::Parse(text);
  if (!doc.ok()) return doc.status();
  const json::Value* benchmarks = doc->Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument(
        "google-benchmark output: no 'benchmarks' array");
  }
  std::vector<BenchEntry> entries;
  for (const json::Value& row : benchmarks->AsArray()) {
    if (!row.is_object()) {
      return Status::InvalidArgument(
          "google-benchmark output: non-object benchmark row");
    }
    // With --benchmark_repetitions google-benchmark appends aggregate rows
    // (mean/median/stddev/cv); only raw iteration rows carry a trajectory.
    if (row.Find("aggregate_name") != nullptr) continue;
    const json::Value* name = row.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument(
          "google-benchmark output: benchmark row without a name");
    }
    BenchEntry entry;
    entry.name = prefix + name->AsString();
    double real_time = 0.0;
    double cpu_time = 0.0;
    Status st = GetNumber(row, "real_time", &real_time);
    if (!st.ok()) return st;
    st = GetNumber(row, "cpu_time", &cpu_time);
    if (!st.ok()) return st;
    const double to_ns = TimeUnitToNs(StringOr(row, "time_unit", "ns"));
    entry.real_time_ns = real_time * to_ns;
    entry.cpu_time_ns = cpu_time * to_ns;
    entry.iterations = U64Or(row, "iterations", 0);
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string BenchSnapshotToJson(const BenchSnapshot& snapshot) {
  std::string out;
  out.reserve(1024 + snapshot.entries.size() * 160);
  out += "{";
  AppendKey(&out, "schema_version");
  out += std::to_string(snapshot.schema_version);
  out += ',';
  AppendKey(&out, "label");
  out += '"';
  AppendJsonEscaped(&out, snapshot.label);
  out += "\",";
  AppendKey(&out, "host");
  out += "{";
  AppendKey(&out, "hardware_threads");
  out += std::to_string(snapshot.host.hardware_threads);
  out += ',';
  AppendKey(&out, "default_threads");
  out += std::to_string(snapshot.host.default_threads);
  out += ',';
  AppendKey(&out, "build_type");
  out += '"';
  AppendJsonEscaped(&out, snapshot.host.build_type);
  out += "\",";
  AppendKey(&out, "sanitizer");
  out += '"';
  AppendJsonEscaped(&out, snapshot.host.sanitizer);
  out += "\",";
  AppendKey(&out, "checks");
  out += snapshot.host.checks ? "true" : "false";
  out += ',';
  AppendKey(&out, "compiler");
  out += '"';
  AppendJsonEscaped(&out, snapshot.host.compiler);
  out += "\"},";
  AppendKey(&out, "benchmarks");
  out += "[";
  for (size_t i = 0; i < snapshot.entries.size(); ++i) {
    const BenchEntry& entry = snapshot.entries[i];
    if (i > 0) out += ',';
    out += "{";
    AppendKey(&out, "name");
    out += '"';
    AppendJsonEscaped(&out, entry.name);
    out += "\",";
    AppendKey(&out, "real_time_ns");
    out += JsonNumber(entry.real_time_ns);
    out += ',';
    AppendKey(&out, "cpu_time_ns");
    out += JsonNumber(entry.cpu_time_ns);
    out += ',';
    AppendKey(&out, "iterations");
    out += std::to_string(entry.iterations);
    out += "}";
  }
  out += "],";
  AppendKey(&out, "resources");
  out += "{";
  AppendKey(&out, "peak_rss_bytes");
  out += std::to_string(snapshot.resources.peak_rss_bytes);
  out += ',';
  AppendKey(&out, "current_rss_bytes");
  out += std::to_string(snapshot.resources.current_rss_bytes);
  out += ',';
  AppendKey(&out, "minor_faults");
  out += std::to_string(snapshot.resources.minor_faults);
  out += ',';
  AppendKey(&out, "major_faults");
  out += std::to_string(snapshot.resources.major_faults);
  out += ',';
  AppendKey(&out, "voluntary_ctx_switches");
  out += std::to_string(snapshot.resources.voluntary_ctx_switches);
  out += ',';
  AppendKey(&out, "involuntary_ctx_switches");
  out += std::to_string(snapshot.resources.involuntary_ctx_switches);
  out += ',';
  AppendKey(&out, "user_cpu_seconds");
  out += JsonNumber(snapshot.resources.user_cpu_seconds);
  out += ',';
  AppendKey(&out, "system_cpu_seconds");
  out += JsonNumber(snapshot.resources.system_cpu_seconds);
  out += ',';
  AppendKey(&out, "alloc_count");
  out += std::to_string(snapshot.allocs.count);
  out += ',';
  AppendKey(&out, "alloc_bytes");
  out += std::to_string(snapshot.allocs.bytes);
  out += "},";
  AppendKey(&out, "spans");
  out += "[";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanProfileRow& row = snapshot.spans[i];
    if (i > 0) out += ',';
    out += "{";
    AppendKey(&out, "name");
    out += '"';
    AppendJsonEscaped(&out, row.name);
    out += "\",";
    AppendKey(&out, "count");
    out += std::to_string(row.count);
    out += ',';
    AppendKey(&out, "total_seconds");
    out += JsonNumber(row.total_seconds);
    out += ',';
    AppendKey(&out, "self_seconds");
    out += JsonNumber(row.self_seconds);
    out += ',';
    AppendKey(&out, "alloc_count");
    out += std::to_string(row.alloc_count);
    out += ',';
    AppendKey(&out, "alloc_bytes");
    out += std::to_string(row.alloc_bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

StatusOr<BenchSnapshot> ParseBenchSnapshot(const std::string& text) {
  StatusOr<json::Value> doc = json::Parse(text);
  if (!doc.ok()) return doc.status();
  if (!doc->is_object()) {
    return Status::InvalidArgument("bench snapshot: document is not an object");
  }
  BenchSnapshot snapshot;
  double version = 0.0;
  Status st = GetNumber(*doc, "schema_version", &version);
  if (!st.ok()) return st;
  snapshot.schema_version = static_cast<int>(version);
  if (snapshot.schema_version != kBenchSchemaVersion) {
    return Status::InvalidArgument(
        StrCat("bench snapshot: schema_version ", snapshot.schema_version,
               " unsupported (want ", kBenchSchemaVersion, ")"));
  }
  snapshot.label = StringOr(*doc, "label", "");
  if (const json::Value* host = doc->Find("host");
      host != nullptr && host->is_object()) {
    snapshot.host.hardware_threads =
        static_cast<uint32_t>(U64Or(*host, "hardware_threads", 0));
    snapshot.host.default_threads =
        static_cast<uint32_t>(U64Or(*host, "default_threads", 0));
    snapshot.host.build_type = StringOr(*host, "build_type", "");
    snapshot.host.sanitizer = StringOr(*host, "sanitizer", "");
    const json::Value* checks = host->Find("checks");
    snapshot.host.checks =
        checks != nullptr && checks->is_bool() && checks->AsBool();
    snapshot.host.compiler = StringOr(*host, "compiler", "");
  }
  const json::Value* benchmarks = doc->Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument("bench snapshot: no 'benchmarks' array");
  }
  for (const json::Value& row : benchmarks->AsArray()) {
    if (!row.is_object()) {
      return Status::InvalidArgument("bench snapshot: non-object benchmark");
    }
    BenchEntry entry;
    entry.name = StringOr(row, "name", "");
    if (entry.name.empty()) {
      return Status::InvalidArgument("bench snapshot: benchmark without name");
    }
    st = GetNumber(row, "real_time_ns", &entry.real_time_ns);
    if (!st.ok()) return st;
    st = GetNumber(row, "cpu_time_ns", &entry.cpu_time_ns);
    if (!st.ok()) return st;
    entry.iterations = U64Or(row, "iterations", 0);
    snapshot.entries.push_back(std::move(entry));
  }
  if (const json::Value* res = doc->Find("resources");
      res != nullptr && res->is_object()) {
    snapshot.resources.peak_rss_bytes = U64Or(*res, "peak_rss_bytes", 0);
    snapshot.resources.current_rss_bytes = U64Or(*res, "current_rss_bytes", 0);
    snapshot.resources.minor_faults = U64Or(*res, "minor_faults", 0);
    snapshot.resources.major_faults = U64Or(*res, "major_faults", 0);
    snapshot.resources.voluntary_ctx_switches =
        U64Or(*res, "voluntary_ctx_switches", 0);
    snapshot.resources.involuntary_ctx_switches =
        U64Or(*res, "involuntary_ctx_switches", 0);
    snapshot.resources.user_cpu_seconds =
        NumberOr(*res, "user_cpu_seconds", 0.0);
    snapshot.resources.system_cpu_seconds =
        NumberOr(*res, "system_cpu_seconds", 0.0);
    snapshot.allocs.count = U64Or(*res, "alloc_count", 0);
    snapshot.allocs.bytes = U64Or(*res, "alloc_bytes", 0);
  }
  if (const json::Value* spans = doc->Find("spans");
      spans != nullptr && spans->is_array()) {
    for (const json::Value& row : spans->AsArray()) {
      if (!row.is_object()) continue;
      SpanProfileRow span;
      span.name = StringOr(row, "name", "");
      span.count = U64Or(row, "count", 0);
      span.total_seconds = NumberOr(row, "total_seconds", 0.0);
      span.self_seconds = NumberOr(row, "self_seconds", 0.0);
      span.alloc_count = U64Or(row, "alloc_count", 0);
      span.alloc_bytes = U64Or(row, "alloc_bytes", 0);
      snapshot.spans.push_back(std::move(span));
    }
  }
  return snapshot;
}

StatusOr<BenchSnapshot> LoadBenchSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("bench snapshot: cannot open ", path));
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  StatusOr<BenchSnapshot> snapshot = ParseBenchSnapshot(contents.str());
  if (!snapshot.ok()) {
    return Status::InvalidArgument(
        StrCat(path, ": ", snapshot.status().ToString()));
  }
  return snapshot;
}

Status WriteBenchSnapshot(const BenchSnapshot& snapshot,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument(
        StrCat("bench snapshot: cannot open ", path));
  }
  out << BenchSnapshotToJson(snapshot) << "\n";
  out.flush();
  if (!out) {
    return Status::Internal(StrCat("bench snapshot: write to ", path,
                                   " failed"));
  }
  return Status::Ok();
}

BenchComparison CompareBenchSnapshots(const BenchSnapshot& baseline,
                                      const BenchSnapshot& current,
                                      const BenchCompareOptions& options) {
  EADRL_CHK(options.noise_threshold >= 0.0,
            "CompareBenchSnapshots noise_threshold");
  BenchComparison comparison;
  comparison.host_differs =
      baseline.host.hardware_threads != current.host.hardware_threads ||
      baseline.host.build_type != current.host.build_type ||
      baseline.host.sanitizer != current.host.sanitizer ||
      baseline.host.checks != current.host.checks;

  std::map<std::string, const BenchEntry*> base_by_name;
  for (const BenchEntry& entry : baseline.entries) {
    base_by_name.emplace(entry.name, &entry);
  }
  std::map<std::string, bool> base_matched;
  for (const BenchEntry& entry : current.entries) {
    auto it = base_by_name.find(entry.name);
    if (it == base_by_name.end()) {
      comparison.only_in_current.push_back(entry.name);
      continue;
    }
    base_matched[entry.name] = true;
    const BenchEntry& base = *it->second;
    // Contract: timings in a snapshot are measurements — finite and
    // non-negative. A NaN or negative time means the file was corrupted or
    // doctored; fail loudly rather than classifying garbage.
    EADRL_CHK_FINITE_VALUE(base.real_time_ns, "baseline real_time_ns");
    EADRL_CHK_FINITE_VALUE(entry.real_time_ns, "current real_time_ns");
    EADRL_CHK(base.real_time_ns >= 0.0 && entry.real_time_ns >= 0.0,
              "bench snapshot real_time_ns must be non-negative");
    if (base.iterations == 0 || entry.iterations == 0 ||
        base.real_time_ns <= 0.0 || entry.real_time_ns <= 0.0) {
      comparison.skipped.push_back(entry.name);
      continue;
    }
    BenchDelta delta;
    delta.name = entry.name;
    delta.baseline_ns = base.real_time_ns;
    delta.current_ns = entry.real_time_ns;
    delta.ratio = entry.real_time_ns / base.real_time_ns;
    if (delta.ratio > 1.0 + options.noise_threshold) {
      comparison.regressions.push_back(std::move(delta));
    } else if (delta.ratio < 1.0 - options.noise_threshold) {
      comparison.improvements.push_back(std::move(delta));
    } else {
      comparison.unchanged.push_back(std::move(delta));
    }
  }
  for (const BenchEntry& entry : baseline.entries) {
    if (base_matched.find(entry.name) == base_matched.end()) {
      comparison.only_in_baseline.push_back(entry.name);
    }
  }
  std::sort(comparison.regressions.begin(), comparison.regressions.end(),
            [](const BenchDelta& a, const BenchDelta& b) {
              return a.ratio > b.ratio;
            });
  std::sort(comparison.improvements.begin(), comparison.improvements.end(),
            [](const BenchDelta& a, const BenchDelta& b) {
              return a.ratio < b.ratio;
            });
  return comparison;
}

namespace {

void AppendDeltaLine(std::string* out, const BenchDelta& delta) {
  *out += "  ";
  *out += PadRight(delta.name, 48);
  *out += PadLeft(FormatDouble(delta.baseline_ns, 1), 14);
  *out += " ->";
  *out += PadLeft(FormatDouble(delta.current_ns, 1), 14);
  *out += " ns  (";
  *out += FormatDouble((delta.ratio - 1.0) * 100.0, 1);
  *out += "%)\n";
}

void AppendDeltaJson(std::string* out, const BenchDelta& delta) {
  *out += "{\"name\":\"";
  AppendJsonEscaped(out, delta.name);
  *out += "\",\"baseline_ns\":";
  *out += JsonNumber(delta.baseline_ns);
  *out += ",\"current_ns\":";
  *out += JsonNumber(delta.current_ns);
  *out += ",\"ratio\":";
  *out += JsonNumber(delta.ratio);
  *out += "}";
}

void AppendNameListJson(std::string* out, const char* key,
                        const std::vector<std::string>& names) {
  AppendKey(out, key);
  *out += "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '"';
    AppendJsonEscaped(out, names[i]);
    *out += '"';
  }
  *out += "]";
}

}  // namespace

std::string FormatComparisonHuman(const BenchComparison& comparison,
                                  const BenchCompareOptions& options) {
  std::string out;
  out += "bench comparison (noise threshold ";
  out += FormatDouble(options.noise_threshold * 100.0, 1);
  out += "%)\n";
  if (comparison.host_differs) {
    out += "warning: host/build configuration differs between snapshots\n";
  }
  if (!comparison.regressions.empty()) {
    out += "regressions:\n";
    for (const BenchDelta& d : comparison.regressions) {
      AppendDeltaLine(&out, d);
    }
  }
  if (!comparison.improvements.empty()) {
    out += "improvements:\n";
    for (const BenchDelta& d : comparison.improvements) {
      AppendDeltaLine(&out, d);
    }
  }
  out += "unchanged: ";
  out += std::to_string(comparison.unchanged.size());
  out += " benchmark(s) within threshold\n";
  for (const std::string& name : comparison.only_in_baseline) {
    out += "only in baseline: " + name + "\n";
  }
  for (const std::string& name : comparison.only_in_current) {
    out += "only in current: " + name + "\n";
  }
  for (const std::string& name : comparison.skipped) {
    out += "skipped (zero iterations/time): " + name + "\n";
  }
  out += comparison.HasRegressions() ? "verdict: REGRESSED\n" : "verdict: OK\n";
  return out;
}

std::string FormatComparisonJson(const BenchComparison& comparison,
                                 const BenchCompareOptions& options) {
  std::string out = "{";
  AppendKey(&out, "noise_threshold");
  out += JsonNumber(options.noise_threshold);
  out += ',';
  AppendKey(&out, "host_differs");
  out += comparison.host_differs ? "true" : "false";
  out += ',';
  AppendKey(&out, "regressed");
  out += comparison.HasRegressions() ? "true" : "false";
  out += ',';
  AppendKey(&out, "regressions");
  out += "[";
  for (size_t i = 0; i < comparison.regressions.size(); ++i) {
    if (i > 0) out += ',';
    AppendDeltaJson(&out, comparison.regressions[i]);
  }
  out += "],";
  AppendKey(&out, "improvements");
  out += "[";
  for (size_t i = 0; i < comparison.improvements.size(); ++i) {
    if (i > 0) out += ',';
    AppendDeltaJson(&out, comparison.improvements[i]);
  }
  out += "],";
  AppendKey(&out, "unchanged_count");
  out += std::to_string(comparison.unchanged.size());
  out += ',';
  AppendNameListJson(&out, "only_in_baseline", comparison.only_in_baseline);
  out += ',';
  AppendNameListJson(&out, "only_in_current", comparison.only_in_current);
  out += ',';
  AppendNameListJson(&out, "skipped", comparison.skipped);
  out += "}";
  return out;
}

}  // namespace eadrl::obs
