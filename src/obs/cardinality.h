#ifndef EADRL_OBS_CARDINALITY_H_
#define EADRL_OBS_CARDINALITY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "obs/window.h"

// Per-label windowed drill-down with a hard cardinality bound (see DESIGN.md,
// "Live serving observability"). Labeled time series are the classic metrics
// footgun: a tenant id is user-controlled, so an unbounded map of
// per-tenant histograms is an unbounded memory (and scrape-size) leak. A
// LabeledWindowedFamily caps the live label set at `max_labels`; when the cap
// is hit, a new label may only displace the least-recently-observed slot if
// that slot has gone a full window span without an observation (so an active
// tenant's window is never torn down mid-flight). Otherwise the observation
// is counted in `overflow` and dropped from the drill-down — the unlabeled
// aggregate metrics still see every event, so nothing is lost from totals.

namespace eadrl::obs {

struct LabeledWindowedFamilyOptions {
  /// Metric family name used by the exporters (e.g.
  /// "eadrl_serve_tenant_predict_latency_seconds").
  std::string name;
  /// Label key rendered on every series (e.g. "tenant").
  std::string label_key = "label";
  /// Hard cap on simultaneously tracked labels.
  size_t max_labels = 64;
  WindowOptions window;
  /// Histogram bucket bounds; empty = Histogram::DefaultLatencyBounds().
  std::vector<double> bounds;
};

/// One label's drill-down view at snapshot time.
struct LabeledWindowSnapshot {
  std::string label;
  WindowedHistogramSnapshot window;
  uint64_t cumulative_count = 0;
};

struct LabeledWindowedFamilySnapshot {
  /// Sorted by windowed count descending (most active first), truncated to
  /// the requested top-K.
  std::vector<LabeledWindowSnapshot> top;
  size_t tracked_labels = 0;  ///< live slots (<= max_labels, always).
  uint64_t overflow = 0;      ///< observations dropped at the cap.
  uint64_t evictions = 0;     ///< stale slots displaced by new labels.
};

/// Thread-safe. Observe serializes on one family mutex (label lookup + LRU
/// bump are O(1)); the per-slot windowed histogram update happens under it,
/// which is the registered obs_family -> obs_window nesting. This family lock
/// is a deliberate trade: drill-down metrics are sampled per-request on the
/// serving path, where a single uncontended lock (tens of ns) is noise next
/// to a model forward pass.
class LabeledWindowedFamily {
 public:
  explicit LabeledWindowedFamily(const LabeledWindowedFamilyOptions& options);

  void Observe(const std::string& label, double value);
  /// Observe with a caller-provided reading of this family's window clock
  /// (NowNs()) — see WindowedCounter::IncAt for the batch-amortization
  /// contract.
  void ObserveAt(uint64_t now_ns, const std::string& label, double value);

  /// Current reading of the family's window clock (injected or monotonic).
  uint64_t NowNs() const;

  /// Top `k` labels by windowed activity plus the guard counters. `k = 0`
  /// means all tracked labels.
  LabeledWindowedFamilySnapshot Snapshot(size_t k = 0) const;

  size_t TrackedLabels() const;
  uint64_t Overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  uint64_t Evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  const LabeledWindowedFamilyOptions& options() const { return opt_; }

  /// JSON value: {"tracked":N,"overflow":N,"evictions":N,"top":[...]}.
  std::string ToJsonValue(size_t k = 0) const;
  /// Prometheus exposition: <name>_rate / <name>_p99 gauges per top-K label
  /// plus <name>_overflow_total / <name>_evictions_total / <name>_tracked.
  void AppendPrometheus(std::string* out, size_t k = 0) const;

 private:
  struct Slot {
    explicit Slot(const LabeledWindowedFamilyOptions& options)
        : window(options.window, options.bounds) {}

    WindowedHistogram window;
    /// now_ns at the last observation; staleness = now - last_seen_ns.
    uint64_t last_seen_ns = 0;
    /// Position in lru_ (front = most recently observed).
    std::list<std::string>::iterator lru_pos;
  };

  LabeledWindowedFamilyOptions opt_;
  /// Full window span in ns: a slot idle at least this long holds no live
  /// sub-window data, so evicting it loses nothing.
  uint64_t stale_ns_;
  mutable chk::OrderedMutex family_mu_{
      EADRL_LOCK_RANK(obs_family), "obs::LabeledWindowedFamily::family_mu_"};
  std::unordered_map<std::string, std::unique_ptr<Slot>> slots_
      EADRL_GUARDED_BY(family_mu_);
  /// Most recently observed label at the front.
  std::list<std::string> lru_ EADRL_GUARDED_BY(family_mu_);
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace eadrl::obs

#endif  // EADRL_OBS_CARDINALITY_H_
