#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <thread>
#include <unordered_map>

#include "chk/chk.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace eadrl::obs {

namespace internal_trace {
std::atomic<TraceBuffer*> g_buffer{nullptr};
}  // namespace internal_trace

namespace {

// In-flight Record guard: SetTraceBuffer(nullptr) must not return while a
// finishing span still holds a buffer pointer, or the caller could destroy
// the buffer under it (pool workers finish their task span *after* the
// task's completion is observable to waiters). Readers increment before
// re-checking the pointer; the disabling store is sequenced against that
// increment, so either the reader sees nullptr and bails or the disabler
// sees the reader and waits. seq_cst keeps the Dekker-style handshake
// obviously correct; the hot-path gate (TracingEnabled) stays relaxed.
std::atomic<int64_t> g_inflight{0};

TraceBuffer* AcquireTraceBuffer() {
  g_inflight.fetch_add(1, std::memory_order_seq_cst);
  TraceBuffer* buffer =
      internal_trace::g_buffer.load(std::memory_order_seq_cst);
  if (buffer == nullptr) {
    g_inflight.fetch_sub(1, std::memory_order_seq_cst);
    return nullptr;
  }
  return buffer;
}

void ReleaseTraceBuffer() {
  g_inflight.fetch_sub(1, std::memory_order_seq_cst);
}

// Id allocators. 0 is reserved as "none" everywhere.
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint32_t> g_next_tid{1};

// Per-thread span state. The active pointer only ever holds *armed* spans,
// and only the owning thread reads or writes it, so parent/child bookkeeping
// (including child_seconds_) is single-threaded by construction.
thread_local Span* tl_active = nullptr;
thread_local TraceParent tl_remote{};
thread_local uint32_t tl_tid = 0;

// The process trace epoch: every exported timestamp is relative to the
// first armed span, keeping `ts` values small and Perfetto-friendly.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return kEpoch;
}

std::mutex& ThreadNamesMu() {
  static std::mutex mu;
  return mu;
}

std::map<uint32_t, std::string>& ThreadNames() {
  static std::map<uint32_t, std::string>* names =
      new std::map<uint32_t, std::string>();  // NOLINT(naked-new): leaked on
                                              // purpose so late-exiting
                                              // threads can still register
  return *names;
}

// Lock-free double accumulation (same CAS loop as the metrics backend).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

// Cross-thread aggregate behind SpanProfileSnapshot(): one record per span
// name, updated with relaxed atomics on every finish. Values are leaked so
// cached pointers stay valid for the process lifetime (Reset zeroes, never
// frees).
struct SpanStats {
  std::atomic<uint64_t> count{0};
  std::atomic<double> total_seconds{0.0};
  std::atomic<double> self_seconds{0.0};
  std::atomic<uint64_t> alloc_count{0};
  std::atomic<uint64_t> alloc_bytes{0};
};

std::mutex& SpanStatsMu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SpanStats*>& SpanStatsMap() {
  static std::map<std::string, SpanStats*>* stats =
      new std::map<std::string, SpanStats*>();  // NOLINT(naked-new): leaked
                                                // on purpose; see SpanStats
  return *stats;
}

SpanStats* SpanStatsFor(const char* name) {
  std::lock_guard<std::mutex> lock(SpanStatsMu());
  SpanStats*& slot = SpanStatsMap()[name];
  if (slot == nullptr) {
    slot = new SpanStats();  // NOLINT(naked-new): leaked on purpose; see
                             // SpanStats
  }
  return slot;
}

// Per-thread cache of the profiler families, keyed by span-name pointer
// (names are literals): the registry mutex is paid once per (thread, name)
// instead of once per finished span.
struct ProfilerFamilies {
  Histogram* duration;
  Counter* self_time;
  Counter* alloc_count;
  Counter* alloc_bytes;
  SpanStats* stats;
};

ProfilerFamilies ProfilerFor(const char* name) {
  thread_local std::unordered_map<const void*, ProfilerFamilies> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  MetricRegistry& registry = MetricRegistry::Default();
  ProfilerFamilies families;
  families.duration =
      registry.GetHistogram("eadrl_span_seconds", {}, {{"span", name}});
  families.self_time = registry.GetCounter("eadrl_span_self_seconds_total",
                                           {{"span", name}});
  families.alloc_count = registry.GetCounter("eadrl_span_alloc_count_total",
                                             {{"span", name}});
  families.alloc_bytes = registry.GetCounter("eadrl_span_alloc_bytes_total",
                                             {{"span", name}});
  families.stats = SpanStatsFor(name);
  cache.emplace(name, families);
  return families;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendFieldJson(std::string* out, const TelemetryField& field) {
  *out += '"';
  AppendJsonEscaped(out, field.key);
  *out += "\":";
  switch (field.type) {
    case TelemetryField::Type::kDouble:
      *out += JsonNumber(field.num);
      break;
    case TelemetryField::Type::kInt:
      *out += std::to_string(field.inum);
      break;
    case TelemetryField::Type::kString:
      *out += '"';
      AppendJsonEscaped(out, field.str);
      *out += '"';
      break;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceBuffer.
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity)
    : per_shard_capacity_(std::max<size_t>(1, capacity / kNumShards)),
      shards_(std::make_unique<Shard[]>(kNumShards)) {}

void TraceBuffer::Record(FinishedSpan span) {
  Shard& shard = shards_[span.span_id % kNumShards];
  std::lock_guard<chk::OrderedMutex> lock(shard.shard_mu);
  if (shard.spans.size() >= per_shard_capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.spans.push_back(std::move(span));
}

std::vector<FinishedSpan> TraceBuffer::Snapshot() const {
  std::vector<FinishedSpan> out;
  for (size_t i = 0; i < kNumShards; ++i) {
    std::lock_guard<chk::OrderedMutex> lock(shards_[i].shard_mu);
    out.insert(out.end(), shards_[i].spans.begin(), shards_[i].spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const FinishedSpan& a, const FinishedSpan& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return out;
}

size_t TraceBuffer::size() const {
  size_t n = 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    std::lock_guard<chk::OrderedMutex> lock(shards_[i].shard_mu);
    n += shards_[i].spans.size();
  }
  return n;
}

std::string TraceBuffer::ToChromeTraceJson() const {
  const std::vector<FinishedSpan> spans = Snapshot();
  std::map<uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(ThreadNamesMu());
    names = ThreadNames();
  }
  std::string out;
  out.reserve(256 + spans.size() * 160);
  out +=
      "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"tid\":0,\"args\":{\"name\":\"eadrl\"}}";
  for (const auto& [tid, name] : names) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += "\"}}";
  }
  for (const FinishedSpan& span : spans) {
    out += ",{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"cat\":\"eadrl\",\"ph\":\"X\",\"ts\":";
    out += FormatDouble(span.start_us, 3);
    out += ",\"dur\":";
    out += FormatDouble(span.dur_us, 3);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(span.trace_id);
    out += ",\"span_id\":";
    out += std::to_string(span.span_id);
    if (span.parent_id != 0) {
      out += ",\"parent_id\":";
      out += std::to_string(span.parent_id);
    }
    for (const TelemetryField& field : span.attrs) {
      out += ',';
      AppendFieldJson(&out, field);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":";
  out += std::to_string(dropped());
  out += "}}";
  return out;
}

Status TraceBuffer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("trace: cannot open " + path);
  }
  out << ToChromeTraceJson() << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("trace: write to " + path + " failed");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Global buffer installation.
// ---------------------------------------------------------------------------

void SetTraceBuffer(TraceBuffer* buffer) {
  internal_trace::g_buffer.store(buffer, std::memory_order_seq_cst);
  if (buffer == nullptr) {
    // Drain in-flight recordings so the caller may free the old buffer.
    while (g_inflight.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
}

TraceBuffer* GetTraceBuffer() {
  return internal_trace::g_buffer.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Thread identity.
// ---------------------------------------------------------------------------

uint32_t CurrentTraceTid() {
  if (tl_tid == 0) {
    tl_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_tid;
}

void SetCurrentThreadTraceName(const std::string& name) {
  const uint32_t tid = CurrentTraceTid();
  std::lock_guard<std::mutex> lock(ThreadNamesMu());
  ThreadNames()[tid] = name;
}

// ---------------------------------------------------------------------------
// Span + cross-thread parenting.
// ---------------------------------------------------------------------------

TraceParent CurrentTraceParent() {
  if (tl_active != nullptr) {
    return TraceParent{tl_active->trace_id(), tl_active->span_id()};
  }
  return tl_remote;
}

ScopedTraceParent::ScopedTraceParent(TraceParent parent)
    : saved_active_(tl_active), saved_remote_(tl_remote) {
  tl_active = nullptr;
  tl_remote = parent;
  if (saved_active_ != nullptr) {
    timing_ = true;
    start_ = std::chrono::steady_clock::now();
    const AllocStats alloc = ThreadAllocStats();
    start_alloc_count_ = alloc.count;
    start_alloc_bytes_ = alloc.bytes;
  }
}

ScopedTraceParent::~ScopedTraceParent() {
  if (timing_) {
    // The masked span spent this whole window running someone else's work
    // (a waiter helping the pool); credit it as child time — and the
    // window's allocations as child allocations — so its self numbers stay
    // what it actually computed.
    saved_active_->child_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const AllocStats alloc = ThreadAllocStats();
    saved_active_->child_alloc_count_ += alloc.count - start_alloc_count_;
    saved_active_->child_alloc_bytes_ += alloc.bytes - start_alloc_bytes_;
  }
  tl_active = saved_active_;
  tl_remote = saved_remote_;
}

Span::Span(const char* name) : name_(name) {
  if (!TracingEnabled()) return;  // the ~1 ns disabled path.
  armed_ = true;
  TraceEpoch();  // pin the epoch no later than the first armed span.
  start_ = std::chrono::steady_clock::now();
  const AllocStats alloc = ThreadAllocStats();
  start_alloc_count_ = alloc.count;
  start_alloc_bytes_ = alloc.bytes;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (tl_active != nullptr) {
    trace_id_ = tl_active->trace_id_;
    parent_id_ = tl_active->span_id_;
  } else if (tl_remote.span_id != 0) {
    trace_id_ = tl_remote.trace_id;
    parent_id_ = tl_remote.span_id;
  } else {
    trace_id_ = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = 0;
  }
  parent_span_ = tl_active;
  tl_active = this;
}

Span::~Span() {
  if (armed_) Finish();
}

void Span::Finish() {
  EADRL_CHK(tl_active == this, "Span destroyed out of LIFO order");
  armed_ = false;
  const double dur_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  tl_active = parent_span_;

  // Allocation attribution, mirroring the time bookkeeping: the thread-local
  // delta over the span's lifetime, minus what child spans (and masked
  // helping windows) already claimed, is this span's self share. Deltas use
  // the same thread's counters only, so the arithmetic is race-free.
  const AllocStats alloc = ThreadAllocStats();
  const uint64_t alloc_count = alloc.count - start_alloc_count_;
  const uint64_t alloc_bytes = alloc.bytes - start_alloc_bytes_;
  const uint64_t self_alloc_count =
      alloc_count - std::min(child_alloc_count_, alloc_count);
  const uint64_t self_alloc_bytes =
      alloc_bytes - std::min(child_alloc_bytes_, alloc_bytes);
  if (parent_span_ != nullptr) {
    parent_span_->child_seconds_ += dur_seconds;
    parent_span_->child_alloc_count_ += alloc_count;
    parent_span_->child_alloc_bytes_ += alloc_bytes;
  }

  // Span-fed profiler: per-name duration histogram + self-time/allocation
  // counters in the default registry, so `--metrics-summary` doubles as a
  // hot-spot table even when the trace itself is discarded.
  const ProfilerFamilies families = ProfilerFor(name_);
  families.duration->Observe(dur_seconds);
  const double self_seconds = std::max(0.0, dur_seconds - child_seconds_);
  families.self_time->Inc(self_seconds);
  if (self_alloc_count > 0) {
    families.alloc_count->Inc(static_cast<double>(self_alloc_count));
    families.alloc_bytes->Inc(static_cast<double>(self_alloc_bytes));
  }
  families.stats->count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&families.stats->total_seconds, dur_seconds);
  AtomicAddDouble(&families.stats->self_seconds, self_seconds);
  families.stats->alloc_count.fetch_add(self_alloc_count,
                                        std::memory_order_relaxed);
  families.stats->alloc_bytes.fetch_add(self_alloc_bytes,
                                        std::memory_order_relaxed);
  if (self_alloc_count > 0) {
    attrs_.emplace_back("alloc_count",
                        static_cast<int64_t>(self_alloc_count));
    attrs_.emplace_back("alloc_bytes",
                        static_cast<int64_t>(self_alloc_bytes));
  }

  TraceBuffer* buffer = AcquireTraceBuffer();
  if (buffer == nullptr) return;  // sink was removed while the span ran.
  FinishedSpan finished;
  finished.name = name_;
  finished.trace_id = trace_id_;
  finished.span_id = span_id_;
  finished.parent_id = parent_id_;
  finished.tid = CurrentTraceTid();
  finished.start_us =
      std::chrono::duration<double, std::micro>(start_ - TraceEpoch())
          .count();
  finished.dur_us = dur_seconds * 1e6;
  finished.attrs = std::move(attrs_);
  buffer->Record(std::move(finished));
  ReleaseTraceBuffer();
}

// ---------------------------------------------------------------------------
// Span profiler aggregates.
// ---------------------------------------------------------------------------

std::vector<SpanProfileRow> SpanProfileSnapshot() {
  std::vector<SpanProfileRow> rows;
  {
    std::lock_guard<std::mutex> lock(SpanStatsMu());
    for (const auto& [name, stats] : SpanStatsMap()) {
      SpanProfileRow row;
      row.name = name;
      row.count = stats->count.load(std::memory_order_relaxed);
      row.total_seconds = stats->total_seconds.load(std::memory_order_relaxed);
      row.self_seconds = stats->self_seconds.load(std::memory_order_relaxed);
      row.alloc_count = stats->alloc_count.load(std::memory_order_relaxed);
      row.alloc_bytes = stats->alloc_bytes.load(std::memory_order_relaxed);
      if (row.count > 0) rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const SpanProfileRow& a, const SpanProfileRow& b) {
              if (a.self_seconds != b.self_seconds) {
                return a.self_seconds > b.self_seconds;
              }
              return a.name < b.name;
            });
  return rows;
}

std::string FormatSpanProfileReport(size_t top_n) {
  const std::vector<SpanProfileRow> rows = SpanProfileSnapshot();
  std::string out;
  out += PadRight("span", 20) + PadLeft("count", 10) +
         PadLeft("total_s", 12) + PadLeft("self_s", 12) +
         PadLeft("self%", 8) + PadLeft("allocs", 12) +
         PadLeft("alloc_bytes", 14) + "\n";
  double self_total = 0.0;
  for (const SpanProfileRow& row : rows) self_total += row.self_seconds;
  size_t shown = 0;
  for (const SpanProfileRow& row : rows) {
    if (shown++ >= top_n) break;
    const double pct =
        self_total > 0.0 ? 100.0 * row.self_seconds / self_total : 0.0;
    out += PadRight(row.name, 20) + PadLeft(std::to_string(row.count), 10) +
           PadLeft(FormatDouble(row.total_seconds, 6), 12) +
           PadLeft(FormatDouble(row.self_seconds, 6), 12) +
           PadLeft(FormatDouble(pct, 1), 8) +
           PadLeft(std::to_string(row.alloc_count), 12) +
           PadLeft(std::to_string(row.alloc_bytes), 14) + "\n";
  }
  if (rows.empty()) {
    out += "(no spans profiled; run with tracing enabled)\n";
  } else if (rows.size() > top_n) {
    // Sequential appends: GCC-12's -Wrestrict misfires on the
    // `const char* + std::string&&` concatenation chain here.
    out += "(";
    out += std::to_string(rows.size() - top_n);
    out += " more spans)\n";
  }
  return out;
}

void ResetSpanProfileForTest() {
  std::lock_guard<std::mutex> lock(SpanStatsMu());
  for (auto& [name, stats] : SpanStatsMap()) {
    static_cast<void>(name);
    stats->count.store(0, std::memory_order_relaxed);
    stats->total_seconds.store(0.0, std::memory_order_relaxed);
    stats->self_seconds.store(0.0, std::memory_order_relaxed);
    stats->alloc_count.store(0, std::memory_order_relaxed);
    stats->alloc_bytes.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Span registry (src/obs/spans.def).
// ---------------------------------------------------------------------------

const std::vector<const char*>& RegisteredSpans() {
  static const std::vector<const char*> kSpans = {
#define EADRL_SPAN(name, description) #name,
#include "obs/spans.def"
#undef EADRL_SPAN
  };
  return kSpans;
}

bool IsRegisteredSpan(const char* name) {
  for (const char* registered : RegisteredSpans()) {
    if (std::strcmp(registered, name) == 0) return true;
  }
  return false;
}

}  // namespace eadrl::obs
