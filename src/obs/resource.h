#ifndef EADRL_OBS_RESOURCE_H_
#define EADRL_OBS_RESOURCE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace eadrl::obs {

class MetricRegistry;

/// Process-wide resource usage at one point in time, from
/// getrusage(RUSAGE_SELF) plus /proc/self/statm (see DESIGN.md, "Perf
/// trajectory & resource observability"). Sampling is a syscall + one small
/// file read — cheap enough for per-workload bracketing, too slow for inner
/// loops.
struct ResourceSample {
  uint64_t peak_rss_bytes = 0;     ///< high-water mark (ru_maxrss).
  uint64_t current_rss_bytes = 0;  ///< resident set now; 0 off-Linux.
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t voluntary_ctx_switches = 0;
  uint64_t involuntary_ctx_switches = 0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
};

ResourceSample SampleResources();

/// Scratch-allocation statistics reported through CountAlloc. These count
/// the *instrumented* allocation sites (math matrix/vector scratch, nn
/// forward/backward temporaries, replay-buffer inserts) — a churn signal for
/// the batching/arena work, not a malloc-level accounting of every byte.
struct AllocStats {
  uint64_t count = 0;
  uint64_t bytes = 0;
};

namespace internal_resource {

/// Per-thread counters. Atomics because other threads read them (totals,
/// snapshots) while the owner increments; all accesses are relaxed — the
/// numbers are statistics, not synchronization.
struct ThreadAllocCounters {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> bytes{0};

  ThreadAllocCounters();   ///< registers with the process-wide roster.
  ~ThreadAllocCounters();  ///< folds the final values into the retired total.

  ThreadAllocCounters(const ThreadAllocCounters&) = delete;
  ThreadAllocCounters& operator=(const ThreadAllocCounters&) = delete;
};

ThreadAllocCounters& TlsAllocCounters();

}  // namespace internal_resource

/// Reports one scratch allocation of `bytes` bytes by the calling thread.
/// Two relaxed thread-local increments (~1 ns); safe from pool workers.
/// Spans attribute the deltas: obs::Span snapshots the calling thread's
/// counters when armed and, on finish, credits itself with the delta minus
/// its children's share (see obs/trace.h).
inline void CountAlloc(size_t bytes) {
  internal_resource::ThreadAllocCounters& c =
      internal_resource::TlsAllocCounters();
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// The calling thread's counters (monotone over the thread's lifetime).
AllocStats ThreadAllocStats();

/// Counters summed across every thread that ever reported (live + exited).
AllocStats TotalAllocStats();

/// Publishes the current ResourceSample and TotalAllocStats into `registry`
/// (the default registry when null): gauges `eadrl_peak_rss_bytes`,
/// `eadrl_rss_bytes`, `eadrl_page_faults{kind=...}`,
/// `eadrl_ctx_switches{kind=...}`, `eadrl_cpu_seconds{mode=...}`,
/// `eadrl_alloc_count_total` and `eadrl_alloc_bytes_total` (the alloc totals
/// are monotone, but exported as gauges so repeated publishes — into any
/// registry — are simple last-write-wins).
void UpdateResourceMetrics(MetricRegistry* registry = nullptr);

}  // namespace eadrl::obs

#endif  // EADRL_OBS_RESOURCE_H_
