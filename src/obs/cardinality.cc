#include "obs/cardinality.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace eadrl::obs {

LabeledWindowedFamily::LabeledWindowedFamily(
    const LabeledWindowedFamilyOptions& options)
    : opt_(options) {
  EADRL_CHECK(!opt_.name.empty());
  EADRL_CHECK_GT(opt_.max_labels, 0u);
  const double span_seconds =
      opt_.window.tick_seconds * static_cast<double>(opt_.window.buckets);
  stale_ns_ = static_cast<uint64_t>(span_seconds * 1e9);
  if (stale_ns_ == 0) stale_ns_ = 1;
}

uint64_t LabeledWindowedFamily::NowNs() const {
  return opt_.window.now_ns != nullptr ? opt_.window.now_ns()
                                       : MonotonicNowNs();
}

void LabeledWindowedFamily::Observe(const std::string& label, double value) {
  ObserveAt(NowNs(), label, value);
}

void LabeledWindowedFamily::ObserveAt(uint64_t now, const std::string& label,
                                      double value) {
  std::lock_guard<chk::OrderedMutex> lock(family_mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    if (slots_.size() >= opt_.max_labels) {
      // At the cap a new label may only displace the LRU tail, and only if
      // the tail has idled past the full window span — its sub-windows are
      // all zero by now, so nothing observable is lost. An active tail means
      // the cap is genuinely contended: count the drop and keep the
      // established labels stable.
      const std::string& victim_label = lru_.back();
      auto victim = slots_.find(victim_label);
      EADRL_CHECK(victim != slots_.end());
      const uint64_t last = victim->second->last_seen_ns;
      if (now < last || now - last < stale_ns_) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      slots_.erase(victim);
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    auto slot = std::make_unique<Slot>(opt_);
    lru_.push_front(label);
    slot->lru_pos = lru_.begin();
    it = slots_.emplace(label, std::move(slot)).first;
  } else if (it->second->lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second->lru_pos);
  }
  it->second->last_seen_ns = now;
  it->second->window.ObserveAt(now, value);
}

LabeledWindowedFamilySnapshot LabeledWindowedFamily::Snapshot(size_t k) const {
  LabeledWindowedFamilySnapshot snap;
  {
    std::lock_guard<chk::OrderedMutex> lock(family_mu_);
    snap.tracked_labels = slots_.size();
    snap.top.reserve(slots_.size());
    for (const auto& [label, slot] : slots_) {
      LabeledWindowSnapshot entry;
      entry.label = label;
      entry.window = slot->window.Snapshot();
      entry.cumulative_count = slot->window.CumulativeCount();
      snap.top.push_back(std::move(entry));
    }
  }
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  std::sort(snap.top.begin(), snap.top.end(),
            [](const LabeledWindowSnapshot& a, const LabeledWindowSnapshot& b) {
              if (a.window.values.count != b.window.values.count) {
                return a.window.values.count > b.window.values.count;
              }
              if (a.cumulative_count != b.cumulative_count) {
                return a.cumulative_count > b.cumulative_count;
              }
              return a.label < b.label;
            });
  if (k > 0 && snap.top.size() > k) snap.top.resize(k);
  return snap;
}

size_t LabeledWindowedFamily::TrackedLabels() const {
  std::lock_guard<chk::OrderedMutex> lock(family_mu_);
  return slots_.size();
}

std::string LabeledWindowedFamily::ToJsonValue(size_t k) const {
  const LabeledWindowedFamilySnapshot snap = Snapshot(k);
  std::ostringstream out;
  out << "{\"label_key\":\"" << JsonEscaped(opt_.label_key)
      << "\",\"tracked\":" << snap.tracked_labels
      << ",\"overflow\":" << snap.overflow
      << ",\"evictions\":" << snap.evictions << ",\"top\":[";
  for (size_t i = 0; i < snap.top.size(); ++i) {
    const LabeledWindowSnapshot& entry = snap.top[i];
    if (i > 0) out << ",";
    out << "{\"" << JsonEscaped(opt_.label_key) << "\":\""
        << JsonEscaped(entry.label)
        << "\",\"window_count\":" << entry.window.values.count
        << ",\"cumulative_count\":" << entry.cumulative_count
        << ",\"window_seconds\":" << entry.window.window_seconds
        << ",\"rate\":" << entry.window.Rate()
        << ",\"mean\":" << entry.window.values.Mean()
        << ",\"p50\":" << entry.window.values.Quantile(0.5)
        << ",\"p99\":" << entry.window.values.Quantile(0.99) << "}";
  }
  out << "]}";
  return out.str();
}

void LabeledWindowedFamily::AppendPrometheus(std::string* out,
                                             size_t k) const {
  const LabeledWindowedFamilySnapshot snap = Snapshot(k);
  auto series = [this, out](const char* suffix, const std::string& label,
                            double value) {
    std::ostringstream line;
    line << opt_.name << suffix << "{" << opt_.label_key << "=\"" << label
         << "\"} " << value << "\n";
    *out += line.str();
  };
  *out += "# TYPE " + opt_.name + "_rate gauge\n";
  for (const LabeledWindowSnapshot& entry : snap.top) {
    series("_rate", entry.label, entry.window.Rate());
  }
  *out += "# TYPE " + opt_.name + "_p99 gauge\n";
  for (const LabeledWindowSnapshot& entry : snap.top) {
    series("_p99", entry.label, entry.window.values.Quantile(0.99));
  }
  std::ostringstream tail;
  tail << "# TYPE " << opt_.name << "_tracked gauge\n"
       << opt_.name << "_tracked " << snap.tracked_labels << "\n"
       << "# TYPE " << opt_.name << "_overflow_total counter\n"
       << opt_.name << "_overflow_total " << snap.overflow << "\n"
       << "# TYPE " << opt_.name << "_evictions_total counter\n"
       << opt_.name << "_evictions_total " << snap.evictions << "\n";
  *out += tail.str();
}

}  // namespace eadrl::obs
