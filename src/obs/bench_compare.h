#ifndef EADRL_OBS_BENCH_COMPARE_H_
#define EADRL_OBS_BENCH_COMPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace eadrl::obs {

// Machine-readable perf snapshots (`BENCH_<n>.json` at the repo root) and
// their regression comparator — the perf-trajectory layer behind
// tools/eadrl_bench (see DESIGN.md, "Perf trajectory & resource
// observability"). A snapshot records every benchmark's timing, the host
// configuration that produced it, and process resource/span-profile stats;
// the comparator matches two snapshots by benchmark name under a noise
// threshold so "this PR made X faster/slower" is a checkable claim.

/// Bump when the JSON layout changes incompatibly. Parsers reject files with
/// a different major version rather than guessing.
inline constexpr int kBenchSchemaVersion = 1;

/// One benchmark's timing. Times are nanoseconds per iteration (the
/// google-benchmark convention, whatever time_unit the suite displays in).
struct BenchEntry {
  std::string name;  ///< "suite/BM_Name/args" — the comparator's match key.
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  uint64_t iterations = 0;
};

/// The configuration that produced a snapshot. Comparisons across differing
/// hosts are flagged, not rejected — noise thresholds are the caller's job.
struct BenchHost {
  uint32_t hardware_threads = 0;
  uint32_t default_threads = 0;  ///< eadrl::par default at record time.
  std::string build_type;        ///< CMAKE_BUILD_TYPE.
  std::string sanitizer;         ///< EADRL_SANITIZE mode, "" for none.
  bool checks = false;           ///< eadrl::chk contracts compiled in.
  std::string compiler;          ///< __VERSION__.
};

/// A full perf snapshot: benchmark timings + the resource/span-profile view
/// of the macro workloads that ran in-process.
struct BenchSnapshot {
  int schema_version = kBenchSchemaVersion;
  std::string label;  ///< free-form, e.g. "PR6" or a git describe.
  BenchHost host;
  std::vector<BenchEntry> entries;
  ResourceSample resources;
  AllocStats allocs;
  std::vector<SpanProfileRow> spans;
};

/// Extracts the `benchmarks` array of a google-benchmark
/// `--benchmark_format=json` document. Entry names get `prefix` prepended
/// ("micro/" etc.) so suites cannot collide. Aggregate rows (mean/median/
/// stddev reported with repetitions) are skipped — the comparator wants raw
/// iterations. Errors carry the parse offset or the offending member.
StatusOr<std::vector<BenchEntry>> ParseGoogleBenchmarkJson(
    const std::string& text, const std::string& prefix);

std::string BenchSnapshotToJson(const BenchSnapshot& snapshot);
StatusOr<BenchSnapshot> ParseBenchSnapshot(const std::string& text);
StatusOr<BenchSnapshot> LoadBenchSnapshot(const std::string& path);
Status WriteBenchSnapshot(const BenchSnapshot& snapshot,
                          const std::string& path);

struct BenchCompareOptions {
  /// Relative real-time change treated as noise: a benchmark regresses when
  /// current > baseline * (1 + noise_threshold), improves when
  /// current < baseline * (1 - noise_threshold). Exactly at the boundary is
  /// unchanged. 10% default suits shared CI boxes; tighten locally.
  double noise_threshold = 0.10;
};

/// One matched benchmark's delta. `ratio` is current/baseline real time
/// (>1 = slower).
struct BenchDelta {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 1.0;
};

struct BenchComparison {
  std::vector<BenchDelta> regressions;   ///< sorted worst-first.
  std::vector<BenchDelta> improvements;  ///< sorted best-first.
  std::vector<BenchDelta> unchanged;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;
  /// Matched on both sides but not comparable (zero iterations or zero
  /// time on either side).
  std::vector<std::string> skipped;
  bool host_differs = false;

  bool HasRegressions() const { return !regressions.empty(); }
};

/// Matches entries by name and classifies each pair under the threshold.
/// Contract (eadrl::chk): every matched entry's timings must be finite and
/// non-negative — a doctored or corrupt snapshot fails loudly instead of
/// producing a quiet verdict.
BenchComparison CompareBenchSnapshots(const BenchSnapshot& baseline,
                                      const BenchSnapshot& current,
                                      const BenchCompareOptions& options = {});

/// Human-readable comparison report (regressions first, then improvements,
/// then coverage notes).
std::string FormatComparisonHuman(const BenchComparison& comparison,
                                  const BenchCompareOptions& options = {});

/// Machine-readable comparison: the same classification as one JSON object.
std::string FormatComparisonJson(const BenchComparison& comparison,
                                 const BenchCompareOptions& options = {});

}  // namespace eadrl::obs

#endif  // EADRL_OBS_BENCH_COMPARE_H_
