#ifndef EADRL_OBS_TELEMETRY_H_
#define EADRL_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "chk/thread_annotations.h"

namespace eadrl::obs {

/// One key/value of a telemetry event. Keys are string literals (the event
/// schema is static, see DESIGN.md "Observability"), values are numeric or
/// string.
struct TelemetryField {
  enum class Type { kDouble, kInt, kString };

  TelemetryField(const char* k, double v)
      : key(k), type(Type::kDouble), num(v) {}
  TelemetryField(const char* k, int v)
      : key(k), type(Type::kInt), inum(v) {}
  TelemetryField(const char* k, long v)
      : key(k), type(Type::kInt), inum(v) {}
  TelemetryField(const char* k, long long v)
      : key(k), type(Type::kInt), inum(static_cast<int64_t>(v)) {}
  TelemetryField(const char* k, unsigned v)
      : key(k), type(Type::kInt), inum(v) {}
  TelemetryField(const char* k, unsigned long v)
      : key(k), type(Type::kInt), inum(static_cast<int64_t>(v)) {}
  TelemetryField(const char* k, unsigned long long v)
      : key(k), type(Type::kInt), inum(static_cast<int64_t>(v)) {}
  TelemetryField(const char* k, bool v)
      : key(k), type(Type::kInt), inum(v ? 1 : 0) {}
  TelemetryField(const char* k, std::string v)
      : key(k), type(Type::kString), str(std::move(v)) {}
  TelemetryField(const char* k, const char* v)
      : key(k), type(Type::kString), str(v) {}

  const char* key;
  Type type;
  double num = 0.0;
  int64_t inum = 0;
  std::string str;
};

/// A timestamped structured event.
struct TelemetryEvent {
  const char* kind = "";
  double unix_seconds = 0.0;  ///< wall clock, seconds since the epoch.
  std::vector<TelemetryField> fields;
};

/// Receives events from the instrumented code. Implementations must be
/// thread-safe: training and serving paths emit concurrently.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void Record(const TelemetryEvent& event) = 0;
};

/// Writes one JSON object per line:
///   {"ts":"2026-08-05T12:00:00.123Z","unix":1787...,"kind":"episode",...}
/// Fields are flattened into the top-level object; string values are JSON
/// escaped. Open/write failures are reported once through EADRL_LOG.
class JsonLinesSink : public TelemetrySink {
 public:
  /// Appends to `path` (created if missing).
  explicit JsonLinesSink(const std::string& path);
  /// Writes to a borrowed stream (tests); not owned.
  explicit JsonLinesSink(std::ostream* out);

  void Record(const TelemetryEvent& event) override;

  /// False when the file could not be opened.
  bool ok() const { return out_ != nullptr; }

  /// Flushes buffered lines (file-backed sinks).
  void Flush();

 private:
  std::mutex mu_;
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  bool warned_ = false;
};

/// In-memory sink collecting events for inspection (tests, examples).
class CollectingSink : public TelemetrySink {
 public:
  void Record(const TelemetryEvent& event) override;

  std::vector<TelemetryEvent> TakeEvents();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TelemetryEvent> events_ EADRL_GUARDED_BY(mu_);
};

namespace internal_telemetry {
extern std::atomic<TelemetrySink*> g_sink;
}  // namespace internal_telemetry

/// Installs a process-wide sink (not owned; pass nullptr to disable). The
/// caller must keep the sink alive until it is replaced.
void SetTelemetrySink(TelemetrySink* sink);
TelemetrySink* GetTelemetrySink();

/// True when a sink is installed. This is the hot-path gate: a single
/// relaxed atomic load, so instrumented code pays ~1 ns when telemetry is
/// off (see bench/micro_benchmarks.cc).
inline bool TelemetryEnabled() {
  return internal_telemetry::g_sink.load(std::memory_order_relaxed) !=
         nullptr;
}

/// Stamps the event with the current wall clock and forwards it to the
/// installed sink, if any.
void Emit(const char* kind, std::vector<TelemetryField> fields);

/// True when `kind` is declared in src/obs/events.def — the checked-in
/// registry of every event the library emits. eadrl_lint statically enforces
/// registration for call sites under src/; this runtime view exists for
/// consumers that route on event kinds (dashboards, tests).
bool IsRegisteredEvent(const char* kind);

/// Names of all registered events, in events.def order (count via size()).
const std::vector<const char*>& RegisteredEvents();

/// Emission macro used by the instrumented code: the enabled check happens
/// before the field list is materialized, so a disabled emission costs one
/// atomic load and a predictable branch.
#define EADRL_TELEMETRY(kind, ...)                       \
  do {                                                   \
    if (::eadrl::obs::TelemetryEnabled()) {              \
      ::eadrl::obs::Emit(kind, {__VA_ARGS__});           \
    }                                                    \
  } while (0)

/// RAII ambient label: pushes one key/value onto a thread-local stack that
/// Emit appends to every event recorded while the scope is alive. Scopes
/// nest (inner scopes append after outer ones). par::ThreadPool snapshots
/// the submitter's ambient fields into each task, so a scope follows the
/// work across workers — this is how concurrently interleaved event streams
/// (e.g. `episode`/`ddpg_update` from a parallel suite run) stay
/// attributable: exp::RunDataset opens a {"dataset": <name>} scope.
class TelemetryScope {
 public:
  TelemetryScope(const char* key, std::string value);
  ~TelemetryScope();

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
};

/// Snapshot of the calling thread's ambient fields (outermost first) —
/// captured at task-submission time for cross-thread propagation.
std::vector<TelemetryField> TelemetryContext();

/// Replaces the calling thread's ambient fields for the guard's lifetime and
/// restores the previous ones on destruction — the worker-side half of
/// cross-thread propagation (installed by par::ThreadPool around each task).
class ScopedTelemetryContext {
 public:
  explicit ScopedTelemetryContext(std::vector<TelemetryField> fields);
  ~ScopedTelemetryContext();

  ScopedTelemetryContext(const ScopedTelemetryContext&) = delete;
  ScopedTelemetryContext& operator=(const ScopedTelemetryContext&) = delete;

 private:
  std::vector<TelemetryField> saved_;
};

/// Serializes an event to the JSON-lines shape used by JsonLinesSink
/// (without the trailing newline) — exposed so tests can golden-check it.
std::string EventToJson(const TelemetryEvent& event);

}  // namespace eadrl::obs

#endif  // EADRL_OBS_TELEMETRY_H_
