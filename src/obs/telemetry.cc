#include "obs/telemetry.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace eadrl::obs {

namespace internal_telemetry {
std::atomic<TelemetrySink*> g_sink{nullptr};
}  // namespace internal_telemetry

void SetTelemetrySink(TelemetrySink* sink) {
  internal_telemetry::g_sink.store(sink, std::memory_order_release);
}

TelemetrySink* GetTelemetrySink() {
  return internal_telemetry::g_sink.load(std::memory_order_acquire);
}

namespace {

// Ambient fields of the current thread (outermost scope first). A
// function-local static avoids any thread_local init-order issues.
std::vector<TelemetryField>& MutableContext() {
  thread_local std::vector<TelemetryField> ctx;
  return ctx;
}

}  // namespace

TelemetryScope::TelemetryScope(const char* key, std::string value) {
  MutableContext().emplace_back(key, std::move(value));
}

TelemetryScope::~TelemetryScope() { MutableContext().pop_back(); }

std::vector<TelemetryField> TelemetryContext() { return MutableContext(); }

ScopedTelemetryContext::ScopedTelemetryContext(
    std::vector<TelemetryField> fields)
    : saved_(std::exchange(MutableContext(), std::move(fields))) {}

ScopedTelemetryContext::~ScopedTelemetryContext() {
  MutableContext() = std::move(saved_);
}

const std::vector<const char*>& RegisteredEvents() {
  static const std::vector<const char*> kEvents = {
#define EADRL_EVENT(kind, description) #kind,
#include "obs/events.def"
#undef EADRL_EVENT
  };
  return kEvents;
}

bool IsRegisteredEvent(const char* kind) {
  for (const char* name : RegisteredEvents()) {
    if (std::strcmp(name, kind) == 0) return true;
  }
  return false;
}

void Emit(const char* kind, std::vector<TelemetryField> fields) {
  TelemetrySink* sink = GetTelemetrySink();
  if (sink == nullptr) return;
  TelemetryEvent event;
  event.kind = kind;
  event.unix_seconds = UnixNowSeconds();
  event.fields = std::move(fields);
  const std::vector<TelemetryField>& ctx = MutableContext();
  event.fields.insert(event.fields.end(), ctx.begin(), ctx.end());
  sink->Record(event);
}

std::string EventToJson(const TelemetryEvent& event) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"ts\":\"" << FormatIso8601Utc(event.unix_seconds)
      << "\",\"unix\":" << event.unix_seconds << ",\"kind\":\""
      << JsonEscaped(event.kind) << "\"";
  for (const TelemetryField& f : event.fields) {
    out << ",\"" << JsonEscaped(f.key) << "\":";
    switch (f.type) {
      case TelemetryField::Type::kDouble:
        if (std::isfinite(f.num)) {
          out << f.num;
        } else {
          out << "null";  // JSON has no inf/nan literals.
        }
        break;
      case TelemetryField::Type::kInt:
        out << f.inum;
        break;
      case TelemetryField::Type::kString:
        out << "\"" << JsonEscaped(f.str) << "\"";
        break;
    }
  }
  out << "}";
  return out.str();
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : file_(path, std::ios::app) {
  if (file_) {
    out_ = &file_;
  } else {
    EADRL_LOG(Warning) << "telemetry: cannot open " << path
                       << "; events will be dropped";
  }
}

JsonLinesSink::JsonLinesSink(std::ostream* out) : out_(out) {}

void JsonLinesSink::Record(const TelemetryEvent& event) {
  std::string line = EventToJson(event);
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ == nullptr) return;
  (*out_) << line << "\n";
  if (!*out_ && !warned_) {
    warned_ = true;
    EADRL_LOG(Warning) << "telemetry: write failed; subsequent events may "
                          "be lost";
  }
}

void JsonLinesSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) out_->flush();
}

void CollectingSink::Record(const TelemetryEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<TelemetryEvent> CollectingSink::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TelemetryEvent> out = std::move(events_);
  events_.clear();
  return out;
}

size_t CollectingSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace eadrl::obs
