#ifndef EADRL_OBS_SLO_H_
#define EADRL_OBS_SLO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chk/thread_annotations.h"
#include "obs/window.h"

// SLO tracking with multi-window burn-rate alerting (see DESIGN.md, "Live
// serving observability"). An objective declares a target good fraction
// (e.g. 99% of predicts under 50 ms); the error budget is 1 - target, and
// the burn rate is how many budgets-per-window the current error rate would
// consume (burn 1.0 = exactly on budget, 2.0 = budget gone in half the
// period). An alert fires only when BOTH a long and a short window burn
// above the threshold — the long window keeps one transient blip from
// paging, the short window ends the alert promptly once the bleeding stops
// (the multiwindow discipline from the SRE workbook). Breach/recover edges
// emit the registered `slo_breach` / `slo_recover` telemetry events.

namespace eadrl::obs {

/// One objective. `latency_threshold_seconds > 0` makes it a latency
/// objective (RecordLatency classifies against the threshold); 0 makes it a
/// ratio objective fed via Record(good).
struct SloObjectiveSpec {
  std::string name;
  double latency_threshold_seconds = 0.0;
  /// Required good fraction in [0, 1); budget = 1 - target.
  double target = 0.99;
};

struct SloTrackerOptions {
  std::vector<SloObjectiveSpec> objectives;
  /// Both windows must burn at or above this to breach. 1.0 alerts exactly
  /// on budget; the default pages only at 2x burn.
  double burn_threshold = 2.0;
  /// Long window: the paging signal's memory. Short window: the "is it
  /// still happening" signal. Tests inject fake clocks through these.
  WindowOptions long_window{60, 1.0, nullptr};
  WindowOptions short_window{12, 0.5, nullptr};
  /// Emit slo_breach / slo_recover telemetry on edges (off for tests that
  /// only want the report).
  bool emit_telemetry = true;
};

struct SloObjectiveReport {
  std::string name;
  uint64_t good = 0;  ///< cumulative.
  uint64_t bad = 0;   ///< cumulative.
  /// Cumulative error rate over the allowed budget: 1.0 = the whole-lifetime
  /// budget is spent, > 1.0 = overdrawn.
  double budget_consumed = 0.0;
  double burn_rate_long = 0.0;
  double burn_rate_short = 0.0;
  bool breached = false;
  uint64_t breaches = 0;    ///< false->true edges so far.
  uint64_t recoveries = 0;  ///< true->false edges so far.
};

struct SloReport {
  std::vector<SloObjectiveReport> objectives;

  bool AnyBreached() const {
    for (const SloObjectiveReport& o : objectives) {
      if (o.breached) return true;
    }
    return false;
  }
  uint64_t TotalBreaches() const {
    uint64_t n = 0;
    for (const SloObjectiveReport& o : objectives) n += o.breaches;
    return n;
  }
};

/// Thread-safe: Record/RecordLatency are windowed-counter increments (lock
/// free off the rotation tick); Evaluate may run from any thread — edge
/// transitions are serialized per objective by an atomic exchange, so each
/// breach/recover emits exactly once.
class SloTracker {
 public:
  explicit SloTracker(const SloTrackerOptions& options);

  size_t num_objectives() const { return objectives_.size(); }
  const SloObjectiveSpec& spec(size_t objective) const;

  /// Feeds one outcome to a ratio objective (also legal on latency
  /// objectives when the caller classified the outcome itself).
  void Record(size_t objective, bool good);
  /// Record with a caller-provided reading of the objectives' window clock
  /// (NowNs()) — see WindowedCounter::IncAt for the batch-amortization
  /// contract.
  void RecordAt(uint64_t now_ns, size_t objective, bool good);

  /// Classifies `seconds` against the objective's latency threshold.
  void RecordLatency(size_t objective, double seconds);
  void RecordLatencyAt(uint64_t now_ns, size_t objective, double seconds);

  /// Current reading of the long-window clock (the long and short windows
  /// share WindowOptions::now_ns, so one reading serves both).
  uint64_t NowNs() const;

  /// Re-evaluates burn rates and fires breach/recover edges. Call
  /// periodically (the serving layer calls it per drained batch; the
  /// exporter calls it per export tick).
  void Evaluate();

  SloReport Report() const;

  /// JSON value (an array of objective objects) for exporter sections.
  std::string ToJsonValue() const;
  /// Prometheus exposition lines (eadrl_slo_* gauges/counters).
  void AppendPrometheus(std::string* out) const;

 private:
  struct Objective {
    explicit Objective(const SloTrackerOptions& options);

    SloObjectiveSpec spec;
    WindowedCounter good_long;
    WindowedCounter bad_long;
    WindowedCounter good_short;
    WindowedCounter bad_short;
    std::atomic<uint64_t> good_total{0};
    std::atomic<uint64_t> bad_total{0};
    std::atomic<bool> breached{false};
    std::atomic<uint64_t> breaches{0};
    std::atomic<uint64_t> recoveries{0};
  };

  static double BurnRate(double good, double bad, double target);
  SloObjectiveReport ReportFor(const Objective& objective) const;

  SloTrackerOptions opt_;
  /// Const after construction (objectives are fixed at build time); the
  /// per-objective state inside is atomic / internally synchronized.
  std::vector<std::unique_ptr<Objective>> objectives_ EADRL_UNGUARDED;
};

}  // namespace eadrl::obs

#endif  // EADRL_OBS_SLO_H_
