#ifndef EADRL_OBS_TRACE_H_
#define EADRL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "common/status.h"
#include "obs/telemetry.h"

namespace eadrl::obs {

class TraceBuffer;

/// A completed span, as recorded into a TraceBuffer. Timestamps are
/// microseconds on std::chrono::steady_clock, relative to a process-wide
/// trace epoch (the first span ever armed), which is exactly the shape the
/// Chrome trace-event `ts`/`dur` fields want.
struct FinishedSpan {
  const char* name = "";
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 for a trace root.
  uint32_t tid = 0;        ///< small per-thread id (see CurrentTraceTid).
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<TelemetryField> attrs;
};

namespace internal_trace {
extern std::atomic<TraceBuffer*> g_buffer;
}  // namespace internal_trace

/// Lock-sharded in-memory span sink. `Record` takes one shard mutex (shards
/// are selected by span id, so concurrent finishing threads rarely collide);
/// the total capacity is a hard cap — spans past it are counted in
/// `dropped()` rather than growing without bound.
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 20;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(FinishedSpan span);

  /// All recorded spans, sorted by start time (span id breaks ties).
  std::vector<FinishedSpan> Snapshot() const;

  size_t size() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Serializes the buffer to Chrome trace-event JSON
  /// (`{"traceEvents":[...]}`, `ph:"X"` duration events plus thread-name
  /// metadata) — loadable in Perfetto / chrome://tracing. See DESIGN.md,
  /// "Tracing & profiling" for the field mapping.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path` (truncating).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    /// obs_trace_shard is the LAST rank in lock_order.def: spans finish (and
    /// record) from under arbitrary domain locks, so nothing may be
    /// acquired while a shard is held.
    mutable chk::OrderedMutex shard_mu{EADRL_LOCK_RANK(obs_trace_shard),
                                       "obs::TraceBuffer::Shard::shard_mu"};
    std::vector<FinishedSpan> spans EADRL_GUARDED_BY(shard_mu);
  };

  size_t per_shard_capacity_;
  std::atomic<uint64_t> dropped_{0};
  std::unique_ptr<Shard[]> shards_;
};

/// Installs a process-wide trace buffer (not owned; nullptr disables
/// tracing). Disabling blocks briefly until every in-flight `Record` has
/// drained, so the caller may destroy the buffer immediately afterwards even
/// while pool workers are finishing their last spans.
void SetTraceBuffer(TraceBuffer* buffer);
TraceBuffer* GetTraceBuffer();

/// True when a trace buffer is installed. This is the hot-path gate: a
/// single relaxed atomic load, so an un-traced Span construction costs ~1 ns
/// (same contract as TelemetryEnabled; see bench/trace_bench.cc).
inline bool TracingEnabled() {
  return internal_trace::g_buffer.load(std::memory_order_relaxed) != nullptr;
}

/// The (trace id, span id) pair a task inherits across threads.
struct TraceParent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// The calling thread's current span identity: the innermost live Span if
/// any, else the remote parent installed by ScopedTraceParent, else zeros.
/// par::ThreadPool::Submit snapshots this into each task — the tracing
/// analogue of TelemetryContext().
TraceParent CurrentTraceParent();

/// Worker-side half of cross-thread propagation: for the guard's lifetime
/// the thread's span stack is masked (new spans parent to `parent`, the
/// submitter's span, instead of whatever the thread was doing) and restored
/// on destruction. When the guard masks a live span — a waiter running
/// queued tasks via TryRunOneTask — the masked span is credited with the
/// guard's lifetime as child time, so helping never inflates its self-time.
class ScopedTraceParent {
 public:
  explicit ScopedTraceParent(TraceParent parent);
  ~ScopedTraceParent();

  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

 private:
  class Span* saved_active_;
  TraceParent saved_remote_;
  std::chrono::steady_clock::time_point start_;
  uint64_t start_alloc_count_ = 0;
  uint64_t start_alloc_bytes_ = 0;
  bool timing_ = false;
};

/// RAII trace span. Construction arms the span when tracing is enabled
/// (one relaxed atomic load otherwise) and pushes it on the thread-local
/// active-span stack; destruction pops it, records the finished span into
/// the installed TraceBuffer and feeds the span profiler
/// (`eadrl_span_seconds{span=...}` histogram + self-time counter in the
/// default MetricRegistry).
///
/// Armed spans also attribute scratch allocations (obs::CountAlloc): the
/// span snapshots its thread's allocation counters at construction and, on
/// finish, credits itself with the delta minus its children's share — so
/// `alloc_count`/`alloc_bytes` trace attrs and the per-span
/// `eadrl_span_alloc_{count,bytes}_total` counters are *self* allocations,
/// mirroring self-time. Allocations a task makes on a pool worker land on
/// the span the worker opens, not the cross-thread submitter (thread-local
/// counters never cross threads).
///
/// `name` must be a string literal (it is stored by pointer and, under src/,
/// must be registered in src/obs/spans.def — enforced by eadrl_lint's
/// span-registry rule). Spans are strictly thread-confined and must be
/// destroyed in LIFO order on the thread that created them; hand-off to a
/// worker goes through TraceParent snapshots, never through the Span object.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when tracing was enabled at construction. Use to gate attribute
  /// computation: `if (span.armed()) span.SetAttr("k", v);`.
  bool armed() const { return armed_; }

  /// Attaches a key/value attribute (exported into the trace event's
  /// `args`). No-op when the span is not armed, so values passed through
  /// here should be cheap or guarded by armed().
  template <typename V>
  void SetAttr(const char* key, V&& value) {
    if (armed_) attrs_.emplace_back(key, std::forward<V>(value));
  }

  const char* name() const { return name_; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }
  uint64_t parent_id() const { return parent_id_; }

 private:
  friend class ScopedTraceParent;

  void Finish();

  const char* name_;
  bool armed_ = false;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  Span* parent_span_ = nullptr;  ///< same-thread parent, never cross-thread.
  std::chrono::steady_clock::time_point start_{};
  double child_seconds_ = 0.0;
  // Allocation attribution (same single-threaded bookkeeping as
  // child_seconds_): thread counters at arm time, plus what children claimed.
  uint64_t start_alloc_count_ = 0;
  uint64_t start_alloc_bytes_ = 0;
  uint64_t child_alloc_count_ = 0;
  uint64_t child_alloc_bytes_ = 0;
  std::vector<TelemetryField> attrs_;
};

/// One row of the span profiler's aggregate view: everything the profiler
/// learned about a span name since process start (or the last reset).
struct SpanProfileRow {
  std::string name;
  uint64_t count = 0;           ///< finished spans.
  double total_seconds = 0.0;   ///< wall time, children included.
  double self_seconds = 0.0;    ///< wall time minus child spans.
  uint64_t alloc_count = 0;     ///< self scratch allocations.
  uint64_t alloc_bytes = 0;
};

/// Snapshot of the profiler aggregates for every span name seen so far,
/// sorted by self_seconds descending.
std::vector<SpanProfileRow> SpanProfileSnapshot();

/// Human-readable top-`top_n` profile table (self-time ranked, with
/// allocation columns) — the `--profile-report` output.
std::string FormatSpanProfileReport(size_t top_n = 16);

/// Drops the profiler aggregates (tests and repeated bench workloads).
void ResetSpanProfileForTest();

/// Small dense id of the calling thread (assigned on first use, stable for
/// the thread's lifetime) — the `tid` of every span it records.
uint32_t CurrentTraceTid();

/// Names the calling thread in trace exports (`thread_name` metadata;
/// pool workers register as "worker-N", the CLI main thread as "main").
void SetCurrentThreadTraceName(const std::string& name);

/// True when `name` is declared in src/obs/spans.def — the checked-in
/// registry of every span src/ opens. The static mirror of this check is
/// eadrl_lint's span-registry rule; this runtime view serves the trace
/// validator (tools/eadrl_trace_check.cc) and tests.
bool IsRegisteredSpan(const char* name);

/// Names of all registered spans, in spans.def order.
const std::vector<const char*>& RegisteredSpans();

}  // namespace eadrl::obs

#endif  // EADRL_OBS_TRACE_H_
