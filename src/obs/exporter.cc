#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eadrl::obs {
namespace {

double WallUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MetricsExporter::MetricsExporter(const Options& options) : opt_(options) {
  EADRL_CHECK(!opt_.path.empty());
  EADRL_CHECK_GT(opt_.interval_seconds, 0.0);
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::AddSection(Section section) {
  EADRL_CHECK(!started_);
  EADRL_CHECK(!section.name.empty());
  sections_.push_back(std::move(section));
}

void MetricsExporter::SetOnExport(std::function<void()> hook) {
  EADRL_CHECK(!started_);
  on_export_ = std::move(hook);
}

void MetricsExporter::Start() {
  EADRL_CHECK(!started_);
  started_ = true;
  {
    std::lock_guard<chk::OrderedMutex> lock(exporter_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void MetricsExporter::Stop() {
  if (!started_) return;
  {
    std::lock_guard<chk::OrderedMutex> lock(exporter_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  started_ = false;
  // Final flush so a short-lived process still leaves a complete snapshot.
  ExportOnce();
}

void MetricsExporter::RunLoop() {
  const auto interval = std::chrono::duration<double>(opt_.interval_seconds);
  std::unique_lock<chk::OrderedMutex> lock(exporter_mu_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, interval,
                          [this]() EADRL_REQUIRES(exporter_mu_) {
                            return stop_requested_;
                          })) {
      break;
    }
    // Render and write with the lock dropped: an export reads windowed
    // metrics (obs_family/obs_window) and must not serialize against Stop.
    lock.unlock();
    ExportOnce();
    lock.lock();
  }
}

MetricsExporter::Format MetricsExporter::FormatForPath(
    const std::string& path) {
  constexpr const char kJsonExt[] = ".json";
  constexpr size_t kJsonExtLen = sizeof(kJsonExt) - 1;
  if (path.size() >= kJsonExtLen &&
      path.compare(path.size() - kJsonExtLen, kJsonExtLen, kJsonExt) == 0) {
    return Format::kJson;
  }
  return Format::kPrometheus;
}

MetricsExporter::Format MetricsExporter::ResolvedFormat(Format format) const {
  return format == Format::kAuto ? FormatForPath(opt_.path) : format;
}

std::string MetricsExporter::RenderSnapshot(Format format) const {
  format = ResolvedFormat(format);
  if (format == Format::kJson) {
    std::ostringstream out;
    out << "{\"schema\":\"eadrl-metrics-v1\",\"unix_seconds\":"
        << WallUnixSeconds()
        << ",\"sequence\":" << exports_.load(std::memory_order_relaxed)
        << ",\"metrics\":"
        << (opt_.registry != nullptr ? opt_.registry->ToJson() : "{}");
    out << ",\"sections\":{";
    bool first = true;
    for (const Section& section : sections_) {
      if (!section.json) continue;
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscaped(section.name) << "\":" << section.json();
    }
    out << "}}\n";
    return out.str();
  }
  std::string out;
  if (opt_.registry != nullptr) out += opt_.registry->ToPrometheus();
  for (const Section& section : sections_) {
    if (section.prom) section.prom(&out);
  }
  return out;
}

bool MetricsExporter::ExportOnce() {
  Span span("metrics_export");
  if (on_export_) on_export_();
  const std::string doc = RenderSnapshot(Format::kAuto);
  // Write-then-rename keeps the published path atomic: rename(2) replaces
  // the destination in one step on POSIX, so readers never observe a
  // partially written snapshot.
  const std::string tmp = opt_.path + ".tmp";
  bool ok = false;
  {
    std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
    if (file) {
      file << doc;
      file.flush();
      ok = file.good();
    }
  }
  if (ok) ok = std::rename(tmp.c_str(), opt_.path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    if (failures_.fetch_add(1, std::memory_order_relaxed) == 0) {
      EADRL_LOG(Warning) << "metrics export to " << opt_.path
                         << " failed (further failures counted silently)";
    }
    if (span.armed()) span.SetAttr("failed", true);
    return false;
  }
  const uint64_t seq = exports_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (span.armed()) {
    span.SetAttr("sequence", seq);
    span.SetAttr("bytes", static_cast<uint64_t>(doc.size()));
  }
  return true;
}

}  // namespace eadrl::obs
