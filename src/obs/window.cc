#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace eadrl::obs {
namespace {

constexpr size_t kSlotSampleCap = HistogramSnapshot::kExactQuantileSamples;

// Same CAS-add/min/max helpers as metrics.cc (std::atomic<double>::fetch_add
// is C++20 and not universally lock-free).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t TickNanos(double tick_seconds) {
  EADRL_CHECK_GT(tick_seconds, 0.0);
  const double ns = tick_seconds * 1e9;
  return ns < 1.0 ? 1 : static_cast<uint64_t>(std::llround(ns));
}

double EffectiveWindowSeconds(uint64_t cur_epoch, uint64_t first_epoch,
                              size_t buckets, uint64_t tick_ns) {
  const uint64_t elapsed = cur_epoch - first_epoch + 1;
  const uint64_t resident =
      std::min<uint64_t>(elapsed, static_cast<uint64_t>(buckets));
  return static_cast<double>(resident) * static_cast<double>(tick_ns) * 1e-9;
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// WindowedCounter.
// ---------------------------------------------------------------------------

WindowedCounter::WindowedCounter(const WindowOptions& options)
    : opt_(options), tick_ns_(TickNanos(options.tick_seconds)) {
  EADRL_CHECK_GT(opt_.buckets, 0u);
  ring_ = std::vector<Slot>(opt_.buckets);
  first_epoch_ = EpochNow();
  cur_epoch_.store(first_epoch_, std::memory_order_relaxed);
}

uint64_t WindowedCounter::EpochNow() const {
  const uint64_t now = opt_.now_ns != nullptr ? opt_.now_ns() : MonotonicNowNs();
  return now / tick_ns_;
}

void WindowedCounter::RotateTo(uint64_t epoch) const {
  uint64_t cur = cur_epoch_.load(std::memory_order_relaxed);
  if (epoch <= cur) return;
  const size_t n = ring_.size();
  if (epoch - cur >= n) {
    // The whole window slid past: every slot is stale.
    for (Slot& slot : ring_) {
      slot.value.store(0.0, std::memory_order_relaxed);
    }
  } else {
    while (cur < epoch) {
      ++cur;
      ring_[cur % n].value.store(0.0, std::memory_order_relaxed);
    }
  }
  cur_epoch_.store(epoch, std::memory_order_release);
}

void WindowedCounter::Inc(double delta) { IncAt(NowNs(), delta); }

void WindowedCounter::IncAt(uint64_t now_ns, double delta) {
  AtomicAdd(&cumulative_, delta);
  const uint64_t epoch = now_ns / tick_ns_;
  if (epoch != cur_epoch_.load(std::memory_order_acquire)) {
    std::lock_guard<chk::OrderedMutex> lock(window_mu_);
    RotateTo(epoch);
  }
  AtomicAdd(&ring_[epoch % ring_.size()].value, delta);
}

WindowedCounterSnapshot WindowedCounter::Snapshot() const {
  WindowedCounterSnapshot snap;
  std::lock_guard<chk::OrderedMutex> lock(window_mu_);
  // Rotating here expires idle sub-windows even when no observation has
  // arrived since they went stale — a snapshot after a quiet spell reads 0,
  // not the last burst.
  RotateTo(EpochNow());
  for (const Slot& slot : ring_) {
    snap.total += slot.value.load(std::memory_order_relaxed);
  }
  snap.cumulative = cumulative_.load(std::memory_order_relaxed);
  snap.window_seconds =
      EffectiveWindowSeconds(cur_epoch_.load(std::memory_order_relaxed),
                             first_epoch_, ring_.size(), tick_ns_);
  return snap;
}

// ---------------------------------------------------------------------------
// WindowedHistogram.
// ---------------------------------------------------------------------------

WindowedHistogram::WindowedHistogram(const WindowOptions& options,
                                     std::vector<double> bounds)
    : opt_(options),
      bounds_(bounds.empty() ? Histogram::DefaultLatencyBounds()
                             : std::move(bounds)),
      tick_ns_(TickNanos(options.tick_seconds)) {
  EADRL_CHECK_GT(opt_.buckets, 0u);
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EADRL_CHECK_GT(bounds_[i], bounds_[i - 1]);
  }
  ring_ = std::vector<Slot>(opt_.buckets);
  for (Slot& slot : ring_) {
    slot.counts = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    slot.samples = std::make_unique<std::atomic<double>[]>(kSlotSampleCap);
    slot.sample_ready =
        std::make_unique<std::atomic<uint8_t>[]>(kSlotSampleCap);
    ResetSlot(&slot);
  }
  first_epoch_ = EpochNow();
  cur_epoch_.store(first_epoch_, std::memory_order_relaxed);
}

uint64_t WindowedHistogram::EpochNow() const {
  const uint64_t now = opt_.now_ns != nullptr ? opt_.now_ns() : MonotonicNowNs();
  return now / tick_ns_;
}

void WindowedHistogram::ResetSlot(Slot* slot) const {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    slot->counts[i].store(0, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < kSlotSampleCap; ++s) {
    slot->sample_ready[s].store(0, std::memory_order_relaxed);
  }
  slot->sample_slots.store(0, std::memory_order_relaxed);
  slot->sum.store(0.0, std::memory_order_relaxed);
  slot->min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  slot->max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  slot->count.store(0, std::memory_order_relaxed);
}

void WindowedHistogram::RotateTo(uint64_t epoch) const {
  uint64_t cur = cur_epoch_.load(std::memory_order_relaxed);
  if (epoch <= cur) return;
  const size_t n = ring_.size();
  if (epoch - cur >= n) {
    for (Slot& slot : ring_) ResetSlot(&slot);
  } else {
    while (cur < epoch) {
      ++cur;
      ResetSlot(&ring_[cur % n]);
    }
  }
  cur_epoch_.store(epoch, std::memory_order_release);
}

void WindowedHistogram::Observe(double value) { ObserveAt(NowNs(), value); }

void WindowedHistogram::ObserveAt(uint64_t now_ns, double value) {
  cumulative_count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = now_ns / tick_ns_;
  if (epoch != cur_epoch_.load(std::memory_order_acquire)) {
    std::lock_guard<chk::OrderedMutex> lock(window_mu_);
    RotateTo(epoch);
  }
  Slot& slot = ring_[epoch % ring_.size()];
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  slot.counts[idx].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&slot.sum, value);
  AtomicMin(&slot.min, value);
  AtomicMax(&slot.max, value);
  uint32_t s = slot.sample_slots.load(std::memory_order_relaxed);
  if (s < kSlotSampleCap) {
    s = slot.sample_slots.fetch_add(1, std::memory_order_relaxed);
    if (s < kSlotSampleCap) {
      slot.samples[s].store(value, std::memory_order_relaxed);
      slot.sample_ready[s].store(1, std::memory_order_release);
    }
  }
  slot.count.fetch_add(1, std::memory_order_release);
}

WindowedHistogramSnapshot WindowedHistogram::Snapshot() const {
  WindowedHistogramSnapshot snap;
  snap.values.bounds = bounds_;
  snap.values.bounds.push_back(std::numeric_limits<double>::infinity());
  snap.values.counts.assign(bounds_.size() + 1, 0);

  std::lock_guard<chk::OrderedMutex> lock(window_mu_);
  RotateTo(EpochNow());

  std::vector<uint64_t> slot_counts(ring_.size(), 0);
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < ring_.size(); ++k) {
    const Slot& slot = ring_[k];
    const uint64_t c = slot.count.load(std::memory_order_acquire);
    if (c == 0) continue;
    slot_counts[k] = c;
    snap.values.count += c;
    snap.values.sum += slot.sum.load(std::memory_order_relaxed);
    mn = std::min(mn, slot.min.load(std::memory_order_relaxed));
    mx = std::max(mx, slot.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snap.values.counts[i] += slot.counts[i].load(std::memory_order_relaxed);
    }
  }
  if (snap.values.count > 0) {
    snap.values.min = mn;
    snap.values.max = mx;
  }

  // Exact raw samples when the windowed population fits the budget and every
  // slot's stored samples cover its count (always true once concurrent
  // observers quiesce; a mid-observation race just degrades this snapshot to
  // bucket interpolation).
  if (snap.values.count > 0 &&
      snap.values.count <= HistogramSnapshot::kExactQuantileSamples) {
    std::vector<double> samples;
    samples.reserve(snap.values.count);
    bool complete = true;
    for (size_t k = 0; k < ring_.size() && complete; ++k) {
      uint64_t need = slot_counts[k];
      if (need == 0) continue;
      if (need > kSlotSampleCap) {
        complete = false;
        break;
      }
      uint64_t got = 0;
      for (uint32_t s = 0; s < kSlotSampleCap && got < need; ++s) {
        if (ring_[k].sample_ready[s].load(std::memory_order_acquire) == 0) {
          break;
        }
        samples.push_back(ring_[k].samples[s].load(std::memory_order_relaxed));
        ++got;
      }
      if (got != need) complete = false;
    }
    if (complete) snap.values.samples = std::move(samples);
  }

  snap.window_seconds =
      EffectiveWindowSeconds(cur_epoch_.load(std::memory_order_relaxed),
                             first_epoch_, ring_.size(), tick_ns_);
  return snap;
}

}  // namespace eadrl::obs
