#ifndef EADRL_OBS_METRICS_H_
#define EADRL_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "chk/thread_annotations.h"

namespace eadrl::obs {

/// Monotonically increasing counter. Lock-free; safe to Inc from any thread.
class Counter {
 public:
  void Inc(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can go up and down (last-write-wins). Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// tracks one quantile of an unbounded stream in O(1) memory without storing
/// observations. Complements Histogram's fixed buckets when the value range
/// is unknown up front. Not thread-safe; guard externally or use one per
/// thread.
class StreamingQuantile {
 public:
  explicit StreamingQuantile(double q);

  void Observe(double value);

  /// Current estimate; exact while fewer than five observations were seen.
  double Value() const;

  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  // P-squared marker state: heights, positions and desired positions.
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

/// Immutable view of a histogram's state at one point in time. Derived
/// statistics (mean, quantiles) are computed on the snapshot itself, so one
/// Snapshot() call yields a mutually consistent set of numbers — exporters
/// must not go back to the live histogram per statistic (each trip re-reads
/// racing atomics and costs another full bucket copy).
struct HistogramSnapshot {
  /// Raw-sample budget for the exact-quantile path: populations at or below
  /// this size keep every observation, so Quantile needs no bucket
  /// interpolation (which drifts badly on small windowed samples — a p99
  /// over 40 requests should be an order statistic, not a bucket midpoint).
  static constexpr size_t kExactQuantileSamples = 256;

  std::vector<double> bounds;    ///< upper bucket bounds (last = +inf).
  std::vector<uint64_t> counts;  ///< per-bucket counts, bounds.size() long.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0.
  double max = 0.0;
  /// Every raw observation when count <= kExactQuantileSamples and the
  /// source could vouch for completeness (quiesced single-writer snapshots
  /// always can; a snapshot racing concurrent observers may fall back to
  /// empty). Unsorted; empty means "bucket interpolation only".
  std::vector<double> samples;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Quantile estimate, q in [0, 1] (clamped). Returns 0 when empty. When
  /// `samples` holds the complete population (samples.size() == count) the
  /// result is the exact linearly-interpolated order statistic; otherwise
  /// linear interpolation inside the bucket holding the requested rank, with
  /// the first/overflow buckets clamped to min/max so the open-ended bucket
  /// cannot produce infinities.
  double Quantile(double q) const;

  /// Accumulates `other` into this snapshot. Both must share one bucket
  /// layout (identical bounds) unless one side is default-constructed empty.
  /// Counts, sums and min/max merge exactly; `samples` stays exact while the
  /// merged population fits kExactQuantileSamples and both sides were exact,
  /// else it empties. Associative and commutative on every derived statistic
  /// (sample order differs across merge orders, but Quantile sorts).
  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram. `Observe` is lock-free (atomic per-bucket counts;
/// CAS loops for sum/min/max) so concurrent observation from the serving hot
/// path is safe. Quantiles are estimated by linear interpolation inside the
/// bucket containing the requested rank.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bucket bounds; a final +inf
  /// bucket is appended automatically.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Convenience for one-off queries: Snapshot().Quantile(q). Callers that
  /// need several statistics should take one Snapshot and query that.
  double Quantile(double q) const;

  /// `count` bounds starting at `start`, each `factor` times the previous —
  /// the usual latency-histogram shape.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);
  static std::vector<double> LinearBounds(double start, double width,
                                          size_t count);
  /// 1 us .. ~16 s in powers of 2: the default for wall-time histograms.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;  ///< finite upper bounds; overflow is implicit.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +-inf sentinels make min/max updates pure CAS races (no first-observation
  // seeding, which could overwrite a concurrent observer's tighter value);
  // Snapshot maps the sentinels back to 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  // First kExactQuantileSamples raw observations, for the exact-small
  // quantile path: observers claim a slot via sample_slots_ and flip the
  // slot's ready flag after the value store, so Snapshot never reads an
  // unwritten slot.
  std::unique_ptr<std::atomic<double>[]> samples_;
  std::unique_ptr<std::atomic<uint8_t>[]> sample_ready_;
  std::atomic<uint32_t> sample_slots_{0};
};

/// Key/value labels distinguishing metrics within a family, e.g.
/// {{"method", "EA-DRL"}}. Order-insensitive (sorted internally).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Sliding-window metrics (src/obs/window.h). Forward-declared so the
// registry can own them without metrics.h -> window.h -> metrics.h cycling;
// metrics.cc includes the full definitions.
struct WindowOptions;
class WindowedCounter;
class WindowedHistogram;

/// Thread-safe registry of named metric families. Getters create on first
/// use and return stable pointers that remain valid for the registry's
/// lifetime, so hot paths can look a metric up once and cache the pointer.
/// A family's type and (for histograms) bucket layout are fixed by the first
/// registration; a later lookup with a conflicting type aborts.
class MetricRegistry {
 public:
  /// Both out of line: Entry holds unique_ptrs to the forward-declared
  /// windowed metrics, so map teardown (destructor, and the constructor's
  /// unwind path) must live where they are complete.
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is used only when the (name, labels) pair is first created;
  /// empty bounds mean DefaultLatencyBounds().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {},
                          const Labels& labels = {});
  /// Sliding-window variants, rendered with windowed rate/quantile series by
  /// the exporters below. `options` (and `bounds`) apply only when the
  /// (name, labels) pair is first created — first registration wins, like
  /// histogram bounds.
  WindowedCounter* GetWindowedCounter(const std::string& name,
                                      const WindowOptions& options,
                                      const Labels& labels = {});
  WindowedHistogram* GetWindowedHistogram(const std::string& name,
                                          const WindowOptions& options,
                                          std::vector<double> bounds = {},
                                          const Labels& labels = {});

  /// Serializes every metric to a JSON object keyed by family name; each
  /// family maps the label signature ("k=v,k2=v2" or "" for no labels) to
  /// the metric state. Names, signatures and values are JSON-escaped. See
  /// DESIGN.md, "Observability".
  std::string ToJson() const;

  /// Flat CSV: name,labels,field,value — one row per scalar statistic.
  /// Fields containing commas, quotes or newlines are RFC-4180 quoted.
  std::string ToCsv() const;

  /// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
  /// family, `name{labels} value` series, histograms expanded into
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`. Metric
  /// names are sanitized to [a-zA-Z0-9_:]; label values are escaped per the
  /// exposition format.
  std::string ToPrometheus() const;

  /// Drops every registered metric (invalidates previously returned
  /// pointers); tests only.
  void Reset();

  /// Process-wide registry used by the built-in instrumentation.
  static MetricRegistry& Default();

 private:
  enum class Kind {
    kCounter,
    kGauge,
    kHistogram,
    kWindowedCounter,
    kWindowedHistogram,
  };

  struct Entry {
    Kind kind;
    Labels labels;  ///< sorted; kept so ToPrometheus can render pairs.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<WindowedCounter> windowed_counter;
    std::unique_ptr<WindowedHistogram> windowed_histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      Kind kind, std::vector<double> bounds,
                      const WindowOptions* window);

  mutable std::mutex mu_;
  // family name -> label signature -> metric.
  std::map<std::string, std::map<std::string, Entry>> families_
      EADRL_GUARDED_BY(mu_);
};

/// Wall-time scope timer on std::chrono::steady_clock. On Stop (or
/// destruction, whichever comes first) the elapsed seconds are written to
/// the optional `out` pointer and observed into the optional histogram —
/// one code path for both MethodRun::runtime_seconds-style results and
/// registry latency metrics.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram = nullptr, double* out = nullptr)
      : start_(std::chrono::steady_clock::now()),
        histogram_(histogram),
        out_(out) {}

  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction without stopping the timer.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Records and returns the elapsed seconds. Idempotent; later calls
  /// return the time recorded by the first.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ = ElapsedSeconds();
      if (out_ != nullptr) *out_ = elapsed_;
      if (histogram_ != nullptr) histogram_->Observe(elapsed_);
    }
    return elapsed_;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  Histogram* histogram_;
  double* out_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace eadrl::obs

#endif  // EADRL_OBS_METRICS_H_
