#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/window.h"

namespace eadrl::obs {
namespace {

// Atomic CAS-add for doubles (std::atomic<double>::fetch_add is C++20 but
// not universally lock-free; the loop compiles to the same code where it is).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

std::string LabelSignature(const Labels& sorted) {
  std::string sig;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) sig += ",";
    sig += sorted[i].first + "=" + sorted[i].second;
  }
  return sig;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; anything else is
// mapped to '_' so an arbitrary registry name still exposes cleanly.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out.empty() ? "_" : out;
}

// Label values in the exposition format escape backslash, quote and newline.
std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += PrometheusName(labels[i].first) + "=\"" +
           PrometheusLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string PrometheusNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendJsonNumber(std::ostringstream* out, double v) {
  if (std::isfinite(v)) {
    *out << v;
  } else {
    // JSON has no inf/nan literals; null keeps the document parseable.
    *out << "null";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingQuantile (P-squared, Jain & Chlamtac 1985).
// ---------------------------------------------------------------------------

StreamingQuantile::StreamingQuantile(double q) : q_(q) {
  EADRL_CHECK(q > 0.0 && q < 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void StreamingQuantile::Observe(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  // Locate the cell containing the observation and update extreme markers.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions with a
  // piecewise-parabolic (hence P-squared) height interpolation.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    double right_gap = positions_[i + 1] - positions_[i];
    double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      double sign = d >= 1.0 ? 1.0 : -1.0;
      double np = positions_[i] + sign;
      double parabolic =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) / (-left_gap));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Fall back to linear interpolation toward the chosen neighbour.
        int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double StreamingQuantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest-rank on the sorted prefix).
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    size_t idx = static_cast<size_t>(q_ * static_cast<double>(count_));
    return sorted[std::min(idx, count_ - 1)];
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  EADRL_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EADRL_CHECK_GT(bounds_[i], bounds_[i - 1]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
  samples_ = std::make_unique<std::atomic<double>[]>(
      HistogramSnapshot::kExactQuantileSamples);
  sample_ready_ = std::make_unique<std::atomic<uint8_t>[]>(
      HistogramSnapshot::kExactQuantileSamples);
  for (size_t i = 0; i < HistogramSnapshot::kExactQuantileSamples; ++i) {
    sample_ready_[i] = 0;
  }
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds (Prometheus "le" semantics): bucket i counts
  // values in (bounds[i-1], bounds[i]].
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // Update min/max before publishing the new count: a reader that sees
  // count >= 1 then also sees finite (non-sentinel) min/max.
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  // Raw-sample capture for the exact-small quantile path. The cheap relaxed
  // pre-check keeps the fetch_add off the hot path once the budget is spent
  // (so the counter cannot creep toward wraparound either).
  uint32_t slot = sample_slots_.load(std::memory_order_relaxed);
  if (slot < HistogramSnapshot::kExactQuantileSamples) {
    slot = sample_slots_.fetch_add(1, std::memory_order_relaxed);
    if (slot < HistogramSnapshot::kExactQuantileSamples) {
      samples_[slot].store(value, std::memory_order_relaxed);
      sample_ready_[slot].store(1, std::memory_order_release);
    }
  }
  count_.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bounds.push_back(std::numeric_limits<double>::infinity());
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_acquire);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count == 0) {
    // Empty histogram: report 0/0 rather than the +-inf sentinels.
    snap.min = 0.0;
    snap.max = 0.0;
  } else {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  if (snap.count > 0 &&
      snap.count <= HistogramSnapshot::kExactQuantileSamples) {
    // Collect the raw population for the exact quantile path. Slots are
    // consumed in claim order and only past their ready flag, so a snapshot
    // racing an observer mid-store just falls short and falls back to bucket
    // interpolation (samples cleared) instead of reading garbage.
    snap.samples.reserve(snap.count);
    for (uint32_t s = 0; s < HistogramSnapshot::kExactQuantileSamples &&
                         snap.samples.size() < snap.count;
         ++s) {
      if (sample_ready_[s].load(std::memory_order_acquire) == 0) break;
      snap.samples.push_back(samples_[s].load(std::memory_order_relaxed));
    }
    if (snap.samples.size() != snap.count) snap.samples.clear();
  }
  return snap;
}

double Histogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (!samples.empty() && samples.size() == count) {
    // Exact path: the complete population is at hand, so return the
    // linearly-interpolated order statistic (the sorted-vector reference
    // tests/window_test.cc checks parity against).
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  // bounds' last element is the +inf overflow bound; that bucket clamps to
  // the observed max instead.
  const size_t overflow = counts.size() - 1;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double lower = i == 0 ? min : bounds[i - 1];
    double upper = i < overflow ? bounds[i] : max;
    lower = std::max(lower, min);
    upper = std::min(upper, max);
    if (upper < lower) upper = lower;
    uint64_t next = seen + counts[i];
    if (rank <= static_cast<double>(next)) {
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lower + frac * (upper - lower);
    }
    seen = next;
  }
  return max;
}

double Histogram::Quantile(double q) const { return Snapshot().Quantile(q); }

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.counts.empty() && other.count == 0) return;
  if (counts.empty() && count == 0) {
    *this = other;
    return;
  }
  EADRL_CHECK(bounds == other.bounds);
  // Exactness decided before the totals mutate.
  const uint64_t merged_count = count + other.count;
  const bool exact = merged_count <= kExactQuantileSamples &&
                     samples.size() == count &&
                     other.samples.size() == other.count;
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else if (other.count > 0) {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count = merged_count;
  if (exact) {
    samples.insert(samples.end(), other.samples.begin(), other.samples.end());
  } else {
    samples.clear();
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  EADRL_CHECK_GT(start, 0.0);
  EADRL_CHECK_GT(factor, 1.0);
  EADRL_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = v;
    v *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double width,
                                            size_t count) {
  EADRL_CHECK_GT(width, 0.0);
  EADRL_CHECK_GT(count, 0u);
  std::vector<double> bounds(count);
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = start + width * static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return ExponentialBounds(1e-6, 2.0, 24);
}

// ---------------------------------------------------------------------------
// MetricRegistry.
// ---------------------------------------------------------------------------

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Entry* MetricRegistry::FindOrCreate(
    const std::string& name, const Labels& labels, Kind kind,
    std::vector<double> bounds, const WindowOptions* window) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string sig = LabelSignature(sorted);
  std::lock_guard<std::mutex> lock(mu_);
  auto& family = families_[name];
  if (!family.empty()) {
    // The family's kind is fixed by its first member.
    EADRL_CHECK(family.begin()->second.kind == kind);
  }
  auto it = family.find(sig);
  if (it != family.end()) return &it->second;

  Entry entry;
  entry.kind = kind;
  entry.labels = std::move(sorted);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          bounds.empty() ? Histogram::DefaultLatencyBounds()
                         : std::move(bounds));
      break;
    case Kind::kWindowedCounter:
      EADRL_CHECK(window != nullptr);
      entry.windowed_counter = std::make_unique<WindowedCounter>(*window);
      break;
    case Kind::kWindowedHistogram:
      EADRL_CHECK(window != nullptr);
      entry.windowed_histogram =
          std::make_unique<WindowedHistogram>(*window, std::move(bounds));
      break;
  }
  return &family.emplace(sig, std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter, {}, nullptr)
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge, {}, nullptr)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kHistogram, std::move(bounds),
                      nullptr)
      ->histogram.get();
}

WindowedCounter* MetricRegistry::GetWindowedCounter(
    const std::string& name, const WindowOptions& options,
    const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kWindowedCounter, {}, &options)
      ->windowed_counter.get();
}

WindowedHistogram* MetricRegistry::GetWindowedHistogram(
    const std::string& name, const WindowOptions& options,
    std::vector<double> bounds, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kWindowedHistogram,
                      std::move(bounds), &options)
      ->windowed_histogram.get();
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out << ",";
    first_family = false;
    out << "\"" << JsonEscaped(name) << "\":{";
    bool first_metric = true;
    for (const auto& [sig, entry] : family) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\"" << JsonEscaped(sig) << "\":";
      switch (entry.kind) {
        case Kind::kCounter:
          out << "{\"type\":\"counter\",\"value\":";
          AppendJsonNumber(&out, entry.counter->Value());
          out << "}";
          break;
        case Kind::kGauge:
          out << "{\"type\":\"gauge\",\"value\":";
          AppendJsonNumber(&out, entry.gauge->Value());
          out << "}";
          break;
        case Kind::kHistogram: {
          HistogramSnapshot snap = entry.histogram->Snapshot();
          out << "{\"type\":\"histogram\",\"count\":" << snap.count
              << ",\"sum\":";
          AppendJsonNumber(&out, snap.sum);
          out << ",\"min\":";
          AppendJsonNumber(&out, snap.min);
          out << ",\"max\":";
          AppendJsonNumber(&out, snap.max);
          out << ",\"mean\":";
          AppendJsonNumber(&out, snap.Mean());
          out << ",\"p50\":";
          AppendJsonNumber(&out, snap.Quantile(0.5));
          out << ",\"p90\":";
          AppendJsonNumber(&out, snap.Quantile(0.9));
          out << ",\"p99\":";
          AppendJsonNumber(&out, snap.Quantile(0.99));
          out << "}";
          break;
        }
        case Kind::kWindowedCounter: {
          const WindowedCounterSnapshot snap =
              entry.windowed_counter->Snapshot();
          out << "{\"type\":\"windowed_counter\",\"cumulative\":";
          AppendJsonNumber(&out, snap.cumulative);
          out << ",\"window_total\":";
          AppendJsonNumber(&out, snap.total);
          out << ",\"window_seconds\":";
          AppendJsonNumber(&out, snap.window_seconds);
          out << ",\"rate\":";
          AppendJsonNumber(&out, snap.Rate());
          out << "}";
          break;
        }
        case Kind::kWindowedHistogram: {
          const WindowedHistogramSnapshot snap =
              entry.windowed_histogram->Snapshot();
          out << "{\"type\":\"windowed_histogram\",\"cumulative_count\":"
              << entry.windowed_histogram->CumulativeCount()
              << ",\"window_count\":" << snap.values.count
              << ",\"window_seconds\":";
          AppendJsonNumber(&out, snap.window_seconds);
          out << ",\"rate\":";
          AppendJsonNumber(&out, snap.Rate());
          out << ",\"mean\":";
          AppendJsonNumber(&out, snap.values.Mean());
          out << ",\"min\":";
          AppendJsonNumber(&out, snap.values.min);
          out << ",\"max\":";
          AppendJsonNumber(&out, snap.values.max);
          out << ",\"p50\":";
          AppendJsonNumber(&out, snap.values.Quantile(0.5));
          out << ",\"p95\":";
          AppendJsonNumber(&out, snap.values.Quantile(0.95));
          out << ",\"p99\":";
          AppendJsonNumber(&out, snap.values.Quantile(0.99));
          out << "}";
          break;
        }
      }
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

std::string MetricRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "name,labels,field,value\n";
  for (const auto& [name, family] : families_) {
    for (const auto& [sig, entry] : family) {
      auto row = [&](const char* field, double value) {
        out << CsvField(name) << "," << CsvField(sig) << "," << field << ","
            << value << "\n";
      };
      switch (entry.kind) {
        case Kind::kCounter:
          row("value", entry.counter->Value());
          break;
        case Kind::kGauge:
          row("value", entry.gauge->Value());
          break;
        case Kind::kHistogram: {
          HistogramSnapshot snap = entry.histogram->Snapshot();
          row("count", static_cast<double>(snap.count));
          row("sum", snap.sum);
          row("min", snap.min);
          row("max", snap.max);
          row("mean", snap.Mean());
          row("p50", snap.Quantile(0.5));
          row("p90", snap.Quantile(0.9));
          row("p99", snap.Quantile(0.99));
          break;
        }
        case Kind::kWindowedCounter: {
          const WindowedCounterSnapshot snap =
              entry.windowed_counter->Snapshot();
          row("cumulative", snap.cumulative);
          row("window_total", snap.total);
          row("window_seconds", snap.window_seconds);
          row("rate", snap.Rate());
          break;
        }
        case Kind::kWindowedHistogram: {
          const WindowedHistogramSnapshot snap =
              entry.windowed_histogram->Snapshot();
          row("cumulative_count",
              static_cast<double>(entry.windowed_histogram->CumulativeCount()));
          row("window_count", static_cast<double>(snap.values.count));
          row("window_seconds", snap.window_seconds);
          row("rate", snap.Rate());
          row("mean", snap.values.Mean());
          row("p50", snap.values.Quantile(0.5));
          row("p95", snap.values.Quantile(0.95));
          row("p99", snap.values.Quantile(0.99));
          break;
        }
      }
    }
  }
  return out.str();
}

std::string MetricRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (family.empty()) continue;
    const std::string prom = PrometheusName(name);
    const Kind family_kind = family.begin()->second.kind;
    if (family_kind == Kind::kWindowedCounter) {
      // Windowed counters expose the exact cumulative total as a counter
      // plus a windowed-rate gauge; the window span rides along as a label
      // so dashboards know what "rate" is over.
      std::vector<std::pair<const Entry*, WindowedCounterSnapshot>> snaps;
      for (const auto& [sig, entry] : family) {
        static_cast<void>(sig);
        snaps.emplace_back(&entry, entry.windowed_counter->Snapshot());
      }
      out += "# TYPE " + prom + "_total counter\n";
      for (const auto& [entry, snap] : snaps) {
        out += prom + "_total" + PrometheusLabels(entry->labels) + " " +
               PrometheusNumber(snap.cumulative) + "\n";
      }
      out += "# TYPE " + prom + "_rate gauge\n";
      for (const auto& [entry, snap] : snaps) {
        Labels with_window = entry->labels;
        with_window.emplace_back("window",
                                 PrometheusNumber(snap.window_seconds));
        out += prom + "_rate" + PrometheusLabels(with_window) + " " +
               PrometheusNumber(snap.Rate()) + "\n";
      }
      continue;
    }
    if (family_kind == Kind::kWindowedHistogram) {
      // Windowed histograms expose quantile-gauge series (the summary-style
      // shape) over the window, plus windowed count and rate gauges.
      std::vector<std::pair<const Entry*, WindowedHistogramSnapshot>> snaps;
      for (const auto& [sig, entry] : family) {
        static_cast<void>(sig);
        snaps.emplace_back(&entry, entry.windowed_histogram->Snapshot());
      }
      out += "# TYPE " + prom + " gauge\n";
      for (const auto& [entry, snap] : snaps) {
        for (const double q : {0.5, 0.95, 0.99}) {
          Labels with_q = entry->labels;
          with_q.emplace_back("quantile", PrometheusNumber(q));
          with_q.emplace_back("window", PrometheusNumber(snap.window_seconds));
          out += prom + PrometheusLabels(with_q) + " " +
                 PrometheusNumber(snap.values.Quantile(q)) + "\n";
        }
      }
      out += "# TYPE " + prom + "_window_count gauge\n";
      for (const auto& [entry, snap] : snaps) {
        out += prom + "_window_count" + PrometheusLabels(entry->labels) + " " +
               std::to_string(snap.values.count) + "\n";
      }
      out += "# TYPE " + prom + "_rate gauge\n";
      for (const auto& [entry, snap] : snaps) {
        out += prom + "_rate" + PrometheusLabels(entry->labels) + " " +
               PrometheusNumber(snap.Rate()) + "\n";
      }
      continue;
    }
    const char* type = "untyped";
    switch (family_kind) {
      case Kind::kCounter:
        type = "counter";
        break;
      case Kind::kGauge:
        type = "gauge";
        break;
      case Kind::kHistogram:
        type = "histogram";
        break;
      case Kind::kWindowedCounter:
      case Kind::kWindowedHistogram:
        break;  // handled above.
    }
    out += "# TYPE " + prom + " " + type + "\n";
    for (const auto& [sig, entry] : family) {
      static_cast<void>(sig);
      switch (entry.kind) {
        case Kind::kCounter:
          out += prom + PrometheusLabels(entry.labels) + " " +
                 PrometheusNumber(entry.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += prom + PrometheusLabels(entry.labels) + " " +
                 PrometheusNumber(entry.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = entry.histogram->Snapshot();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            Labels with_le = entry.labels;
            with_le.emplace_back("le", PrometheusNumber(snap.bounds[i]));
            out += prom + "_bucket" + PrometheusLabels(with_le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += prom + "_sum" + PrometheusLabels(entry.labels) + " " +
                 PrometheusNumber(snap.sum) + "\n";
          out += prom + "_count" + PrometheusLabels(entry.labels) + " " +
                 std::to_string(snap.count) + "\n";
          break;
        }
        case Kind::kWindowedCounter:
        case Kind::kWindowedHistogram:
          break;  // rendered by the dedicated blocks above.
      }
    }
  }
  return out;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry =
      new MetricRegistry();  // NOLINT(naked-new): leaked on purpose so
                             // late-exiting threads can still record
  return *registry;
}

}  // namespace eadrl::obs
