#ifndef EADRL_OBS_EXPORTER_H_
#define EADRL_OBS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"

// Periodic metrics snapshot writer (see DESIGN.md, "Live serving
// observability"). A MetricsExporter owns one background thread that, every
// interval, renders a snapshot (registry metrics plus caller-provided
// sections) and writes it atomically: the document goes to `<path>.tmp` and
// is renamed over `<path>`, so a scraper reading the file never sees a torn
// write — it sees the previous complete snapshot or the new one, nothing in
// between. Format follows the path extension by default: `.json` gets a
// versioned JSON document ({"schema":"eadrl-metrics-v1",...}), anything else
// the Prometheus text exposition.

namespace eadrl::obs {

class MetricRegistry;

class MetricsExporter {
 public:
  enum class Format { kAuto, kPrometheus, kJson };

  /// One named block of caller-owned metrics. The registry covers
  /// process-global families; sections carry state that lives inside a
  /// component (a ForecastService's windowed stats, an SloTracker, a labeled
  /// family) — those stay owned by their component and are rendered through
  /// these callbacks at export time. `json` returns one JSON value (object
  /// or array); `prom` appends exposition lines. Either may be null; a null
  /// renderer skips the section in that format.
  struct Section {
    std::string name;
    std::function<std::string()> json;
    std::function<void(std::string*)> prom;
  };

  struct Options {
    std::string path;
    Format format = Format::kAuto;
    double interval_seconds = 10.0;
    /// Rendered under "metrics" (JSON) / first in the exposition; nullptr
    /// exports sections only.
    MetricRegistry* registry = nullptr;
  };

  explicit MetricsExporter(const Options& options);
  /// Stops the thread if still running.
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Not thread-safe: call before Start().
  void AddSection(Section section);

  /// Hook run at the start of every export (and ExportOnce), before
  /// rendering — the place to refresh derived state, e.g. SloTracker::
  /// Evaluate. Not thread-safe: call before Start().
  void SetOnExport(std::function<void()> hook);

  /// Launches the background thread. One export is written immediately on
  /// the first tick after each interval; Stop flushes a final export.
  void Start();

  /// Stops and joins the thread, writing one last snapshot so the file
  /// reflects final totals. Idempotent.
  void Stop();

  /// Renders and writes one snapshot now (usable without Start, e.g. tests
  /// and one-shot CLI dumps). Returns false when the write or rename failed
  /// (also counted in failures()).
  bool ExportOnce();

  uint64_t exports() const {
    return exports_.load(std::memory_order_relaxed);
  }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// kJson for paths ending in ".json", else kPrometheus.
  static Format FormatForPath(const std::string& path);

  /// The document ExportOnce would write, without touching the filesystem.
  /// kAuto resolves through the configured path.
  std::string RenderSnapshot(Format format) const;

 private:
  void RunLoop();
  Format ResolvedFormat(Format format) const;

  Options opt_;
  /// Frozen before Start() (AddSection checks), then read-only from the
  /// exporter thread.
  std::vector<Section> sections_ EADRL_UNGUARDED;
  std::function<void()> on_export_;
  std::atomic<uint64_t> exports_{0};
  std::atomic<uint64_t> failures_{0};
  mutable chk::OrderedMutex exporter_mu_{
      EADRL_LOCK_RANK(obs_exporter), "obs::MetricsExporter::exporter_mu_"};
  /// Guards only the stop/wakeup handshake; exports render unlocked.
  std::condition_variable_any wake_cv_;
  bool stop_requested_ EADRL_GUARDED_BY(exporter_mu_) = false;
  bool started_ EADRL_UNGUARDED = false;  ///< main-thread Start/Stop only.
  std::thread thread_ EADRL_UNGUARDED;
};

}  // namespace eadrl::obs

#endif  // EADRL_OBS_EXPORTER_H_
