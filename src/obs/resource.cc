#include "obs/resource.h"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <mutex>
#include <vector>

#include "chk/thread_annotations.h"

#include "obs/metrics.h"

namespace eadrl::obs {

namespace internal_resource {
namespace {

// Retired-thread totals plus the roster of live per-thread counters.
// TotalAllocStats = retired + sum(live). The roster is a leaked singleton so
// threads exiting after main teardown can still deregister safely.
struct AllocRoster {
  std::mutex mu;
  std::vector<ThreadAllocCounters*> live EADRL_GUARDED_BY(mu);
  std::atomic<uint64_t> retired_count{0};
  std::atomic<uint64_t> retired_bytes{0};
};

AllocRoster& Roster() {
  static AllocRoster* roster =
      new AllocRoster();  // NOLINT(naked-new): leaked on purpose so
                          // late-exiting threads can still deregister
  return *roster;
}

}  // namespace

ThreadAllocCounters::ThreadAllocCounters() {
  AllocRoster& roster = Roster();
  std::lock_guard<std::mutex> lock(roster.mu);
  roster.live.push_back(this);
}

ThreadAllocCounters::~ThreadAllocCounters() {
  AllocRoster& roster = Roster();
  std::lock_guard<std::mutex> lock(roster.mu);
  roster.retired_count.fetch_add(count.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
  roster.retired_bytes.fetch_add(bytes.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
  roster.live.erase(std::find(roster.live.begin(), roster.live.end(), this));
}

ThreadAllocCounters& TlsAllocCounters() {
  thread_local ThreadAllocCounters counters;
  return counters;
}

}  // namespace internal_resource

ResourceSample SampleResources() {
  ResourceSample sample;
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux.
    sample.peak_rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024u;
    sample.minor_faults = static_cast<uint64_t>(usage.ru_minflt);
    sample.major_faults = static_cast<uint64_t>(usage.ru_majflt);
    sample.voluntary_ctx_switches = static_cast<uint64_t>(usage.ru_nvcsw);
    sample.involuntary_ctx_switches = static_cast<uint64_t>(usage.ru_nivcsw);
    sample.user_cpu_seconds =
        static_cast<double>(usage.ru_utime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    sample.system_cpu_seconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
  // statm field 2 is resident pages; absent on non-Linux, which leaves
  // current_rss_bytes at 0 (documented).
  std::ifstream statm("/proc/self/statm");
  if (statm) {
    uint64_t total_pages = 0;
    uint64_t resident_pages = 0;
    if (statm >> total_pages >> resident_pages) {
      const long page = sysconf(_SC_PAGESIZE);
      sample.current_rss_bytes =
          resident_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
    }
  }
  return sample;
}

AllocStats ThreadAllocStats() {
  const internal_resource::ThreadAllocCounters& c =
      internal_resource::TlsAllocCounters();
  return AllocStats{c.count.load(std::memory_order_relaxed),
                    c.bytes.load(std::memory_order_relaxed)};
}

AllocStats TotalAllocStats() {
  internal_resource::AllocRoster& roster = internal_resource::Roster();
  std::lock_guard<std::mutex> lock(roster.mu);
  AllocStats total{roster.retired_count.load(std::memory_order_relaxed),
                   roster.retired_bytes.load(std::memory_order_relaxed)};
  for (const internal_resource::ThreadAllocCounters* c : roster.live) {
    total.count += c->count.load(std::memory_order_relaxed);
    total.bytes += c->bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void UpdateResourceMetrics(MetricRegistry* registry) {
  MetricRegistry& reg =
      registry != nullptr ? *registry : MetricRegistry::Default();
  const ResourceSample sample = SampleResources();
  reg.GetGauge("eadrl_peak_rss_bytes")
      ->Set(static_cast<double>(sample.peak_rss_bytes));
  reg.GetGauge("eadrl_rss_bytes")
      ->Set(static_cast<double>(sample.current_rss_bytes));
  reg.GetGauge("eadrl_page_faults", {{"kind", "minor"}})
      ->Set(static_cast<double>(sample.minor_faults));
  reg.GetGauge("eadrl_page_faults", {{"kind", "major"}})
      ->Set(static_cast<double>(sample.major_faults));
  reg.GetGauge("eadrl_ctx_switches", {{"kind", "voluntary"}})
      ->Set(static_cast<double>(sample.voluntary_ctx_switches));
  reg.GetGauge("eadrl_ctx_switches", {{"kind", "involuntary"}})
      ->Set(static_cast<double>(sample.involuntary_ctx_switches));
  reg.GetGauge("eadrl_cpu_seconds", {{"mode", "user"}})
      ->Set(sample.user_cpu_seconds);
  reg.GetGauge("eadrl_cpu_seconds", {{"mode", "system"}})
      ->Set(sample.system_cpu_seconds);

  // The alloc counters are cumulative across all threads and monotone by
  // construction, so a last-write-wins gauge set to the running total keeps
  // repeated publishes (and publishes into multiple registries) correct
  // without delta bookkeeping.
  const AllocStats total = TotalAllocStats();
  reg.GetGauge("eadrl_alloc_count_total")
      ->Set(static_cast<double>(total.count));
  reg.GetGauge("eadrl_alloc_bytes_total")
      ->Set(static_cast<double>(total.bytes));
}

}  // namespace eadrl::obs
