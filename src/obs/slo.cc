#include "obs/slo.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/telemetry.h"

namespace eadrl::obs {
namespace {

// A target of exactly 1.0 leaves zero budget; clamping keeps the burn-rate
// division finite (any error then burns astronomically, which is the right
// answer for "nothing may ever fail").
constexpr double kMinBudget = 1e-9;

void AppendJsonNumberTo(std::ostringstream* out, double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    *out << static_cast<int64_t>(v);
  } else {
    *out << v;
  }
}

}  // namespace

SloTracker::Objective::Objective(const SloTrackerOptions& options)
    : good_long(options.long_window),
      bad_long(options.long_window),
      good_short(options.short_window),
      bad_short(options.short_window) {}

SloTracker::SloTracker(const SloTrackerOptions& options) : opt_(options) {
  EADRL_CHECK(!opt_.objectives.empty());
  EADRL_CHECK_GT(opt_.burn_threshold, 0.0);
  objectives_.reserve(opt_.objectives.size());
  for (const SloObjectiveSpec& spec : opt_.objectives) {
    EADRL_CHECK(spec.target >= 0.0 && spec.target <= 1.0);
    auto objective = std::make_unique<Objective>(opt_);
    objective->spec = spec;
    objectives_.push_back(std::move(objective));
  }
}

const SloObjectiveSpec& SloTracker::spec(size_t objective) const {
  EADRL_CHECK_LT(objective, objectives_.size());
  return objectives_[objective]->spec;
}

uint64_t SloTracker::NowNs() const {
  return opt_.long_window.now_ns != nullptr ? opt_.long_window.now_ns()
                                            : MonotonicNowNs();
}

void SloTracker::Record(size_t objective, bool good) {
  RecordAt(NowNs(), objective, good);
}

void SloTracker::RecordAt(uint64_t now_ns, size_t objective, bool good) {
  EADRL_CHECK_LT(objective, objectives_.size());
  Objective& o = *objectives_[objective];
  if (good) {
    o.good_total.fetch_add(1, std::memory_order_relaxed);
    o.good_long.IncAt(now_ns);
    o.good_short.IncAt(now_ns);
  } else {
    o.bad_total.fetch_add(1, std::memory_order_relaxed);
    o.bad_long.IncAt(now_ns);
    o.bad_short.IncAt(now_ns);
  }
}

void SloTracker::RecordLatency(size_t objective, double seconds) {
  RecordLatencyAt(NowNs(), objective, seconds);
}

void SloTracker::RecordLatencyAt(uint64_t now_ns, size_t objective,
                                 double seconds) {
  EADRL_CHECK_LT(objective, objectives_.size());
  const double threshold = objectives_[objective]->spec.latency_threshold_seconds;
  EADRL_CHECK_GT(threshold, 0.0);
  RecordAt(now_ns, objective, seconds <= threshold);
}

double SloTracker::BurnRate(double good, double bad, double target) {
  const double total = good + bad;
  if (total <= 0.0) return 0.0;
  const double error_rate = bad / total;
  const double budget = std::max(1.0 - target, kMinBudget);
  return error_rate / budget;
}

void SloTracker::Evaluate() {
  for (std::unique_ptr<Objective>& objective : objectives_) {
    Objective& o = *objective;
    const WindowedCounterSnapshot good_long = o.good_long.Snapshot();
    const WindowedCounterSnapshot bad_long = o.bad_long.Snapshot();
    const WindowedCounterSnapshot good_short = o.good_short.Snapshot();
    const WindowedCounterSnapshot bad_short = o.bad_short.Snapshot();
    const double burn_long =
        BurnRate(good_long.total, bad_long.total, o.spec.target);
    const double burn_short =
        BurnRate(good_short.total, bad_short.total, o.spec.target);
    const bool breach = bad_long.total > 0.0 &&
                        burn_long >= opt_.burn_threshold &&
                        burn_short >= opt_.burn_threshold;
    if (breach) {
      // The exchange serializes racing evaluators: exactly one sees the
      // false->true edge and emits.
      if (!o.breached.exchange(true, std::memory_order_acq_rel)) {
        o.breaches.fetch_add(1, std::memory_order_relaxed);
        if (opt_.emit_telemetry) {
          EADRL_TELEMETRY("slo_breach", {"objective", o.spec.name},
                          {"burn_rate_long", burn_long},
                          {"burn_rate_short", burn_short},
                          {"target", o.spec.target},
                          {"window_seconds", good_long.window_seconds});
        }
      }
    } else {
      if (o.breached.exchange(false, std::memory_order_acq_rel)) {
        o.recoveries.fetch_add(1, std::memory_order_relaxed);
        if (opt_.emit_telemetry) {
          EADRL_TELEMETRY("slo_recover", {"objective", o.spec.name},
                          {"burn_rate_long", burn_long},
                          {"burn_rate_short", burn_short},
                          {"target", o.spec.target});
        }
      }
    }
  }
}

SloObjectiveReport SloTracker::ReportFor(const Objective& o) const {
  SloObjectiveReport report;
  report.name = o.spec.name;
  report.good = o.good_total.load(std::memory_order_relaxed);
  report.bad = o.bad_total.load(std::memory_order_relaxed);
  const double total = static_cast<double>(report.good + report.bad);
  const double budget = std::max(1.0 - o.spec.target, kMinBudget);
  report.budget_consumed =
      total > 0.0 ? (static_cast<double>(report.bad) / total) / budget : 0.0;
  report.burn_rate_long = BurnRate(o.good_long.Snapshot().total,
                                   o.bad_long.Snapshot().total, o.spec.target);
  report.burn_rate_short =
      BurnRate(o.good_short.Snapshot().total, o.bad_short.Snapshot().total,
               o.spec.target);
  report.breached = o.breached.load(std::memory_order_relaxed);
  report.breaches = o.breaches.load(std::memory_order_relaxed);
  report.recoveries = o.recoveries.load(std::memory_order_relaxed);
  return report;
}

SloReport SloTracker::Report() const {
  SloReport report;
  report.objectives.reserve(objectives_.size());
  for (const std::unique_ptr<Objective>& objective : objectives_) {
    report.objectives.push_back(ReportFor(*objective));
  }
  return report;
}

std::string SloTracker::ToJsonValue() const {
  const SloReport report = Report();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < report.objectives.size(); ++i) {
    const SloObjectiveReport& o = report.objectives[i];
    if (i > 0) out << ",";
    out << "{\"objective\":\"" << JsonEscaped(o.name) << "\",\"good\":"
        << o.good << ",\"bad\":" << o.bad << ",\"budget_consumed\":";
    AppendJsonNumberTo(&out, o.budget_consumed);
    out << ",\"burn_rate_long\":";
    AppendJsonNumberTo(&out, o.burn_rate_long);
    out << ",\"burn_rate_short\":";
    AppendJsonNumberTo(&out, o.burn_rate_short);
    out << ",\"breached\":" << (o.breached ? "true" : "false")
        << ",\"breaches\":" << o.breaches << ",\"recoveries\":" << o.recoveries
        << "}";
  }
  out << "]";
  return out.str();
}

void SloTracker::AppendPrometheus(std::string* out) const {
  const SloReport report = Report();
  auto gauge = [out](const std::string& metric, const std::string& objective,
                     double value) {
    std::ostringstream line;
    line << metric << "{objective=\"" << objective << "\"} " << value << "\n";
    *out += line.str();
  };
  *out += "# TYPE eadrl_slo_burn_rate gauge\n";
  for (const SloObjectiveReport& o : report.objectives) {
    *out += "eadrl_slo_burn_rate{objective=\"" + o.name +
            "\",window=\"long\"} " + std::to_string(o.burn_rate_long) + "\n";
    *out += "eadrl_slo_burn_rate{objective=\"" + o.name +
            "\",window=\"short\"} " + std::to_string(o.burn_rate_short) + "\n";
  }
  *out += "# TYPE eadrl_slo_budget_consumed gauge\n";
  for (const SloObjectiveReport& o : report.objectives) {
    gauge("eadrl_slo_budget_consumed", o.name, o.budget_consumed);
  }
  *out += "# TYPE eadrl_slo_breached gauge\n";
  for (const SloObjectiveReport& o : report.objectives) {
    gauge("eadrl_slo_breached", o.name, o.breached ? 1.0 : 0.0);
  }
  *out += "# TYPE eadrl_slo_breaches_total counter\n";
  for (const SloObjectiveReport& o : report.objectives) {
    gauge("eadrl_slo_breaches_total", o.name,
          static_cast<double>(o.breaches));
  }
}

}  // namespace eadrl::obs
