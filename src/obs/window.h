#ifndef EADRL_OBS_WINDOW_H_
#define EADRL_OBS_WINDOW_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "obs/metrics.h"

// Sliding-window metrics (see DESIGN.md, "Live serving observability").
// Cumulative counters answer "since process start"; operations questions are
// about the last N seconds — current QPS, windowed p99, shed rate right now.
// WindowedCounter / WindowedHistogram keep a ring of `buckets` sub-window
// slots, each covering one `tick_seconds` span of the monotonic clock; an
// observation lands in the slot for its epoch (monotonic time / tick) with a
// single atomic add, and a slot is zeroed for reuse when the window slides
// past it. Snapshots merge the resident slots into one consistent view with
// a windowed rate and (for histograms) quantiles.
//
// Concurrency model: the hot path is lock-free — observers read the current
// epoch, atomically add into the matching slot, and only the observer that
// first lands in a NEW epoch takes `window_mu_` to rotate. An observation
// racing a rotation can land in the slot that was just retired or recycled;
// the skew is bounded by one observation per rotation and the cumulative
// totals are exact (they bypass the ring), which is the right trade for a
// metrics plane — see bench/window_bench.cc for the per-observation cost.

namespace eadrl::obs {

/// Monotonic nanoseconds (std::chrono::steady_clock). The default clock for
/// windowed metrics; tests inject a fake via WindowOptions::now_ns.
uint64_t MonotonicNowNs();

/// Sub-window layout + clock for a windowed metric. The covered span is
/// buckets * tick_seconds (default 10 x 1 s); resolution is one tick.
struct WindowOptions {
  size_t buckets = 10;
  double tick_seconds = 1.0;
  /// Clock injection seam: nullptr = MonotonicNowNs. A plain function
  /// pointer (not std::function) so the hot path pays no indirection-heavy
  /// call and the options stay trivially copyable.
  uint64_t (*now_ns)() = nullptr;
};

/// One WindowedCounter view: the windowed total, the exact cumulative total
/// and the effective window span (shorter than the configured span until one
/// full window has elapsed, so early rates are not diluted).
struct WindowedCounterSnapshot {
  double total = 0.0;       ///< sum over the resident sub-windows.
  double cumulative = 0.0;  ///< exact since-construction total.
  double window_seconds = 0.0;

  double Rate() const { return window_seconds > 0.0 ? total / window_seconds : 0.0; }
};

/// Sliding-window counter. Inc is lock-free off the rotation path; Snapshot
/// rotates (so stale sub-windows expire even without traffic) and sums.
class WindowedCounter {
 public:
  explicit WindowedCounter(const WindowOptions& options);

  void Inc(double delta = 1.0);
  /// Inc with a caller-provided reading of THIS window's clock (NowNs()) —
  /// batch completion paths read the clock once and fan it out to every
  /// windowed metric sharing the clock instead of paying one clock read per
  /// observation (see ForecastService::ProcessBatch).
  void IncAt(uint64_t now_ns, double delta = 1.0);

  /// Current reading of the window's clock (injected or monotonic).
  uint64_t NowNs() const {
    return opt_.now_ns != nullptr ? opt_.now_ns() : MonotonicNowNs();
  }

  WindowedCounterSnapshot Snapshot() const;

  /// Exact since-construction total (does not depend on the window).
  double Cumulative() const {
    return cumulative_.load(std::memory_order_relaxed);
  }

  const WindowOptions& options() const { return opt_; }

 private:
  struct Slot {
    std::atomic<double> value{0.0};
  };

  uint64_t EpochNow() const;
  /// Advances the ring to `epoch`, zeroing every slot the window slid past.
  /// Caller holds window_mu_.
  void RotateTo(uint64_t epoch) const EADRL_REQUIRES(window_mu_);

  WindowOptions opt_;
  uint64_t tick_ns_;
  uint64_t first_epoch_;

  /// Serializes rotation only — never held while observing.
  mutable chk::OrderedMutex window_mu_{EADRL_LOCK_RANK(obs_window),
                                       "obs::WindowedCounter::window_mu_"};
  /// Slot values are atomics written lock-free by observers; rotation
  /// (zeroing) is serialized by window_mu_.
  mutable std::vector<Slot> ring_ EADRL_UNGUARDED;
  mutable std::atomic<uint64_t> cur_epoch_{0};
  std::atomic<double> cumulative_{0.0};
};

/// One WindowedHistogram view: a mergeable HistogramSnapshot over the
/// resident sub-windows (its `samples` are populated when the windowed count
/// fits the exact-quantile budget) plus the effective window span.
struct WindowedHistogramSnapshot {
  HistogramSnapshot values;
  double window_seconds = 0.0;

  double Rate() const {
    return window_seconds > 0.0
               ? static_cast<double>(values.count) / window_seconds
               : 0.0;
  }
};

/// Sliding-window histogram: per-sub-window atomic bucket counts plus up to
/// HistogramSnapshot::kExactQuantileSamples raw samples per slot, so small
/// windowed populations get exact quantiles (satellite of the serving p99
/// path; see HistogramSnapshot::Quantile).
class WindowedHistogram {
 public:
  /// `bounds` as Histogram: strictly increasing finite upper bounds, +inf
  /// overflow implicit; empty = Histogram::DefaultLatencyBounds().
  WindowedHistogram(const WindowOptions& options, std::vector<double> bounds);

  void Observe(double value);
  /// Observe with a caller-provided reading of this window's clock — see
  /// WindowedCounter::IncAt for the batch-amortization contract.
  void ObserveAt(uint64_t now_ns, double value);

  /// Current reading of the window's clock (injected or monotonic).
  uint64_t NowNs() const {
    return opt_.now_ns != nullptr ? opt_.now_ns() : MonotonicNowNs();
  }

  WindowedHistogramSnapshot Snapshot() const;

  /// Exact since-construction observation count.
  uint64_t CumulativeCount() const {
    return cumulative_count_.load(std::memory_order_relaxed);
  }

  const WindowOptions& options() const { return opt_; }

 private:
  struct Slot {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  ///< bounds.size() + 1.
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< +inf sentinel, set in ctor/rotation.
    std::atomic<double> max{0.0};  ///< -inf sentinel.
    /// Raw-sample slots claimed (may exceed the stored capacity; stores are
    /// dropped past it). sample_ready[i] flips to 1 after samples[i] is
    /// written, so a reader never consumes an unwritten slot.
    std::atomic<uint32_t> sample_slots{0};
    std::unique_ptr<std::atomic<double>[]> samples;
    std::unique_ptr<std::atomic<uint8_t>[]> sample_ready;
  };

  uint64_t EpochNow() const;
  void ResetSlot(Slot* slot) const;
  void RotateTo(uint64_t epoch) const EADRL_REQUIRES(window_mu_);

  WindowOptions opt_;
  /// Const after construction.
  std::vector<double> bounds_ EADRL_UNGUARDED;
  uint64_t tick_ns_;
  uint64_t first_epoch_;

  mutable chk::OrderedMutex window_mu_{EADRL_LOCK_RANK(obs_window),
                                       "obs::WindowedHistogram::window_mu_"};
  /// Same discipline as WindowedCounter::ring_: lock-free atomic writes,
  /// rotation under window_mu_.
  mutable std::vector<Slot> ring_ EADRL_UNGUARDED;
  mutable std::atomic<uint64_t> cur_epoch_{0};
  std::atomic<uint64_t> cumulative_count_{0};
};

}  // namespace eadrl::obs

#endif  // EADRL_OBS_WINDOW_H_
