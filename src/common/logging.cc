#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/string_util.h"

namespace eadrl {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink*> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Default destination: "[ISO-8601 LEVEL file:line] message" to stderr.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    // Built with append rather than one operator+ chain: GCC 12's -Wrestrict
    // mis-fires on the inlined char_traits::copy of the chained form.
    std::string line = "[";
    line += FormatIso8601Utc(record.unix_seconds);
    line += ' ';
    line += LevelName(record.level);
    line += ' ';
    line += record.file;
    line += ':';
    line += std::to_string(record.line);
    line += "] ";
    line += record.message;
    line += '\n';
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
  }
};

StderrLogSink& DefaultSink() {
  static StderrLogSink* sink =
      new StderrLogSink();  // NOLINT(naked-new): leaked on purpose so logging
                            // works during static destruction
  return *sink;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* GetLogSink() { return g_sink.load(std::memory_order_acquire); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.unix_seconds = UnixNowSeconds();
  record.message = stream_.str();
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  (sink != nullptr ? sink : &DefaultSink())->Write(record);
}

}  // namespace internal_logging
}  // namespace eadrl
