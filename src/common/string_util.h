#ifndef EADRL_COMMON_STRING_UTIL_H_
#define EADRL_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace eadrl {

/// Concatenates the stream representation of the arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  static_cast<void>((out << ... << args));
  return out.str();
}

/// Joins elements with a separator using their stream representation.
template <typename T>
std::string StrJoin(const std::vector<T>& v, const std::string& sep) {
  std::ostringstream out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << sep;
    out << v[i];
  }
  return out.str();
}

/// Formats a double with fixed precision (for table output).
std::string FormatDouble(double v, int precision);

/// Appends `s` to `*out` with JSON string escaping (quote, backslash and
/// control characters; the caller writes the surrounding quotes). Shared by
/// the telemetry JSON-lines sink, MetricRegistry::ToJson and the Chrome
/// trace exporter so every serializer escapes identically.
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Convenience wrapper around AppendJsonEscaped.
std::string JsonEscaped(const std::string& s);

/// Quotes `s` as one CSV field (RFC 4180): returned verbatim unless it
/// contains a comma, quote or newline, in which case it is wrapped in quotes
/// with embedded quotes doubled.
std::string CsvField(const std::string& s);

/// Formats a unix timestamp (seconds since the epoch) as ISO-8601 UTC with
/// millisecond precision, e.g. "2026-08-05T12:00:00.123Z". Used by the
/// default log sink and the telemetry JSON-lines sink.
std::string FormatIso8601Utc(double unix_seconds);

/// Current wall clock, seconds since the epoch.
double UnixNowSeconds();

/// Left/right-pads a string with spaces to the given width.
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace eadrl

#endif  // EADRL_COMMON_STRING_UTIL_H_
