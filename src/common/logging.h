#ifndef EADRL_COMMON_LOGGING_H_
#define EADRL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace eadrl {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Used via the EADRL_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

#define EADRL_LOG(level)                                    \
  ::eadrl::internal_logging::LogMessage(                    \
      ::eadrl::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace eadrl

#endif  // EADRL_COMMON_LOGGING_H_
