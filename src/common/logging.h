#ifndef EADRL_COMMON_LOGGING_H_
#define EADRL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace eadrl {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// One emitted log statement, as delivered to a LogSink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  double unix_seconds = 0.0;  ///< wall clock at emission.
  std::string message;        ///< the streamed user message, no decoration.
};

/// Destination for log records. The default sink formats
/// "[ISO-8601 LEVEL file:line] message" to stderr; tests install their own
/// sink to capture output instead of scraping stderr. Implementations must
/// be thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Installs a process-wide log sink (not owned; nullptr restores the default
/// stderr sink). The caller keeps the sink alive until it is replaced.
void SetLogSink(LogSink* sink);

/// The currently installed custom sink, or nullptr when the default stderr
/// sink is active.
LogSink* GetLogSink();

namespace internal_logging {

/// Stream-style log statement; dispatches to the sink on destruction. Used
/// via the EADRL_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

#define EADRL_LOG(level)                                    \
  ::eadrl::internal_logging::LogMessage(                    \
      ::eadrl::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace eadrl

#endif  // EADRL_COMMON_LOGGING_H_
