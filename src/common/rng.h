#ifndef EADRL_COMMON_RNG_H_
#define EADRL_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace eadrl {

/// Deterministic random-number generator used throughout the library.
///
/// Every stochastic component (weight init, replay sampling, exploration
/// noise, dataset generation, bootstrap) takes an `Rng&` so that experiments
/// are reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    EADRL_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n).
  size_t Index(size_t n) {
    EADRL_CHECK_GT(n, 0u);
    return static_cast<size_t>(Int(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Exponential with the given rate parameter (lambda).
  double Exponential(double rate) {
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  /// Student-t variate with `dof` degrees of freedom (for heavy-tailed noise).
  double StudentT(double dof) {
    std::student_t_distribution<double> dist(dof);
    return dist(engine_);
  }

  /// Poisson variate with the given mean.
  int64_t Poisson(double mean) {
    std::poisson_distribution<int64_t> dist(mean);
    return dist(engine_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for parallel components).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace eadrl

#endif  // EADRL_COMMON_RNG_H_
