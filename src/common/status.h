#ifndef EADRL_COMMON_STATUS_H_
#define EADRL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace eadrl {

/// Error codes used across the public API. Modeled after the Arrow/RocksDB
/// status idiom: no exceptions cross API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
};

/// Lightweight success-or-error result for operations that can fail.
///
/// A `Status` is cheap to copy in the success case (no allocation) and
/// carries a human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// A bounded resource (queue slot, in-flight budget) is full right now —
  /// the retryable backpressure signal admission control sheds load with,
  /// distinct from the caller-bug codes above.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a string of the form "CODE: message" for logging.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Union of a `Status` and a value of type `T`.
///
/// Accessing `value()` on an error result aborts the process (programmer
/// error); callers must test `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value, mirroring absl::StatusOr, so
  /// functions can `return value;` directly.
  StatusOr(T value) : value_(std::move(value)) {}  // intentionally implicit

  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // intentionally implicit
    EADRL_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EADRL_CHECK(ok());
    return *value_;
  }
  T& value() & {
    EADRL_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    EADRL_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define EADRL_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::eadrl::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace eadrl

#endif  // EADRL_COMMON_STATUS_H_
