#include "common/string_util.h"

#include <cstdio>

namespace eadrl {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace eadrl
