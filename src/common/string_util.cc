#include "common/string_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>

namespace eadrl {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string FormatIso8601Utc(double unix_seconds) {
  double whole = std::floor(unix_seconds);
  int millis = static_cast<int>((unix_seconds - whole) * 1000.0);
  millis = std::clamp(millis, 0, 999);
  std::time_t secs = static_cast<std::time_t>(whole);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

double UnixNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace eadrl
