#ifndef EADRL_COMMON_JSON_H_
#define EADRL_COMMON_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace eadrl::json {

/// Minimal read-only JSON document model. The repo produces several JSON
/// artifacts (telemetry lines, metric snapshots, Chrome trace exports); this
/// parser exists so tests and the trace validator can round-trip them
/// without an external dependency.
///
/// Objects preserve document order and are stored as flat member vectors
/// (duplicate keys are kept; Find returns the first). Numbers are doubles.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Value>;

  Value() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one for the value's type aborts
  /// (programmer error — test `type()` first).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<Member>& AsObject() const;

  /// First member with `key`, or nullptr when absent / not an object.
  const Value* Find(const std::string& key) const;

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset in the message. Nesting
/// deeper than an internal limit (~200 levels) is rejected rather than
/// risking stack exhaustion.
StatusOr<Value> Parse(const std::string& text);

}  // namespace eadrl::json

#endif  // EADRL_COMMON_JSON_H_
