#include "common/json.h"

#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace eadrl::json {

bool Value::AsBool() const {
  EADRL_CHECK(type_ == Type::kBool);
  return bool_;
}

double Value::AsNumber() const {
  EADRL_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& Value::AsString() const {
  EADRL_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  EADRL_CHECK(type_ == Type::kArray);
  return array_;
}

const std::vector<Value::Member>& Value::AsObject() const {
  EADRL_CHECK(type_ == Type::kObject);
  return object_;
}

const Value* Value::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

/// Recursive-descent parser over the raw text. One instance per Parse call;
/// errors abort the descent via the `failed_` flag so there is a single
/// error (the first) with a byte offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> Run() {
    Value root = ParseValue(0);
    SkipWhitespace();
    if (!failed_ && pos_ != text_.size()) {
      Fail("trailing characters after document");
    }
    if (failed_) return Status::InvalidArgument(error_);
    return root;
  }

 private:
  static constexpr size_t kMaxDepth = 200;

  void Fail(const std::string& what) {
    if (failed_) return;
    failed_ = true;
    error_ = StrCat("json: ", what, " at offset ", pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value ParseValue(size_t depth) {
    Value v;
    if (failed_) return v;
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return v;
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return v;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        v.type_ = Value::Type::kString;
        v.string_ = ParseString();
        return v;
      case 't':
        if (ConsumeKeyword("true")) {
          v.type_ = Value::Type::kBool;
          v.bool_ = true;
        } else {
          Fail("invalid literal");
        }
        return v;
      case 'f':
        if (ConsumeKeyword("false")) {
          v.type_ = Value::Type::kBool;
          v.bool_ = false;
        } else {
          Fail("invalid literal");
        }
        return v;
      case 'n':
        if (!ConsumeKeyword("null")) Fail("invalid literal");
        return v;  // null
      default:
        return ParseNumber();
    }
  }

  Value ParseObject(size_t depth) {
    Value v;
    v.type_ = Value::Type::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return v;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return v;
      }
      std::string key = ParseString();
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return v;
      }
      Value member = ParseValue(depth + 1);
      if (failed_) return v;
      v.object_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      Fail("expected ',' or '}' in object");
      return v;
    }
  }

  Value ParseArray(size_t depth) {
    Value v;
    v.type_ = Value::Type::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return v;
    for (;;) {
      Value element = ParseValue(depth + 1);
      if (failed_) return v;
      v.array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      Fail("expected ',' or ']' in array");
      return v;
    }
  }

  std::string ParseString() {
    std::string out;
    Consume('"');
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return out;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a following \uXXXX low surrogate.
            unsigned low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              Fail("lone high surrogate");
              return out;
            }
            pos_ += 2;
            if (!ParseHex4(&low)) return out;
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("invalid low surrogate");
              return out;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            Fail("lone low surrogate");
            return out;
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          Fail("invalid escape");
          return out;
      }
    }
    Fail("unterminated string");
    return out;
  }

  bool ParseHex4(unsigned* code) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) {
        Fail("truncated \\u escape");
        return false;
      }
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        Fail("invalid \\u escape");
        return false;
      }
    }
    *code = v;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value ParseNumber() {
    Value v;
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      Fail("invalid value");
      return v;
    }
    const size_t int_start = text_[start] == '-' ? start + 1 : start;
    if (digits > 1 && text_[int_start] == '0') {
      pos_ = start;
      Fail("leading zeros are not allowed");
      return v;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++frac;
      }
      if (frac == 0) {
        Fail("digits required after decimal point");
        return v;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++exp;
      }
      if (exp == 0) {
        Fail("digits required in exponent");
        return v;
      }
    }
    v.type_ = Value::Type::kNumber;
    v.number_ = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

StatusOr<Value> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace eadrl::json
