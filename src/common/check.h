#ifndef EADRL_COMMON_CHECK_H_
#define EADRL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace eadrl::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "EADRL_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace eadrl::internal_check

/// Aborts the process with a diagnostic if `cond` is false. Used for internal
/// invariants and programmer errors; recoverable conditions return `Status`.
#define EADRL_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::eadrl::internal_check::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                  \
  } while (0)

#define EADRL_CHECK_EQ(a, b) EADRL_CHECK((a) == (b))
#define EADRL_CHECK_NE(a, b) EADRL_CHECK((a) != (b))
#define EADRL_CHECK_LT(a, b) EADRL_CHECK((a) < (b))
#define EADRL_CHECK_LE(a, b) EADRL_CHECK((a) <= (b))
#define EADRL_CHECK_GT(a, b) EADRL_CHECK((a) > (b))
#define EADRL_CHECK_GE(a, b) EADRL_CHECK((a) >= (b))

#endif  // EADRL_COMMON_CHECK_H_
