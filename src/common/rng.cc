#include "common/rng.h"

#include <numeric>

namespace eadrl {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  EADRL_CHECK_LE(k, n);
  // Partial Fisher–Yates: only the first k slots are finalized.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace eadrl
