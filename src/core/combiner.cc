#include "core/combiner.h"

#include "common/check.h"

namespace eadrl::core {

double Combine(const math::Vec& weights, const math::Vec& preds) {
  EADRL_CHECK_EQ(weights.size(), preds.size());
  double s = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) s += weights[i] * preds[i];
  return s;
}

double WeightedCombiner::Predict(const math::Vec& preds) {
  return Combine(Weights(), preds);
}

}  // namespace eadrl::core
