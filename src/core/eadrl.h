#ifndef EADRL_CORE_EADRL_H_
#define EADRL_CORE_EADRL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "chk/chk.h"

#include "core/combiner.h"
#include "obs/metrics.h"
#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ou_noise.h"
#include "rl/replay_buffer.h"
#include "ts/drift.h"

namespace eadrl::core {

/// Online policy-adaptation modes — the paper's future-work proposal to
/// "investigate the impact of an online update of the policy, for instance
/// in a periodic manner, or in an informed fashion following a
/// drift-detection mechanism".
enum class OnlineUpdateMode {
  kNone,           ///< paper default: policy frozen after offline training.
  kPeriodic,       ///< a few DDPG updates every `online_update_every` steps.
  kDriftInformed,  ///< updates triggered by Page-Hinkley drift detection.
};

/// EA-DRL hyper-parameters (paper Sec. III, "EA-DRL set-up": gamma = 0.9,
/// alpha = 0.01, max.ep = max.iter = 100, omega = 10 for Table II).
struct EadrlConfig {
  size_t omega = 10;                 ///< validation window / state size.
  rl::RewardType reward_type = rl::RewardType::kRank;
  rl::SamplingStrategy sampling = rl::SamplingStrategy::kMedianSplit;
  size_t max_episodes = 100;
  size_t max_iterations = 100;       ///< environment steps per episode.
  size_t replay_capacity = 5000;
  size_t batch_size = 16;
  size_t warmup_transitions = 64;    ///< updates start once buffer has these.
  double gamma = 0.9;
  double actor_lr = 0.005;
  double critic_lr = 0.01;
  double tau = 0.01;
  std::vector<size_t> actor_hidden = {64, 64};
  std::vector<size_t> critic_hidden = {64, 64};
  /// Passed through to the DDPG agent (see rl::DdpgConfig).
  double logit_scale = 1.0;
  double logit_l2 = 0.01;
  rl::CriticForm critic_form = rl::CriticForm::kLinearInAction;
  double ou_sigma = 1.0;             ///< OU noise on the action logits.
  double ou_sigma_decay = 0.98;      ///< per-episode exploration decay.
  /// Probability of replacing a step's action with a random Dirichlet draw.
  /// Concentrated random actions give the critic coverage of the whole
  /// simplex (including near-corner weightings), which OU noise around the
  /// current policy cannot provide; decays per episode.
  double explore_prob = 0.5;
  double explore_decay = 0.96;
  double dirichlet_alpha = 0.3;
  /// Counterfactual replay: because the environment's transition and reward
  /// functions are known (they are computed from the fixed validation
  /// prediction matrix), every visited state can also be labeled with the
  /// reward of actions that were NOT executed. Each step additionally stores
  /// this many counterfactual transitions (half single-model one-hots, half
  /// random Dirichlet mixtures), which is what lets the critic identify
  /// per-model quality from a short validation segment. 0 disables.
  size_t counterfactual_actions = 8;
  /// After each training episode the greedy policy is evaluated with a full
  /// deterministic rollout on the validation environment, and the
  /// best-scoring actor snapshot is the one deployed online. This is model
  /// selection on validation data (the paper tunes hyper-parameters the same
  /// way) and removes the run-to-run variance of deploying whatever the
  /// last episode produced.
  bool best_checkpoint = true;
  /// Number of independent training runs (different seeds); the deployed
  /// policy is the best validation-rollout checkpoint across all restarts.
  /// DDPG outcomes have run-to-run variance; restarting and selecting on the
  /// validation environment is cheap insurance against a bad draw.
  size_t restarts = 3;

  // --- Paper future-work extensions (all off by default). -----------------
  /// Diversity-aware reward coefficient (see rl::EnsembleEnv).
  double diversity_coef = 0.0;
  /// Pruning step: train and act on only the `prune_top_n` models with the
  /// lowest validation RMSE (0 = use the whole pool). Pruned models receive
  /// weight zero online.
  size_t prune_top_n = 0;
  /// Online policy adaptation.
  OnlineUpdateMode online_update = OnlineUpdateMode::kNone;
  size_t online_update_every = 25;       ///< steps between periodic updates.
  size_t online_update_iterations = 5;   ///< DDPG updates per trigger.
  size_t online_buffer_capacity = 512;
  bool early_stop = true;            ///< stop when the reward curve plateaus.
  size_t early_stop_patience = 10;
  uint64_t seed = 42;
};

/// The extractable online half of Algorithm 1: everything `Predict` mutates
/// per step, separated from the trained policy (which is immutable online
/// with the paper-default OnlineUpdateMode::kNone). A serving layer keeps one
/// of these per resident tenant session and shares the trained policy across
/// all of them, which is what makes cross-tenant batched actor passes
/// possible (see src/serve/).
struct OnlineState {
  std::deque<double> window;  ///< last omega ensemble outputs (policy units).
  double state_mean = 0.0;    ///< validation-actuals mean (diagnostics).
  double state_std = 1.0;     ///< validation-actuals stddev (state floor).
};

/// The standardize-and-clip state transform of Algorithm 1 (the same
/// window-relative transform as EnsembleEnv::StateVec), as a pure function of
/// explicit session state: both EadrlCombiner's in-object online loop and the
/// serving layer's extracted sessions go through here, so their states are
/// bit-identical by construction.
math::Vec OnlineStateVec(const std::deque<double>& window, double state_std);

/// Debug-mode sentinel enforcing the per-session serialization contract:
/// EadrlCombiner's online entry points (Predict/Update/Weights, and the
/// Initialize/LoadPolicy lifecycle calls) mutate session state and the
/// agent's inference workspace, so two concurrent calls on ONE combiner are a
/// data race. The combiner is deliberately not internally synchronized — a
/// serving layer stripes sessions across locks instead of paying a mutex on
/// every call — so this guard turns a violated contract into a loud chk
/// failure instead of silent state corruption. With contracts compiled out
/// the cost is one uncontended atomic exchange per call.
class SessionCallGuard {
 public:
  SessionCallGuard(std::atomic<bool>* busy, const char* what) : busy_(busy) {
    const bool was_busy = busy_->exchange(true, std::memory_order_acquire);
    EADRL_CHK(!was_busy, what);
    static_cast<void>(was_busy);
    static_cast<void>(what);
  }
  ~SessionCallGuard() { busy_->store(false, std::memory_order_release); }

  SessionCallGuard(const SessionCallGuard&) = delete;
  SessionCallGuard& operator=(const SessionCallGuard&) = delete;

 private:
  std::atomic<bool>* busy_;
};

/// EA-DRL: ensemble aggregation with deep reinforcement learning.
///
/// `Initialize` phrases the combination task as the MDP of Sec. II-B over a
/// validation prediction matrix and learns the combination policy offline
/// with DDPG plus the median-split replay sampling of Sec. II-D. Online,
/// `Predict` queries the frozen policy for the weight vector given the
/// current window of ensemble outputs and rolls the window forward with the
/// new ensemble output (paper Algorithm 1).
class EadrlCombiner : public WeightedCombiner {
 public:
  explicit EadrlCombiner(EadrlConfig config);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  double Predict(const math::Vec& preds) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

  /// Average reward per training episode (Fig. 2 learning curves).
  const math::Vec& episode_rewards() const { return episode_rewards_; }

  /// Greedy-policy validation score (negative rollout RMSE) per episode of
  /// the first restart; used to measure convergence speed (Q3).
  const math::Vec& eval_scores() const { return eval_scores_; }

  /// Episode index at which early stopping declared convergence, or
  /// max_episodes if it ran to completion.
  size_t converged_episode() const { return converged_episode_; }

  /// Indices of the pool models the policy acts on (all, unless
  /// prune_top_n is set).
  const std::vector<size_t>& active_models() const { return active_models_; }

  /// Number of online policy updates performed so far (0 unless an
  /// OnlineUpdateMode is enabled).
  size_t online_updates() const { return online_updates_; }

  const EadrlConfig& config() const { return config_; }

  /// Saves the trained policy (actor weights + online state) so it can be
  /// deployed later without retraining — the offline/online split of the
  /// paper made concrete. Requires a prior Initialize.
  Status SavePolicy(const std::string& path) const;

  /// Loads a policy saved by SavePolicy. The combiner's configured network
  /// sizes must match the saved file. After loading, the combiner is ready
  /// for online Predict/Update without Initialize.
  Status LoadPolicy(const std::string& path);

  /// Trained agent (diagnostics and the serving layer's batched actor
  /// passes; null before Initialize). The agent's inference entry points
  /// reuse internal workspace buffers, so callers that share one combiner
  /// across threads must serialize access (src/serve guards each policy with
  /// a mutex).
  rl::DdpgAgent* agent() { return agent_.get(); }

  /// Copies the current online session state (window + state statistics) out
  /// of the combiner. A serving layer snapshots this once after training and
  /// clones it into every fresh tenant session; requires Initialize (or
  /// LoadPolicy) to have succeeded.
  OnlineState ExportOnlineState() const;

  /// Restricts a full prediction vector to the active (unpruned) models —
  /// the const half of the predict path, shared with the serving layer.
  math::Vec ReduceToActive(const math::Vec& preds) const;

  /// The state the online stage would act on right now.
  math::Vec DebugCurrentState() const { return CurrentState(); }

 private:
  math::Vec CurrentState() const;

  /// Rank reward of `action` over the current online window (used by the
  /// online-update extension), scaled to [0, 1].
  double OnlineRankReward(const math::Vec& action) const;

  void MaybeOnlineUpdate(const math::Vec& reduced_preds, double actual);

  std::string name_;
  EadrlConfig config_;
  std::unique_ptr<rl::DdpgAgent> agent_;
  math::Vec episode_rewards_;
  math::Vec eval_scores_;
  size_t converged_episode_ = 0;

  // Online state (Algorithm 1).
  std::deque<double> window_;  // last omega ensemble outputs.
  double state_mean_ = 0.0;
  double state_std_ = 1.0;
  size_t num_models_ = 0;
  std::vector<size_t> active_models_;  // subset the policy acts on.
  bool initialized_ = false;

  // Online-update extension state.
  std::unique_ptr<rl::ReplayBuffer> online_buffer_;
  std::deque<math::Vec> online_preds_;  // reduced, last omega steps.
  std::deque<double> online_actuals_;
  math::Vec last_state_;
  math::Vec last_action_;  // reduced.
  bool has_last_action_ = false;
  size_t online_steps_ = 0;
  size_t online_updates_ = 0;
  ts::PageHinkley online_detector_{0.005, 3.0};
  std::unique_ptr<Rng> online_rng_;

  /// Per-session serialization sentinel (see SessionCallGuard). Mutable so
  /// const entry points (Weights) participate in the same contract.
  mutable std::atomic<bool> busy_{false};

  // Observability (cached from the default registry; see DESIGN.md
  // "Observability" for the metric naming scheme).
  size_t predict_count_ = 0;
  obs::Histogram* predict_latency_hist_;
  obs::Counter* predict_counter_;
  obs::Counter* episode_counter_;
  obs::Counter* online_update_counter_;
};

}  // namespace eadrl::core

#endif  // EADRL_CORE_EADRL_H_
