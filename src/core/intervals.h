#ifndef EADRL_CORE_INTERVALS_H_
#define EADRL_CORE_INTERVALS_H_

#include "common/status.h"
#include "math/vec.h"

namespace eadrl::core {

/// A point forecast with a prediction interval.
struct IntervalForecast {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Empirical (conformal-style) prediction intervals for any combiner:
/// calibrated from held-out one-step-ahead residuals, an interval at
/// coverage 1 - alpha is [point + q_{alpha/2}, point + q_{1-alpha/2}] of the
/// residual distribution.
class EmpiricalIntervals {
 public:
  /// Calibrates from residuals (actual - prediction) on a held-out segment.
  /// Needs at least 10 residuals for meaningful quantiles.
  Status Calibrate(const math::Vec& residuals);

  /// Interval around a point forecast at the given coverage in (0, 1).
  StatusOr<IntervalForecast> Interval(double point, double coverage) const;

  /// Fraction of (actual, prediction) pairs falling inside their interval —
  /// the empirical coverage check.
  StatusOr<double> EmpiricalCoverage(const math::Vec& actuals,
                                     const math::Vec& predictions,
                                     double coverage) const;

  bool calibrated() const { return calibrated_; }

 private:
  bool calibrated_ = false;
  math::Vec sorted_residuals_;
};

}  // namespace eadrl::core

#endif  // EADRL_CORE_INTERVALS_H_
