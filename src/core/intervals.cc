#include "core/intervals.h"

#include <algorithm>

#include "math/stats.h"

namespace eadrl::core {

Status EmpiricalIntervals::Calibrate(const math::Vec& residuals) {
  if (residuals.size() < 10) {
    return Status::InvalidArgument(
        "EmpiricalIntervals: need at least 10 residuals");
  }
  sorted_residuals_ = residuals;
  std::sort(sorted_residuals_.begin(), sorted_residuals_.end());
  calibrated_ = true;
  return Status::Ok();
}

StatusOr<IntervalForecast> EmpiricalIntervals::Interval(
    double point, double coverage) const {
  if (!calibrated_) {
    return Status::FailedPrecondition("EmpiricalIntervals: not calibrated");
  }
  if (coverage <= 0.0 || coverage >= 1.0) {
    return Status::InvalidArgument(
        "EmpiricalIntervals: coverage must be in (0, 1)");
  }
  double alpha = 1.0 - coverage;
  IntervalForecast out;
  out.point = point;
  out.lower = point + math::Quantile(sorted_residuals_, alpha / 2.0);
  out.upper = point + math::Quantile(sorted_residuals_, 1.0 - alpha / 2.0);
  return out;
}

StatusOr<double> EmpiricalIntervals::EmpiricalCoverage(
    const math::Vec& actuals, const math::Vec& predictions,
    double coverage) const {
  if (actuals.size() != predictions.size() || actuals.empty()) {
    return Status::InvalidArgument(
        "EmpiricalIntervals: size mismatch in coverage check");
  }
  size_t inside = 0;
  for (size_t t = 0; t < actuals.size(); ++t) {
    StatusOr<IntervalForecast> interval =
        Interval(predictions[t], coverage);
    EADRL_RETURN_IF_ERROR(interval.status());
    if (actuals[t] >= interval->lower && actuals[t] <= interval->upper) {
      ++inside;
    }
  }
  return static_cast<double>(inside) / static_cast<double>(actuals.size());
}

}  // namespace eadrl::core
