#ifndef EADRL_CORE_COMBINER_H_
#define EADRL_CORE_COMBINER_H_

#include <string>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::core {

/// Interface shared by EA-DRL and every baseline ensemble-combination
/// strategy (SE, SWE, EWA, ..., DEMSC).
///
/// Protocol used by the experiment harness:
///  1. `Initialize(val_preds, val_actuals)` — one-off setup on a held-out
///     validation segment (meta-learner training, window warm-up, ...).
///     `val_preds` is T x m: base-model one-step predictions; `val_actuals`
///     the realized values.
///  2. Per online step: `Predict(preds)` combines the m base predictions for
///     the step; then `Update(preds, actual)` feeds back the realized value.
class Combiner {
 public:
  virtual ~Combiner() = default;

  virtual const std::string& name() const = 0;

  virtual Status Initialize(const math::Matrix& val_preds,
                            const math::Vec& val_actuals) = 0;

  virtual double Predict(const math::Vec& preds) = 0;

  virtual void Update(const math::Vec& preds, double actual) = 0;
};

/// Convex combination helper: dot(weights, preds).
double Combine(const math::Vec& weights, const math::Vec& preds);

/// Base class for combiners that expose an explicit weight vector. `Predict`
/// is the convex combination with the current weights.
class WeightedCombiner : public Combiner {
 public:
  double Predict(const math::Vec& preds) override;

  /// Current weight vector (for inspection/tests).
  virtual math::Vec Weights() const = 0;
};

}  // namespace eadrl::core

#endif  // EADRL_CORE_COMBINER_H_
