#include "core/eadrl.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>

#include "chk/chk.h"
#include "common/check.h"
#include "common/logging.h"
#include "math/stats.h"
#include "nn/serialize.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace eadrl::core {

EadrlCombiner::EadrlCombiner(EadrlConfig config)
    : name_("EA-DRL"),
      config_(std::move(config)),
      predict_latency_hist_(obs::MetricRegistry::Default().GetHistogram(
          "eadrl_predict_seconds")),
      predict_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_predict_total")),
      episode_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_episodes_total")),
      online_update_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_online_updates_total")) {
  EADRL_CHECK_GT(config_.omega, 0u);
  EADRL_CHECK_GT(config_.max_episodes, 0u);
}

math::Vec OnlineStateVec(const std::deque<double>& window, double state_std) {
  // Same window-relative standardize-and-clip transform as
  // EnsembleEnv::StateVec, so online states match the policy's training
  // distribution even when the series trends outside the validation range.
  EADRL_CHECK(!window.empty());
  double mean = 0.0;
  for (double v : window) mean += v;
  mean /= static_cast<double>(window.size());
  double var = 0.0;
  for (double v : window) var += (v - mean) * (v - mean);
  var /= static_cast<double>(window.size());
  double sd = std::max(std::sqrt(var), 0.1 * state_std);
  if (sd <= 1e-12) sd = 1.0;
  math::Vec s(window.begin(), window.end());
  for (double& v : s) v = std::clamp((v - mean) / sd, -4.0, 4.0);
  return s;
}

Status EadrlCombiner::Initialize(const math::Matrix& val_preds,
                                 const math::Vec& val_actuals) {
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::Initialize");
  if (val_preds.rows() != val_actuals.size()) {
    return Status::InvalidArgument("EA-DRL: predictions/actuals mismatch");
  }
  if (val_preds.rows() <= config_.omega + 2) {
    return Status::InvalidArgument(
        "EA-DRL: validation segment shorter than omega + 2");
  }
  num_models_ = val_preds.cols();

  // Optional pruning step (paper future work): keep only the top models by
  // validation RMSE; the policy then weights this subset.
  active_models_.clear();
  if (config_.prune_top_n > 0 && config_.prune_top_n < num_models_) {
    std::vector<std::pair<double, size_t>> scored;
    for (size_t i = 0; i < num_models_; ++i) {
      double sse = 0.0;
      for (size_t t = 0; t < val_actuals.size(); ++t) {
        double d = val_preds(t, i) - val_actuals[t];
        sse += d * d;
      }
      scored.push_back({sse, i});
    }
    std::sort(scored.begin(), scored.end());
    for (size_t k = 0; k < config_.prune_top_n; ++k) {
      active_models_.push_back(scored[k].second);
    }
    std::sort(active_models_.begin(), active_models_.end());
  } else {
    active_models_.resize(num_models_);
    for (size_t i = 0; i < num_models_; ++i) active_models_[i] = i;
  }
  const size_t m_active = active_models_.size();
  math::Matrix reduced(val_preds.rows(), m_active);
  for (size_t t = 0; t < val_preds.rows(); ++t) {
    for (size_t k = 0; k < m_active; ++k) {
      reduced(t, k) = val_preds(t, active_models_[k]);
    }
  }

  rl::EnsembleEnv dim_env(reduced, val_actuals, config_.omega,
                          config_.reward_type, config_.diversity_coef);

  rl::DdpgConfig ddpg;
  ddpg.state_dim = dim_env.state_dim();
  ddpg.action_dim = dim_env.action_dim();
  ddpg.actor_hidden = config_.actor_hidden;
  ddpg.critic_hidden = config_.critic_hidden;
  ddpg.actor_lr = config_.actor_lr;
  ddpg.critic_lr = config_.critic_lr;
  ddpg.gamma = config_.gamma;
  ddpg.tau = config_.tau;
  ddpg.batch_size = config_.batch_size;
  ddpg.logit_scale = config_.logit_scale;
  ddpg.logit_l2 = config_.logit_l2;
  ddpg.critic_form = config_.critic_form;
  const size_t restarts = std::max<size_t>(1, config_.restarts);

  // Root of the offline-training trace: everything below — restart tasks on
  // pool workers included — parents back to this span.
  obs::Span train_span("train");
  train_span.SetAttr("restarts", restarts);
  train_span.SetAttr("models", m_active);

  // Every restart is an independent training run: restart-derived seeds, its
  // own agent, replay buffer, noise process and environment copy (Reset()
  // fully reinitializes an EnsembleEnv, so a copy behaves exactly like the
  // serial code's reuse of one env). Restarts therefore run concurrently on
  // the default pool, and every cross-restart decision — deployed checkpoint,
  // reported curves — is made in the ordered scan after the join, which
  // reproduces the serial loop's selection (first restart achieving the
  // maximum wins, as with the serial strict-> update).
  struct RestartOutcome {
    std::unique_ptr<rl::DdpgAgent> agent;
    math::Vec episode_rewards;
    math::Vec eval_scores;
    size_t converged_episode = 0;
    double best_eval = -1e300;
    std::vector<math::Matrix> best_actor;
  };

  auto run_restart = [&](size_t restart) {
    obs::Span restart_span("restart");
    restart_span.SetAttr("restart", restart);
    RestartOutcome out;
    out.converged_episode = config_.max_episodes;

    rl::EnsembleEnv env(reduced, val_actuals, config_.omega,
                        config_.reward_type, config_.diversity_coef);
    rl::DdpgConfig restart_ddpg = ddpg;
    restart_ddpg.seed = config_.seed + restart * 101;
    out.agent = std::make_unique<rl::DdpgAgent>(restart_ddpg);
    rl::DdpgAgent* agent = out.agent.get();

    rl::ReplayBuffer buffer(config_.replay_capacity);
    rl::OuNoise noise(env.action_dim(), /*theta=*/0.15, config_.ou_sigma);
    Rng rng(config_.seed + 7 + restart * 997);

    // Random simplex draw for off-policy exploration.
    auto sample_dirichlet = [&]() {
      std::gamma_distribution<double> gamma(config_.dirichlet_alpha, 1.0);
      math::Vec w(m_active);
      double sum = 0.0;
      for (double& v : w) {
        v = std::max(gamma(rng.engine()), 1e-12);
        sum += v;
      }
      for (double& v : w) v /= sum;
      return w;
    };

    double explore_prob = config_.explore_prob;

    for (size_t episode = 0; episode < config_.max_episodes; ++episode) {
      obs::Span episode_span("episode");
      if (episode_span.armed()) {
        episode_span.SetAttr("restart", restart);
        episode_span.SetAttr("episode", episode);
      }
      math::Vec state = env.Reset();
      noise.Reset();
      double episode_reward = 0.0;
      size_t steps = 0;

      for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
        math::Vec action = rng.Bernoulli(explore_prob)
                               ? sample_dirichlet()
                               : agent->ActWithNoise(state, noise.Sample(rng));

        // Counterfactual replay: label this state with rewards of actions
        // that were not executed (the simulator makes them exact).
        const size_t m = m_active;
        for (size_t c = 0; c < config_.counterfactual_actions; ++c) {
          math::Vec cf_action;
          if (c % 2 == 0) {
            cf_action.assign(m, 0.0);
            cf_action[rng.Index(m)] = 1.0;
          } else {
            cf_action = sample_dirichlet();
          }
          rl::EnsembleEnv::StepResult cf = env.Peek(cf_action);
          rl::Transition cf_t;
          cf_t.state = state;
          cf_t.action = std::move(cf_action);
          cf_t.reward = config_.reward_type == rl::RewardType::kRank
                            ? cf.reward / static_cast<double>(m)
                            : cf.reward;
          cf_t.next_state = std::move(cf.next_state);
          cf_t.terminal = cf.done;
          buffer.Add(std::move(cf_t));
        }

        rl::EnsembleEnv::StepResult sr = env.Step(action);
        episode_reward += sr.reward;
        ++steps;

        rl::Transition t;
        t.state = state;
        t.action = action;
        // Rank rewards span [0, m]; scale them into [0, 1] inside the
        // learner so critic targets and policy gradients are
        // well-conditioned for any pool size. Episode curves report the raw
        // reward (Fig. 2 units).
        t.reward = config_.reward_type == rl::RewardType::kRank
                       ? sr.reward / static_cast<double>(env.action_dim())
                       : sr.reward;
        t.next_state = sr.next_state;
        t.terminal = sr.done;
        buffer.Add(std::move(t));

        if (buffer.size() >= config_.warmup_transitions) {
          agent->Update(
              buffer.Sample(config_.batch_size, config_.sampling, rng));
        }

        state = sr.next_state;
        if (sr.done) break;
      }
      const double mean_reward =
          episode_reward / static_cast<double>(steps);
      out.episode_rewards.push_back(mean_reward);
      const double episode_sigma = noise.sigma();
      const double episode_explore = explore_prob;
      noise.set_sigma(noise.sigma() * config_.ou_sigma_decay);
      explore_prob *= config_.explore_decay;

      // Deterministic evaluation rollout for best-checkpoint selection. The
      // selection metric is the rollout's ensemble RMSE on validation — the
      // quantity the deployed policy is judged by.
      bool have_eval = false;
      double eval_score = 0.0;
      if (config_.best_checkpoint) {
        obs::Span eval_span("eval_rollout");
        math::Vec eval_state = env.Reset();
        double eval_sse = 0.0;
        size_t eval_steps = 0;
        for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
          rl::EnsembleEnv::StepResult sr = env.Step(agent->Act(eval_state));
          double err = sr.ensemble_prediction - sr.actual;
          eval_sse += err * err;
          ++eval_steps;
          eval_state = sr.next_state;
          if (sr.done) break;
        }
        eval_score = -std::sqrt(eval_sse / static_cast<double>(eval_steps));
        have_eval = true;
        out.eval_scores.push_back(eval_score);
        if (eval_score > out.best_eval) {
          obs::Span checkpoint_span("checkpoint");
          out.best_eval = eval_score;
          out.best_actor = agent->ActorWeights();
          EADRL_TELEMETRY("checkpoint", {"restart", restart},
                          {"episode", episode}, {"eval_score", eval_score});
        }
      }

      episode_counter_->Inc();
      if (obs::TelemetryEnabled()) {
        std::vector<obs::TelemetryField> fields = {
            {"restart", restart},
            {"episode", episode},
            {"reward", mean_reward},
            {"ou_sigma", episode_sigma},
            {"explore_prob", episode_explore},
            {"replay_size", buffer.size()},
            {"critic_loss", agent->last_update_stats().critic_loss}};
        if (have_eval) fields.emplace_back("eval_score", eval_score);
        obs::Emit("episode", std::move(fields));
      }

      // Plateau detection: compare the mean reward of the last `patience`
      // episodes with the preceding block (first restart only — it owns the
      // reported curve).
      if (restart == 0 && config_.early_stop &&
          out.episode_rewards.size() >= 2 * config_.early_stop_patience) {
        size_t p = config_.early_stop_patience;
        size_t n = out.episode_rewards.size();
        double recent = 0.0, previous = 0.0;
        for (size_t i = n - p; i < n; ++i) recent += out.episode_rewards[i];
        for (size_t i = n - 2 * p; i < n - p; ++i) {
          previous += out.episode_rewards[i];
        }
        recent /= static_cast<double>(p);
        previous /= static_cast<double>(p);
        double scale = std::max(1.0, std::fabs(recent));
        if (std::fabs(recent - previous) < 0.01 * scale) {
          out.converged_episode = episode + 1;
          break;
        }
      }
    }
    return out;
  };

  // Memory: a restart's heavy state (replay buffer, env copy) is allocated
  // when its task *runs* and freed when it finishes, so the peak is
  // O(min(restarts, threads) x replay_capacity) transitions — queued tasks
  // hold nothing, and under RunSuite the same pool bounds datasets x
  // restarts in flight by the worker count. Only the per-restart agent
  // (network weights, small) survives in `outcomes` until the post-join
  // scan. Lower --threads / EADRL_THREADS if threads x replay_capacity is
  // too large for the machine.
  std::vector<RestartOutcome> outcomes(restarts);
  par::ParallelFor(0, restarts, [&](size_t restart) {
    outcomes[restart] = run_restart(restart);
  });

  // Ordered cross-restart selection (identical to the serial scan): the
  // reported learning curve and convergence episode come from the first
  // restart; later restarts only compete for the deployed checkpoint.
  episode_rewards_ = std::move(outcomes[0].episode_rewards);
  eval_scores_ = std::move(outcomes[0].eval_scores);
  converged_episode_ = outcomes[0].converged_episode;
  double best_eval = -1e300;
  std::vector<math::Matrix> best_actor;
  for (size_t restart = 0; restart < restarts; ++restart) {
    if (outcomes[restart].best_eval > best_eval &&
        !outcomes[restart].best_actor.empty()) {
      best_eval = outcomes[restart].best_eval;
      best_actor = std::move(outcomes[restart].best_actor);
    }
  }
  agent_ = std::move(outcomes.back().agent);

  if (converged_episode_ == config_.max_episodes &&
      episode_rewards_.size() < config_.max_episodes) {
    converged_episode_ = episode_rewards_.size();
  }
  if (config_.best_checkpoint && !best_actor.empty()) {
    agent_->SetActorWeights(best_actor);
  }
  EADRL_TELEMETRY("train_done", {"episodes", episode_rewards_.size()},
                  {"converged_episode", converged_episode_},
                  {"restarts", restarts}, {"best_eval", best_eval},
                  {"active_models", active_models_.size()});

  // Online state initialization (Algorithm 1, line 1): seed the window with
  // the policy-weighted ensemble outputs over the tail of the validation
  // segment.
  state_mean_ = math::Mean(val_actuals);
  state_std_ = math::Stddev(val_actuals);
  if (state_std_ <= 1e-12) state_std_ = 1.0;

  window_.clear();
  // Warm-up with uniform weights for the first omega tail points (matching
  // EnsembleEnv::Reset), then we are ready to query the policy online.
  const size_t tail_begin = reduced.rows() - config_.omega;
  for (size_t t = tail_begin; t < reduced.rows(); ++t) {
    double s = 0.0;
    for (size_t k = 0; k < m_active; ++k) s += reduced(t, k);
    window_.push_back(s / static_cast<double>(m_active));
  }

  // Online-update extension state.
  online_buffer_ =
      std::make_unique<rl::ReplayBuffer>(config_.online_buffer_capacity);
  online_preds_.clear();
  online_actuals_.clear();
  has_last_action_ = false;
  online_steps_ = 0;
  online_updates_ = 0;
  online_detector_.Reset();
  online_rng_ = std::make_unique<Rng>(config_.seed + 31337);

  initialized_ = true;
  return Status::Ok();
}

math::Vec EadrlCombiner::CurrentState() const {
  return OnlineStateVec(window_, state_std_);
}

OnlineState EadrlCombiner::ExportOnlineState() const {
  EADRL_CHECK(initialized_);
  OnlineState state;
  state.window = window_;
  state.state_mean = state_mean_;
  state.state_std = state_std_;
  return state;
}

math::Vec EadrlCombiner::ReduceToActive(const math::Vec& preds) const {
  if (active_models_.size() == preds.size()) return preds;
  math::Vec reduced(active_models_.size());
  for (size_t k = 0; k < active_models_.size(); ++k) {
    reduced[k] = preds[active_models_[k]];
  }
  return reduced;
}

math::Vec EadrlCombiner::Weights() const {
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::Weights");
  EADRL_CHECK(initialized_);
  math::Vec reduced = agent_->Act(CurrentState());
  EADRL_CHK_SIMPLEX(reduced, 1e-6, "EadrlCombiner::Weights action");
  if (active_models_.size() == num_models_) return reduced;
  // Expand pruned weights back to the full pool (zeros elsewhere).
  math::Vec full(num_models_, 0.0);
  for (size_t k = 0; k < active_models_.size(); ++k) {
    full[active_models_[k]] = reduced[k];
  }
  return full;
}

double EadrlCombiner::Predict(const math::Vec& preds) {
  // Per-session serialization contract: a combiner is one tenant's session
  // state plus a non-thread-safe inference workspace. Concurrent Predict /
  // Update / Weights calls on the SAME combiner are a data race (the guard
  // fails loudly under chk); calls on DIFFERENT combiners are free of shared
  // mutable state and may run fully concurrently — the invariant the serving
  // layer's striped session locks enforce (tests/serve_race_test.cc proves
  // cross-session concurrency TSan-clean).
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::Predict");
  EADRL_CHECK(initialized_);
  EADRL_CHECK_EQ(preds.size(), num_models_);
  EADRL_CHK_FINITE(preds, "EadrlCombiner::Predict member predictions");
  obs::Span span("predict");
  obs::ScopedTimer timer(predict_latency_hist_);
  last_state_ = CurrentState();
  math::Vec reduced_action = agent_->Act(last_state_);
  // The paper's normalization guarantee: every served combination is a
  // convex mixture of the member forecasts.
  EADRL_CHK_SIMPLEX(reduced_action, 1e-6, "EadrlCombiner::Predict action");
  last_action_ = reduced_action;
  has_last_action_ = true;

  math::Vec reduced_preds = ReduceToActive(preds);
  double pred = Combine(reduced_action, reduced_preds);
  EADRL_CHK_FINITE_VALUE(pred, "EadrlCombiner::Predict ensemble output");
  // Algorithm 1: the state window rolls forward with the ensemble output.
  window_.push_back(pred);
  window_.pop_front();

  ++predict_count_;
  predict_counter_->Inc();
  double latency = timer.Stop();
  if (obs::TelemetryEnabled()) {
    // Weight-vector concentration diagnostics: entropy near log(m) means a
    // near-uniform mixture, near zero means single-model selection.
    double entropy = 0.0;
    double max_weight = 0.0;
    for (double w : reduced_action) {
      if (w > 0.0) entropy -= w * std::log(w);
      max_weight = std::max(max_weight, w);
    }
    obs::Emit("predict", {{"step", predict_count_},
                          {"latency_seconds", latency},
                          {"prediction", pred},
                          {"weight_entropy", entropy},
                          {"max_weight", max_weight},
                          {"online_updates", online_updates_},
                          {"drift_cum", online_detector_.cumulative()}});
  }
  return pred;
}

double EadrlCombiner::OnlineRankReward(const math::Vec& action) const {
  const size_t m = active_models_.size();
  const size_t w = online_preds_.size();
  EADRL_CHECK_GT(w, 0u);
  double ens_sse = 0.0;
  for (size_t j = 0; j < w; ++j) {
    double d = Combine(action, online_preds_[j]) - online_actuals_[j];
    ens_sse += d * d;
  }
  double ens_rmse = std::sqrt(ens_sse / static_cast<double>(w));
  size_t rank = 1;
  for (size_t i = 0; i < m; ++i) {
    double sse = 0.0;
    for (size_t j = 0; j < w; ++j) {
      double d = online_preds_[j][i] - online_actuals_[j];
      sse += d * d;
    }
    if (std::sqrt(sse / static_cast<double>(w)) < ens_rmse) ++rank;
  }
  return static_cast<double>(m + 1 - rank) / static_cast<double>(m);
}

void EadrlCombiner::MaybeOnlineUpdate(const math::Vec& reduced_preds,
                                      double actual) {
  if (config_.online_update == OnlineUpdateMode::kNone) return;

  online_preds_.push_back(reduced_preds);
  online_actuals_.push_back(actual);
  if (online_preds_.size() > config_.omega) {
    online_preds_.pop_front();
    online_actuals_.pop_front();
  }
  ++online_steps_;

  if (has_last_action_ && online_preds_.size() == config_.omega) {
    rl::Transition t;
    t.state = last_state_;
    t.action = last_action_;
    t.reward = OnlineRankReward(last_action_);
    t.next_state = CurrentState();
    t.terminal = false;
    online_buffer_->Add(std::move(t));
  }

  bool trigger = false;
  if (config_.online_update == OnlineUpdateMode::kPeriodic) {
    trigger = (online_steps_ % config_.online_update_every == 0);
  } else {
    double err = std::fabs(Combine(last_action_, reduced_preds) - actual);
    double sd = state_std_ > 0 ? state_std_ : 1.0;
    trigger = has_last_action_ && online_detector_.Update(err / sd);
    if (trigger) {
      EADRL_TELEMETRY("drift", {"step", online_steps_},
                      {"error", err / sd},
                      {"observations", online_detector_.num_observations()});
    }
  }
  if (trigger && online_buffer_->size() >= config_.batch_size) {
    obs::Span span("online_update");
    if (span.armed()) {
      span.SetAttr("step", online_steps_);
      span.SetAttr("iterations", config_.online_update_iterations);
    }
    for (size_t i = 0; i < config_.online_update_iterations; ++i) {
      agent_->Update(online_buffer_->Sample(config_.batch_size,
                                            config_.sampling, *online_rng_));
      ++online_updates_;
      online_update_counter_->Inc();
    }
    EADRL_TELEMETRY(
        "online_update", {"step", online_steps_},
        {"iterations", config_.online_update_iterations},
        {"total_updates", online_updates_},
        {"mode", config_.online_update == OnlineUpdateMode::kPeriodic
                     ? "periodic"
                     : "drift"},
        {"critic_loss", agent_->last_update_stats().critic_loss});
  }
}

Status EadrlCombiner::SavePolicy(const std::string& path) const {
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::SavePolicy");
  if (!initialized_) {
    return Status::FailedPrecondition("SavePolicy: not initialized");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("SavePolicy: cannot open " + path);
  }
  out << "eadrl-policy v1\n";
  out << config_.omega << " " << num_models_ << "\n";
  out << active_models_.size();
  for (size_t idx : active_models_) out << " " << idx;
  out << "\n";
  out << std::setprecision(17) << state_mean_ << " " << state_std_ << "\n";
  for (size_t i = 0; i < window_.size(); ++i) {
    if (i > 0) out << " ";
    out << window_[i];
  }
  out << "\n";
  EADRL_RETURN_IF_ERROR(nn::WriteMatrices(out, agent_->ActorWeights()));
  if (!out) return Status::Internal("SavePolicy: write failed");
  return Status::Ok();
}

Status EadrlCombiner::LoadPolicy(const std::string& path) {
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::LoadPolicy");
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("LoadPolicy: cannot open " + path);
  }
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "eadrl-policy" || version != "v1") {
    return Status::InvalidArgument("LoadPolicy: bad header");
  }
  size_t omega = 0, m = 0;
  if (!(in >> omega >> m) || omega == 0 || m == 0) {
    return Status::InvalidArgument("LoadPolicy: bad dimensions");
  }
  if (omega != config_.omega) {
    return Status::FailedPrecondition(
        "LoadPolicy: saved omega differs from the configured one");
  }
  size_t active_count = 0;
  if (!(in >> active_count) || active_count == 0 || active_count > m) {
    return Status::InvalidArgument("LoadPolicy: bad active-model count");
  }
  std::vector<size_t> active(active_count);
  for (size_t& idx : active) {
    if (!(in >> idx) || idx >= m) {
      return Status::InvalidArgument("LoadPolicy: bad active-model index");
    }
  }
  double mean = 0.0, sd = 1.0;
  if (!(in >> mean >> sd)) {
    return Status::InvalidArgument("LoadPolicy: bad state statistics");
  }
  std::deque<double> window;
  for (size_t i = 0; i < omega; ++i) {
    double v = 0.0;
    if (!(in >> v)) {
      return Status::InvalidArgument("LoadPolicy: truncated window");
    }
    window.push_back(v);
  }
  StatusOr<std::vector<math::Matrix>> weights = nn::ReadMatrices(in);
  EADRL_RETURN_IF_ERROR(weights.status());

  rl::DdpgConfig ddpg;
  ddpg.state_dim = omega;
  ddpg.action_dim = active_count;
  ddpg.actor_hidden = config_.actor_hidden;
  ddpg.critic_hidden = config_.critic_hidden;
  ddpg.logit_scale = config_.logit_scale;
  ddpg.logit_l2 = config_.logit_l2;
  ddpg.critic_form = config_.critic_form;
  ddpg.seed = config_.seed;
  auto agent = std::make_unique<rl::DdpgAgent>(ddpg);
  std::vector<math::Matrix> current = agent->ActorWeights();
  if (current.size() != weights->size()) {
    return Status::FailedPrecondition(
        "LoadPolicy: actor architecture mismatch");
  }
  for (size_t i = 0; i < current.size(); ++i) {
    if (current[i].rows() != (*weights)[i].rows() ||
        current[i].cols() != (*weights)[i].cols()) {
      return Status::FailedPrecondition(
          "LoadPolicy: actor layer shape mismatch");
    }
  }
  agent->SetActorWeights(*weights);

  agent_ = std::move(agent);
  num_models_ = m;
  active_models_ = std::move(active);
  state_mean_ = mean;
  state_std_ = sd;
  window_ = std::move(window);
  episode_rewards_.clear();
  converged_episode_ = 0;
  online_buffer_ =
      std::make_unique<rl::ReplayBuffer>(config_.online_buffer_capacity);
  online_preds_.clear();
  online_actuals_.clear();
  has_last_action_ = false;
  online_steps_ = 0;
  online_updates_ = 0;
  online_detector_.Reset();
  online_rng_ = std::make_unique<Rng>(config_.seed + 31337);
  initialized_ = true;
  return Status::Ok();
}

void EadrlCombiner::Update(const math::Vec& preds, double actual) {
  SessionCallGuard guard(&busy_, "concurrent EadrlCombiner::Update");
  EADRL_CHECK(initialized_);
  // With the default OnlineUpdateMode::kNone this is a no-op and the policy
  // stays frozen, as in the paper. The periodic/drift-informed modes
  // implement the paper's future-work proposal.
  MaybeOnlineUpdate(ReduceToActive(preds), actual);
}

}  // namespace eadrl::core
