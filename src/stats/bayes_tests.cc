#include "stats/bayes_tests.h"

#include <cmath>

#include "math/special.h"
#include "math/stats.h"

namespace eadrl::stats {

StatusOr<ComparisonResult> BayesianCorrelatedTTest(const math::Vec& diffs,
                                                   double correlation,
                                                   double rope) {
  if (diffs.size() < 2) {
    return Status::InvalidArgument("t-test: need at least 2 differences");
  }
  if (correlation < 0.0 || correlation >= 1.0) {
    return Status::InvalidArgument("t-test: correlation must be in [0,1)");
  }
  if (rope < 0.0) {
    return Status::InvalidArgument("t-test: rope must be >= 0");
  }
  const double n = static_cast<double>(diffs.size());
  double mean = math::Mean(diffs);
  double var = math::Variance(diffs);

  ComparisonResult result;
  if (var <= 1e-300) {
    // Degenerate: all differences identical.
    if (mean < -rope) {
      result.p_a_better = 1.0;
    } else if (mean > rope) {
      result.p_b_better = 1.0;
    } else {
      result.p_rope = 1.0;
    }
    return result;
  }

  // Posterior of the mean difference is a Student-t with n-1 dof, location
  // mean, and scale inflated by the correlation heuristic (Nadeau & Bengio):
  // scale^2 = (1/n + rho/(1-rho)) * var.
  double scale =
      std::sqrt((1.0 / n + correlation / (1.0 - correlation)) * var);
  double dof = n - 1.0;

  // A better means negative differences (loss_A < loss_B).
  double t_left = (-rope - mean) / scale;
  double t_right = (rope - mean) / scale;
  result.p_a_better = math::StudentTCdf(t_left, dof);
  result.p_b_better = 1.0 - math::StudentTCdf(t_right, dof);
  result.p_rope = 1.0 - result.p_a_better - result.p_b_better;
  if (result.p_rope < 0.0) result.p_rope = 0.0;
  return result;
}

StatusOr<ComparisonResult> BayesSignTest(const math::Vec& diffs, double rope,
                                         size_t mc_samples, Rng& rng,
                                         double prior_weight) {
  if (diffs.empty()) {
    return Status::InvalidArgument("sign test: no differences");
  }
  if (mc_samples == 0) {
    return Status::InvalidArgument("sign test: need mc_samples > 0");
  }
  double n_left = 0, n_rope = 0, n_right = 0;
  for (double d : diffs) {
    if (d < -rope) {
      ++n_left;
    } else if (d > rope) {
      ++n_right;
    } else {
      ++n_rope;
    }
  }

  // Dirichlet posterior: alpha = counts + prior (prior mass on the rope).
  double a_left = n_left, a_rope = n_rope + prior_weight, a_right = n_right;
  // Guard against zero alphas (gamma(0) undefined): tiny epsilon.
  a_left = std::max(a_left, 1e-6);
  a_rope = std::max(a_rope, 1e-6);
  a_right = std::max(a_right, 1e-6);

  ComparisonResult result;
  std::gamma_distribution<double> g_left(a_left, 1.0);
  std::gamma_distribution<double> g_rope(a_rope, 1.0);
  std::gamma_distribution<double> g_right(a_right, 1.0);
  for (size_t s = 0; s < mc_samples; ++s) {
    double x = g_left(rng.engine());
    double y = g_rope(rng.engine());
    double z = g_right(rng.engine());
    if (x > y && x > z) {
      result.p_a_better += 1.0;
    } else if (z > x && z > y) {
      result.p_b_better += 1.0;
    } else {
      result.p_rope += 1.0;
    }
  }
  double inv = 1.0 / static_cast<double>(mc_samples);
  result.p_a_better *= inv;
  result.p_rope *= inv;
  result.p_b_better *= inv;
  return result;
}

}  // namespace eadrl::stats
