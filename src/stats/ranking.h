#ifndef EADRL_STATS_RANKING_H_
#define EADRL_STATS_RANKING_H_

#include <string>
#include <vector>

#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::stats {

/// Average rank and dispersion of one method across datasets.
struct RankSummary {
  std::string method;
  double mean_rank = 0.0;
  double stddev_rank = 0.0;
};

/// Computes per-dataset fractional ranks from an error matrix
/// (rows = datasets, cols = methods; lower error = better = lower rank) and
/// summarizes each method's rank distribution, as in the paper's
/// "Avg. Rank" column of Table II.
std::vector<RankSummary> SummarizeRanks(const math::Matrix& errors,
                                        const std::vector<std::string>& names);

/// Per-dataset fractional ranks of each method (same shape as `errors`).
math::Matrix RankMatrix(const math::Matrix& errors);

}  // namespace eadrl::stats

#endif  // EADRL_STATS_RANKING_H_
