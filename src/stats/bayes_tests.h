#ifndef EADRL_STATS_BAYES_TESTS_H_
#define EADRL_STATS_BAYES_TESTS_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "math/vec.h"

namespace eadrl::stats {

/// Posterior probabilities of a pairwise comparison between methods A and B:
/// `p_a_better` is the posterior mass where A has lower loss, `p_rope` the
/// mass inside the region of practical equivalence, `p_b_better` the rest.
struct ComparisonResult {
  double p_a_better = 0.0;
  double p_rope = 0.0;
  double p_b_better = 0.0;
};

/// Bayesian correlated t-test (Benavoli et al. 2017, Sec. 4.1) on paired
/// loss differences d_i = loss_A(i) - loss_B(i) from one dataset.
/// `correlation` models the dependence between the paired samples (the
/// overlapping-training-data correlation; 0 gives the standard Bayesian
/// t-test). `rope` is the half-width of the region of practical equivalence
/// on the difference scale.
StatusOr<ComparisonResult> BayesianCorrelatedTTest(const math::Vec& diffs,
                                                   double correlation,
                                                   double rope);

/// Bayes sign test (Benavoli et al. 2017, Sec. 4.3) across datasets: counts
/// of {A better, rope, B better} get a Dirichlet posterior (prior strength
/// `prior_weight` on the rope) sampled by Monte Carlo.
StatusOr<ComparisonResult> BayesSignTest(const math::Vec& diffs, double rope,
                                         size_t mc_samples, Rng& rng,
                                         double prior_weight = 0.5);

}  // namespace eadrl::stats

#endif  // EADRL_STATS_BAYES_TESTS_H_
