#include "stats/ranking.h"

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::stats {

math::Matrix RankMatrix(const math::Matrix& errors) {
  math::Matrix ranks(errors.rows(), errors.cols());
  for (size_t d = 0; d < errors.rows(); ++d) {
    math::Vec row_ranks = math::FractionalRanks(errors.Row(d));
    ranks.SetRow(d, row_ranks);
  }
  return ranks;
}

std::vector<RankSummary> SummarizeRanks(
    const math::Matrix& errors, const std::vector<std::string>& names) {
  EADRL_CHECK_EQ(errors.cols(), names.size());
  EADRL_CHECK_GT(errors.rows(), 0u);
  math::Matrix ranks = RankMatrix(errors);
  std::vector<RankSummary> out;
  out.reserve(names.size());
  for (size_t m = 0; m < names.size(); ++m) {
    math::Vec col = ranks.Col(m);
    out.push_back({names[m], math::Mean(col), math::Stddev(col)});
  }
  return out;
}

}  // namespace eadrl::stats
