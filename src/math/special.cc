#include "math/special.h"

#include <cmath>

#include "common/check.h"

namespace eadrl::math {

double LogGamma(double x) {
  EADRL_CHECK_GT(x, 0.0);
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes' betacf).
double BetaContinuedFraction(double a, double b, double x) {
  const int kMaxIter = 300;
  const double kEps = 3e-14;
  const double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  EADRL_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double ln_beta =
      LogGamma(a + b) - LogGamma(a) - LogGamma(b) + a * std::log(x) +
      b * std::log(1.0 - x);
  double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double dof) {
  EADRL_CHECK_GT(dof, 0.0);
  double x = dof / (dof + t * t);
  double p = 0.5 * RegularizedIncompleteBeta(0.5 * dof, 0.5, x);
  return t > 0 ? 1.0 - p : p;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double RegularizedLowerIncompleteGamma(double a, double x) {
  EADRL_CHECK_GT(a, 0.0);
  EADRL_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;

  if (x < a + 1.0) {
    // Series representation (Numerical Recipes' gser).
    double sum = 1.0 / a;
    double term = sum;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }

  // Continued fraction for Q(a, x) (Numerical Recipes' gcf).
  const double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  double q = std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
  return 1.0 - q;
}

}  // namespace eadrl::math
