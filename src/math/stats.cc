#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace eadrl::math {

double Mean(const Vec& v) {
  EADRL_CHECK(!v.empty());
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double Variance(const Vec& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double Stddev(const Vec& v) { return std::sqrt(Variance(v)); }

double Median(Vec v) {
  EADRL_CHECK(!v.empty());
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(Vec v, double q) {
  EADRL_CHECK(!v.empty());
  EADRL_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Min(const Vec& v) {
  EADRL_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Max(const Vec& v) {
  EADRL_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double Covariance(const Vec& a, const Vec& b) {
  EADRL_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - ma) * (b[i] - mb);
  return s / static_cast<double>(a.size() - 1);
}

double PearsonCorrelation(const Vec& a, const Vec& b) {
  double sa = Stddev(a), sb = Stddev(b);
  if (sa == 0.0 || sb == 0.0) return 0.0;
  return Covariance(a, b) / (sa * sb);
}

double Autocorrelation(const Vec& v, size_t lag) {
  EADRL_CHECK_LT(lag, v.size());
  double m = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    den += (v[i] - m) * (v[i] - m);
    if (i + lag < v.size()) num += (v[i] - m) * (v[i + lag] - m);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

Vec FractionalRanks(const Vec& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return v[a] < v[b]; });
  Vec ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Average the 1-based ranks i+1 .. j+1 across the tie group.
    double avg = 0.5 * static_cast<double>(i + 1 + j + 1);
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace eadrl::math
