#ifndef EADRL_MATH_MATRIX_H_
#define EADRL_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "math/vec.h"

namespace eadrl::math {

/// Dense row-major matrix of doubles.
///
/// Designed for the small/medium problems in this library (regression design
/// matrices, network weight blocks, covariance matrices). Copyable and
/// movable.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (for tests).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Builds a matrix whose rows are the given vectors (all equal length).
  static Matrix FromRows(const std::vector<Vec>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    EADRL_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    EADRL_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copies row i into a vector.
  Vec Row(size_t i) const;
  /// Copies column j into a vector.
  Vec Col(size_t j) const;
  /// Overwrites row i.
  void SetRow(size_t i, const Vec& row);

  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix MatMul(const Matrix& other) const;

  /// Matrix-vector product this * x.
  Vec MatVec(const Vec& x) const;

  /// x^T * this (i.e. Transpose().MatVec(x) without materializing).
  Vec TransposeMatVec(const Vec& x) const;

  /// In-place this += alpha * other (same shape).
  void AddScaled(const Matrix& other, double alpha);

  /// In-place scalar multiply.
  void Scale(double s);

  /// Fills all entries with v.
  void Fill(double v);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns the maximum absolute entry.
  double MaxAbs() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace eadrl::math

#endif  // EADRL_MATH_MATRIX_H_
