#ifndef EADRL_MATH_MATRIX_H_
#define EADRL_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/check.h"
#include "math/vec.h"

namespace eadrl::math {

/// Dense row-major matrix of doubles.
///
/// Designed for the small/medium problems in this library (regression design
/// matrices, network weight blocks, covariance matrices). Copyable and
/// movable.
///
/// Determinism contract (see DESIGN.md, "Batch-major kernels"): every product
/// kernel below — blocked or fused — accumulates each output element over the
/// contraction index in ascending order, so tiling and the fused-transpose
/// variants are bit-identical to the naive loops for finite inputs (the only
/// divergence is the sign of exact-zero results, since `x + 0.0` normalizes
/// `-0.0` to `+0.0`).
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (for tests).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Builds a matrix whose rows are the given vectors (all equal length).
  static Matrix FromRows(const std::vector<Vec>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reshapes to rows x cols without shrinking capacity; contents are
  /// unspecified afterwards. The workhorse of scratch reuse: a warmed-up
  /// buffer resized to the same (or smaller) shape never reallocates.
  void Resize(size_t rows, size_t cols);

  double& operator()(size_t i, size_t j) {
    EADRL_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    EADRL_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Pointer to the start of row i (rows are contiguous).
  const double* RowPtr(size_t i) const { return &data_[i * cols_]; }
  double* RowPtr(size_t i) { return &data_[i * cols_]; }

  /// Copies row i into a vector.
  Vec Row(size_t i) const;
  /// Copies column j into a vector.
  Vec Col(size_t j) const;
  /// Copies row i into *out (resized; no allocation once warm).
  void RowInto(size_t i, Vec* out) const;
  /// Copies column j into *out (resized; no allocation once warm).
  void ColInto(size_t j, Vec* out) const;
  /// Overwrites row i.
  void SetRow(size_t i, const Vec& row);

  Matrix Transpose() const;

  /// Matrix product this * other.
  Matrix MatMul(const Matrix& other) const;
  /// this * other into *out (resized; no allocation once warm).
  void MatMulInto(const Matrix& other, Matrix* out) const;

  /// Fused this^T * other without materializing Transpose(). The batched
  /// backprop weight-gradient kernel: with `accumulate`, adds into *out
  /// instead of overwriting — contributions land per output element in
  /// ascending row order of `this`, exactly like per-sample accumulation.
  Matrix MatMulTransposeA(const Matrix& other) const;
  void MatMulTransposeAInto(const Matrix& other, Matrix* out,
                            bool accumulate = false) const;

  /// Fused this * other^T without materializing Transpose(). The batched
  /// forward kernel (batch-major X times weight W gives X * W^T).
  Matrix MatMulTransposeB(const Matrix& other) const;
  void MatMulTransposeBInto(const Matrix& other, Matrix* out) const;

  /// Matrix-vector product this * x.
  Vec MatVec(const Vec& x) const;
  /// this * x into *out (resized; no allocation once warm).
  void MatVecInto(const Vec& x, Vec* out) const;

  /// x^T * this (i.e. Transpose().MatVec(x) without materializing).
  Vec TransposeMatVec(const Vec& x) const;
  /// x^T * this into *out (resized; no allocation once warm).
  void TransposeMatVecInto(const Vec& x, Vec* out) const;

  /// In-place this += alpha * other (same shape).
  void AddScaled(const Matrix& other, double alpha);

  /// In-place scalar multiply.
  void Scale(double s);

  /// Fills all entries with v.
  void Fill(double v);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Returns the maximum absolute entry.
  double MaxAbs() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Row-wise softmax in place — each row is mapped through exactly the same
/// max-shift/exp/normalize steps as math::Softmax, so a batched row equals
/// the vector call on that row bit for bit.
void SoftmaxRowsInPlace(Matrix* m);

}  // namespace eadrl::math

#endif  // EADRL_MATH_MATRIX_H_
