#include "math/matrix.h"

#include <algorithm>
#include <cmath>

#include "chk/chk.h"
#include "obs/resource.h"

namespace eadrl::math {

namespace {
// Matrix/vector results below are the scratch churn on the nn/rl hot paths;
// reporting them lets spans attribute allocation pressure (see
// obs/resource.h). ~1 ns per call, so unconditional is fine. The *Into
// variants deliberately do not report: reusing a warm buffer is not an
// allocation, and the span counters exist to surface exactly that difference.
inline void CountScratch(size_t doubles) {
  obs::CountAlloc(doubles * sizeof(double));
}

// Rows per register tile of the product kernels: four output rows share one
// streamed row of the right-hand operand, so the inner loop is four
// independent fused multiply-add chains over contiguous memory — wide enough
// to keep vector units busy, narrow enough to stay in registers.
constexpr size_t kRowBlock = 4;
}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EADRL_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  EADRL_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i]);
  return m;
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Vec Matrix::Row(size_t i) const {
  EADRL_CHECK_LT(i, rows_);
  CountScratch(cols_);
  return Vec(data_.begin() + i * cols_, data_.begin() + (i + 1) * cols_);
}

Vec Matrix::Col(size_t j) const {
  EADRL_CHECK_LT(j, cols_);
  CountScratch(rows_);
  Vec out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

void Matrix::RowInto(size_t i, Vec* out) const {
  EADRL_CHECK_LT(i, rows_);
  out->assign(data_.begin() + i * cols_, data_.begin() + (i + 1) * cols_);
}

void Matrix::ColInto(size_t j, Vec* out) const {
  EADRL_CHECK_LT(j, cols_);
  out->resize(rows_);
  for (size_t i = 0; i < rows_; ++i) (*out)[i] = data_[i * cols_ + j];
}

void Matrix::SetRow(size_t i, const Vec& row) {
  EADRL_CHECK_LT(i, rows_);
  EADRL_CHECK_EQ(row.size(), cols_);
  for (size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] = row[j];
}

Matrix Matrix::Transpose() const {
  CountScratch(data_.size());
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CountScratch(rows_ * other.cols_);
  Matrix out;
  MatMulInto(other, &out);
  return out;
}

void Matrix::MatMulInto(const Matrix& other, Matrix* out) const {
  EADRL_CHK_DIM(other.rows_, cols_, "Matrix::MatMul inner dimension");
  EADRL_CHECK_EQ(cols_, other.rows_);
  EADRL_CHECK(out != this && out != &other);
  const size_t n = other.cols_;
  out->Resize(rows_, n);
  std::fill(out->data_.begin(), out->data_.end(), 0.0);
  // Register-blocked i/k/j: kRowBlock output rows at a time, k sequential,
  // contiguous j innermost. Each output element still accumulates over k in
  // ascending order, so the tiling is bit-identical to the naive loop; the
  // branch-free inner loop (no `a == 0.0` skip) only normalizes the sign of
  // exact-zero results.
  size_t i = 0;
  for (; i + kRowBlock <= rows_; i += kRowBlock) {
    const double* a0 = &data_[(i + 0) * cols_];
    const double* a1 = &data_[(i + 1) * cols_];
    const double* a2 = &data_[(i + 2) * cols_];
    const double* a3 = &data_[(i + 3) * cols_];
    double* o0 = &out->data_[(i + 0) * n];
    double* o1 = &out->data_[(i + 1) * n];
    double* o2 = &out->data_[(i + 2) * n];
    double* o3 = &out->data_[(i + 3) * n];
    for (size_t k = 0; k < cols_; ++k) {
      const double* brow = &other.data_[k * n];
      const double c0 = a0[k];
      const double c1 = a1[k];
      const double c2 = a2[k];
      const double c3 = a3[k];
      for (size_t j = 0; j < n; ++j) {
        const double b = brow[j];
        o0[j] += c0 * b;
        o1[j] += c1 * b;
        o2[j] += c2 * b;
        o3[j] += c3 * b;
      }
    }
  }
  for (; i < rows_; ++i) {
    const double* arow = &data_[i * cols_];
    double* orow = &out->data_[i * n];
    for (size_t k = 0; k < cols_; ++k) {
      const double a = arow[k];
      const double* brow = &other.data_[k * n];
      for (size_t j = 0; j < n; ++j) orow[j] += a * brow[j];
    }
  }
}

Matrix Matrix::MatMulTransposeA(const Matrix& other) const {
  CountScratch(cols_ * other.cols_);
  Matrix out;
  MatMulTransposeAInto(other, &out);
  return out;
}

void Matrix::MatMulTransposeAInto(const Matrix& other, Matrix* out,
                                  bool accumulate) const {
  // this is K x M, other is K x N; out = this^T * other is M x N.
  EADRL_CHK_DIM(other.rows_, rows_, "Matrix::MatMulTransposeA row count");
  EADRL_CHECK_EQ(rows_, other.rows_);
  EADRL_CHECK(out != this && out != &other);
  const size_t n = other.cols_;
  if (accumulate) {
    EADRL_CHECK(out->rows_ == cols_ && out->cols_ == n);
  } else {
    out->Resize(cols_, n);
    std::fill(out->data_.begin(), out->data_.end(), 0.0);
  }
  // k outermost: row k of `this` broadcasts down column i while row k of
  // `other` streams across j. Per output element the k contributions arrive
  // in ascending order — the same order as Transpose().MatMul(other) and,
  // when k indexes batch samples, the same order as per-sample gradient
  // accumulation.
  for (size_t k = 0; k < rows_; ++k) {
    const double* arow = &data_[k * cols_];
    const double* brow = &other.data_[k * n];
    for (size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      double* orow = &out->data_[i * n];
      for (size_t j = 0; j < n; ++j) orow[j] += a * brow[j];
    }
  }
}

Matrix Matrix::MatMulTransposeB(const Matrix& other) const {
  CountScratch(rows_ * other.rows_);
  Matrix out;
  MatMulTransposeBInto(other, &out);
  return out;
}

void Matrix::MatMulTransposeBInto(const Matrix& other, Matrix* out) const {
  // this is M x K, other is N x K; out = this * other^T is M x N.
  EADRL_CHK_DIM(other.cols_, cols_, "Matrix::MatMulTransposeB column count");
  EADRL_CHECK_EQ(cols_, other.cols_);
  EADRL_CHECK(out != this && out != &other);
  const size_t n = other.rows_;
  out->Resize(rows_, n);
  // Both operands are traversed along contiguous rows; out[i][j] is the dot
  // of row i with row j, accumulated over k in ascending order. Four output
  // columns per pass share each load of the left row (independent
  // accumulator chains — the register tile).
  for (size_t i = 0; i < rows_; ++i) {
    const double* arow = &data_[i * cols_];
    double* orow = &out->data_[i * n];
    size_t j = 0;
    for (; j + kRowBlock <= n; j += kRowBlock) {
      const double* b0 = &other.data_[(j + 0) * cols_];
      const double* b1 = &other.data_[(j + 1) * cols_];
      const double* b2 = &other.data_[(j + 2) * cols_];
      const double* b3 = &other.data_[(j + 3) * cols_];
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double a = arow[k];
        s0 += a * b0[k];
        s1 += a * b1[k];
        s2 += a * b2[k];
        s3 += a * b3[k];
      }
      orow[j + 0] = s0;
      orow[j + 1] = s1;
      orow[j + 2] = s2;
      orow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* brow = &other.data_[j * cols_];
      double s = 0.0;
      for (size_t k = 0; k < cols_; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
}

Vec Matrix::MatVec(const Vec& x) const {
  CountScratch(rows_);
  Vec out;
  MatVecInto(x, &out);
  return out;
}

void Matrix::MatVecInto(const Vec& x, Vec* out) const {
  EADRL_CHK_DIM(x.size(), cols_, "Matrix::MatVec operand");
  EADRL_CHECK_EQ(x.size(), cols_);
  EADRL_CHECK(out != &x);
  out->resize(rows_);
  // Four rows per pass share each load of x (independent accumulator
  // chains); each output element sums over j in ascending order, identical
  // to the single-row loop.
  size_t i = 0;
  for (; i + kRowBlock <= rows_; i += kRowBlock) {
    const double* r0 = &data_[(i + 0) * cols_];
    const double* r1 = &data_[(i + 1) * cols_];
    const double* r2 = &data_[(i + 2) * cols_];
    const double* r3 = &data_[(i + 3) * cols_];
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    for (size_t j = 0; j < cols_; ++j) {
      const double xj = x[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    (*out)[i + 0] = s0;
    (*out)[i + 1] = s1;
    (*out)[i + 2] = s2;
    (*out)[i + 3] = s3;
  }
  for (; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    (*out)[i] = s;
  }
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  CountScratch(cols_);
  Vec out;
  TransposeMatVecInto(x, &out);
  return out;
}

void Matrix::TransposeMatVecInto(const Vec& x, Vec* out) const {
  EADRL_CHK_DIM(x.size(), rows_, "Matrix::TransposeMatVec operand");
  EADRL_CHECK_EQ(x.size(), rows_);
  EADRL_CHECK(out != &x);
  out->assign(cols_, 0.0);
  // Branch-free (the old `xi == 0.0` skip defeated vectorization); per
  // output element the i contributions arrive in ascending order either way.
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    const double xi = x[i];
    for (size_t j = 0; j < cols_; ++j) (*out)[j] += xi * row[j];
  }
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  EADRL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

void SoftmaxRowsInPlace(Matrix* m) {
  EADRL_CHECK(m->cols() > 0);
  const size_t cols = m->cols();
  for (size_t i = 0; i < m->rows(); ++i) {
    double* row = m->RowPtr(i);
    // Same max-shift/exp/normalize sequence as math::Softmax, element order
    // included, so each row matches the vector call bit for bit.
    double mx = row[0];
    for (size_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    for (size_t j = 0; j < cols; ++j) row[j] /= sum;
  }
}

}  // namespace eadrl::math
