#include "math/matrix.h"

#include <cmath>

#include "chk/chk.h"
#include "obs/resource.h"

namespace eadrl::math {

namespace {
// Matrix/vector results below are the scratch churn on the nn/rl hot paths;
// reporting them lets spans attribute allocation pressure (see
// obs/resource.h). ~1 ns per call, so unconditional is fine.
inline void CountScratch(size_t doubles) {
  obs::CountAlloc(doubles * sizeof(double));
}
}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EADRL_CHECK_EQ(r.size(), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  EADRL_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) m.SetRow(i, rows[i]);
  return m;
}

Vec Matrix::Row(size_t i) const {
  EADRL_CHECK_LT(i, rows_);
  CountScratch(cols_);
  return Vec(data_.begin() + i * cols_, data_.begin() + (i + 1) * cols_);
}

Vec Matrix::Col(size_t j) const {
  EADRL_CHECK_LT(j, cols_);
  CountScratch(rows_);
  Vec out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

void Matrix::SetRow(size_t i, const Vec& row) {
  EADRL_CHECK_LT(i, rows_);
  EADRL_CHECK_EQ(row.size(), cols_);
  for (size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] = row[j];
}

Matrix Matrix::Transpose() const {
  CountScratch(data_.size());
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  EADRL_CHK_DIM(other.rows_, cols_, "Matrix::MatMul inner dimension");
  EADRL_CHECK_EQ(cols_, other.rows_);
  CountScratch(rows_ * other.cols_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Vec Matrix::MatVec(const Vec& x) const {
  EADRL_CHK_DIM(x.size(), cols_, "Matrix::MatVec operand");
  EADRL_CHECK_EQ(x.size(), cols_);
  CountScratch(rows_);
  Vec out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    out[i] = s;
  }
  return out;
}

Vec Matrix::TransposeMatVec(const Vec& x) const {
  EADRL_CHK_DIM(x.size(), rows_, "Matrix::TransposeMatVec operand");
  EADRL_CHECK_EQ(x.size(), rows_);
  CountScratch(cols_);
  Vec out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) out[j] += xi * row[j];
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  EADRL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace eadrl::math
