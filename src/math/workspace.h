#ifndef EADRL_MATH_WORKSPACE_H_
#define EADRL_MATH_WORKSPACE_H_

#include <cstddef>
#include <deque>

#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::math {

/// Arena of reusable scratch buffers for hot paths that would otherwise
/// allocate fresh temporaries per call (the `MatVec`/`Row`/`Col` churn the
/// allocation counters in obs/resource.h were built to surface).
///
/// Buffers are addressed by a caller-chosen slot index: `ws.mat(3, n, m)`
/// always returns the same underlying matrix, resized to the requested
/// shape. After the first call at a given shape the buffer is warm and the
/// request never allocates. Contents are unspecified on checkout — callers
/// overwrite (the matrix kernels' *Into variants do).
///
/// Lifetime rules (see DESIGN.md, "Batch-major kernels"): a checked-out
/// reference stays valid until the Workspace is destroyed — growth never
/// moves existing buffers — but its *contents* only until the next checkout
/// of the same slot. Not thread-safe; give each worker its own Workspace.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The slot's matrix, reshaped to rows x cols (contents unspecified).
  Matrix& mat(size_t slot, size_t rows, size_t cols) {
    if (slot >= mats_.size()) mats_.resize(slot + 1);
    mats_[slot].Resize(rows, cols);
    return mats_[slot];
  }

  /// The slot's vector, resized to n (contents unspecified).
  Vec& vec(size_t slot, size_t n) {
    if (slot >= vecs_.size()) vecs_.resize(slot + 1);
    vecs_[slot].resize(n);
    return vecs_[slot];
  }

  /// Drops all buffers (capacity included). Mainly for tests.
  void Clear() {
    mats_.clear();
    vecs_.clear();
  }

 private:
  // deque: growth never moves existing elements, so handed-out references
  // survive later checkouts of new slots.
  std::deque<Matrix> mats_;
  std::deque<Vec> vecs_;
};

}  // namespace eadrl::math

#endif  // EADRL_MATH_WORKSPACE_H_
