#include "math/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eadrl::math {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          return Status::InvalidArgument(
              "CholeskyFactor: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

namespace {

// Solves L y = b (forward) then L^T x = y (backward) in place.
Vec CholeskyBackSubstitute(const Matrix& l, const Vec& b) {
  const size_t n = l.rows();
  Vec y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vec x(n);
  for (size_t ii = 0; ii < n; ++ii) {
    size_t i = n - 1 - ii;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

}  // namespace

StatusOr<Vec> CholeskySolve(const Matrix& a, const Vec& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("CholeskySolve: dimension mismatch");
  }
  StatusOr<Matrix> l = CholeskyFactor(a);
  if (!l.ok()) return l.status();
  return CholeskyBackSubstitute(*l, b);
}

StatusOr<Vec> LuSolve(const Matrix& a, const Vec& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("LuSolve: dimension mismatch");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude in the column.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return Status::InvalidArgument("LuSolve: matrix is singular");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(lu(col, j), lu(pivot, j));
      std::swap(perm[col], perm[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (size_t j = col + 1; j < n; ++j) lu(r, j) -= f * lu(col, j);
    }
  }

  // Apply permutation to b, then forward/backward substitution.
  Vec y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[perm[i]];
    for (size_t k = 0; k < i; ++k) s -= lu(i, k) * y[k];
    y[i] = s;
  }
  Vec x(n);
  for (size_t ii = 0; ii < n; ++ii) {
    size_t i = n - 1 - ii;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= lu(i, k) * x[k];
    x[i] = s / lu(i, i);
  }
  return x;
}

StatusOr<Vec> SolveRidge(const Matrix& x, const Vec& y, double lambda) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("SolveRidge: dimension mismatch");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("SolveRidge: lambda must be >= 0");
  }
  const size_t p = x.cols();
  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix xtx(p, p);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t a = 0; a < p; ++a) {
      double xa = x(i, a);
      if (xa == 0.0) continue;
      for (size_t b = a; b < p; ++b) xtx(a, b) += xa * x(i, b);
    }
  }
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += lambda + 1e-10;
  }
  Vec xty = x.TransposeMatVec(y);
  return CholeskySolve(xtx, xty);
}

StatusOr<EigenResult> JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                           double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigenSymmetric: must be square");
  }
  const size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    if (off < tol) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by eigenvalue, descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Vec diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

StatusOr<Matrix> CholeskyInverse(const Matrix& a) {
  StatusOr<Matrix> l = CholeskyFactor(a);
  if (!l.ok()) return l.status();
  const size_t n = a.rows();
  Matrix inv(n, n);
  for (size_t j = 0; j < n; ++j) {
    Vec e(n, 0.0);
    e[j] = 1.0;
    Vec col = CholeskyBackSubstitute(*l, e);
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

}  // namespace eadrl::math
