#ifndef EADRL_MATH_STATS_H_
#define EADRL_MATH_STATS_H_

#include <cstddef>
#include <vector>

#include "math/vec.h"

namespace eadrl::math {

/// Arithmetic mean. Requires a non-empty input.
double Mean(const Vec& v);

/// Unbiased sample variance (denominator n-1); 0 for n < 2.
double Variance(const Vec& v);

/// Sample standard deviation.
double Stddev(const Vec& v);

/// Median (copies and partially sorts).
double Median(Vec v);

/// Linear-interpolated quantile, q in [0, 1].
double Quantile(Vec v, double q);

double Min(const Vec& v);
double Max(const Vec& v);

/// Sample covariance between two equally sized vectors.
double Covariance(const Vec& a, const Vec& b);

/// Pearson correlation; 0 if either vector is constant.
double PearsonCorrelation(const Vec& a, const Vec& b);

/// Sample autocorrelation of the series at the given lag.
double Autocorrelation(const Vec& v, size_t lag);

/// Fractional (average) ranks, 1-based: the smallest value gets rank 1;
/// ties receive the average of the ranks they span.
Vec FractionalRanks(const Vec& v);

}  // namespace eadrl::math

#endif  // EADRL_MATH_STATS_H_
