#ifndef EADRL_MATH_VEC_H_
#define EADRL_MATH_VEC_H_

#include <vector>

namespace eadrl::math {

/// Dense double vector used across the library.
using Vec = std::vector<double>;

/// Dot product of equally sized vectors.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm2(const Vec& a);

/// Elementwise sum a + b.
Vec Add(const Vec& a, const Vec& b);

/// Elementwise difference a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Scalar multiple s * a.
Vec Scale(const Vec& a, double s);

/// Elementwise (Hadamard) product.
Vec Hadamard(const Vec& a, const Vec& b);

/// In-place y += alpha * x.
void Axpy(double alpha, const Vec& x, Vec* y);

/// Numerically stable softmax.
Vec Softmax(const Vec& a);

/// Projects onto the probability simplex by clipping negatives to zero and
/// renormalizing; falls back to uniform if everything is non-positive.
Vec NormalizeToSimplex(const Vec& a);

/// Euclidean projection onto the probability simplex (Duchi et al. 2008).
/// Used by the OGD expert-aggregation baseline.
Vec ProjectToSimplex(const Vec& a);

}  // namespace eadrl::math

#endif  // EADRL_MATH_VEC_H_
