#ifndef EADRL_MATH_LINALG_H_
#define EADRL_MATH_LINALG_H_

#include <vector>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::math {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Returns the lower-triangular factor L, or InvalidArgument if A is
/// not (numerically) positive definite.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
StatusOr<Vec> CholeskySolve(const Matrix& a, const Vec& b);

/// Solves A x = b for square A via LU decomposition with partial pivoting.
/// Returns InvalidArgument if A is singular to working precision.
StatusOr<Vec> LuSolve(const Matrix& a, const Vec& b);

/// Ridge-regularized least squares: minimizes |X w - y|^2 + lambda |w|^2.
/// Solved through the normal equations with Cholesky; lambda > 0 guarantees
/// positive-definiteness.
StatusOr<Vec> SolveRidge(const Matrix& x, const Vec& y, double lambda);

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T, with
/// eigenvalues sorted in descending order and eigenvectors as columns of V.
struct EigenResult {
  Vec values;
  Matrix vectors;
};

/// Cyclic Jacobi eigendecomposition for a symmetric matrix.
StatusOr<EigenResult> JacobiEigenSymmetric(const Matrix& a,
                                           int max_sweeps = 100,
                                           double tol = 1e-12);

/// Inverse of a symmetric positive-definite matrix via Cholesky.
StatusOr<Matrix> CholeskyInverse(const Matrix& a);

}  // namespace eadrl::math

#endif  // EADRL_MATH_LINALG_H_
