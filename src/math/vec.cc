#include "math/vec.h"

#include <algorithm>
#include <cmath>

#include "chk/chk.h"
#include "common/check.h"
#include "obs/resource.h"

namespace eadrl::math {

double Dot(const Vec& a, const Vec& b) {
  EADRL_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

Vec Add(const Vec& a, const Vec& b) {
  EADRL_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  EADRL_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scale(const Vec& a, double s) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Vec Hadamard(const Vec& a, const Vec& b) {
  EADRL_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

void Axpy(double alpha, const Vec& x, Vec* y) {
  EADRL_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

Vec Softmax(const Vec& a) {
  EADRL_CHECK(!a.empty());
  obs::CountAlloc(a.size() * sizeof(double));
  double mx = *std::max_element(a.begin(), a.end());
  Vec out(a.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = std::exp(a[i] - mx);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
  // Softmax of any finite logits lies on the simplex; a violation means the
  // logits (i.e. the upstream network) were already poisoned.
  EADRL_CHK_SIMPLEX(out, 1e-6, "math::Softmax output");
  return out;
}

Vec NormalizeToSimplex(const Vec& a) {
  EADRL_CHECK(!a.empty());
  Vec out(a.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = std::max(0.0, a[i]);
    sum += out[i];
  }
  if (sum <= 0.0 || !std::isfinite(sum)) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(a.size()));
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

Vec ProjectToSimplex(const Vec& a) {
  EADRL_CHECK(!a.empty());
  // Sort descending, find the largest k with u_k + (1 - sum_{i<=k} u_i)/k > 0.
  Vec u = a;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double theta = 0.0;
  size_t k = 0;
  for (size_t i = 0; i < u.size(); ++i) {
    cumsum += u[i];
    double candidate = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      theta = candidate;
      k = i + 1;
    }
  }
  if (k == 0) {
    return Vec(a.size(), 1.0 / static_cast<double>(a.size()));
  }
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::max(0.0, a[i] - theta);
  EADRL_CHK_SIMPLEX(out, 1e-6, "math::ProjectToSimplex output");
  return out;
}

}  // namespace eadrl::math
