#ifndef EADRL_MATH_SPECIAL_H_
#define EADRL_MATH_SPECIAL_H_

namespace eadrl::math {

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b), x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of the Student-t distribution with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// Standard normal CDF.
double NormalCdf(double x);

/// Regularized lower incomplete gamma function P(a, x).
double RegularizedLowerIncompleteGamma(double a, double x);

}  // namespace eadrl::math

#endif  // EADRL_MATH_SPECIAL_H_
