#ifndef EADRL_RL_ENV_H_
#define EADRL_RL_ENV_H_

#include <deque>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::rl {

/// Reward definitions studied in the paper (Sec. II-B and Fig. 2).
enum class RewardType {
  /// Rank-based reward (Eq. 3): r = m + 1 - rank(ensemble) where all m base
  /// models plus the ensemble are ranked by forecasting error over the
  /// current validation window (lower error = better rank).
  kRank,
  /// Ablation reward: 1 - NRMSE of the ensemble over the window; shown in
  /// Fig. 2a to prevent convergence because its magnitude tracks the
  /// time-varying scale of the series.
  kOneMinusNrmse,
};

/// The ensemble-aggregation MDP of paper Sec. II-B, built on precomputed
/// base-model predictions over a validation segment.
///
/// * State s_t: the window of the last omega *ensemble outputs* (not raw
///   series values), so the state reflects both the series dynamics and the
///   effect of past actions.
/// * Action a_t: the m-dimensional weight vector applied at time t+1.
/// * Transition: deterministic — slide the window and append the new
///   ensemble output.
/// * Reward: see RewardType.
class EnsembleEnv {
 public:
  /// `predictions` is T x m (one row per validation time step, one column
  /// per base model); `actuals` has length T. `omega` is the window size.
  /// `diversity_coef` implements the paper's future-work suggestion of a
  /// diversity-aware reward: the normalized weighted dispersion of the base
  /// predictions around the ensemble output over the window, scaled by the
  /// coefficient, is added to the base reward (0 disables).
  EnsembleEnv(math::Matrix predictions, math::Vec actuals, size_t omega,
              RewardType reward_type, double diversity_coef = 0.0);

  size_t state_dim() const { return omega_; }
  size_t action_dim() const { return predictions_.cols(); }
  size_t horizon() const { return predictions_.rows() - omega_; }

  /// Starts a new episode. The initial window holds the uniform-weight
  /// ensemble outputs for the first omega steps. Returns the initial state.
  math::Vec Reset();

  /// Applies the weight vector; returns (reward, next_state, done) plus the
  /// ensemble prediction and realized value at the step (for RMSE-based
  /// policy evaluation).
  struct StepResult {
    double reward = 0.0;
    math::Vec next_state;
    bool done = false;
    double ensemble_prediction = 0.0;
    double actual = 0.0;
  };
  StepResult Step(const math::Vec& weights);

  /// Computes the (reward, next_state, done) a weight vector would produce
  /// at the current position WITHOUT advancing the environment. The
  /// transition function is known and deterministic, so peeked transitions
  /// are valid off-policy training data (counterfactual replay).
  StepResult Peek(const math::Vec& weights) const;

  /// Computes the reward a weight vector would earn at position t (exposed
  /// for tests).
  double RewardAt(size_t t, const math::Vec& weights) const;

 private:
  math::Matrix predictions_;
  math::Vec actuals_;
  size_t omega_;
  RewardType reward_type_;
  double diversity_coef_;

  size_t t_ = 0;  // current prediction index (>= omega_).
  std::deque<double> window_;  // last omega ensemble outputs.

  math::Vec StateVec() const;
  math::Vec StateVecFor(const std::deque<double>& window) const;
};

}  // namespace eadrl::rl

#endif  // EADRL_RL_ENV_H_
