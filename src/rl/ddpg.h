#ifndef EADRL_RL_DDPG_H_
#define EADRL_RL_DDPG_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "math/workspace.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "rl/replay_buffer.h"
#include "rl/transition.h"

namespace eadrl::rl {

/// Critic architecture.
enum class CriticForm {
  /// Classic DDPG critic: one MLP taking (state, action) to a scalar Q.
  kMonolithic,
  /// Structured critic: an MLP maps the state to per-model values q(s) and
  /// Q(s, a) = a . q(s). For simplex-weight actions the reward is close to
  /// linear in the weights, so this form identifies per-model quality with
  /// far fewer samples than a monolithic net whose action-gradient must be
  /// estimated in m dimensions; dQ/da = q(s) is exact. Used by default in
  /// EA-DRL (see DESIGN.md, "Key design decisions").
  kLinearInAction,
};

/// Hyper-parameters of the DDPG agent.
struct DdpgConfig {
  size_t state_dim = 0;
  size_t action_dim = 0;
  std::vector<size_t> actor_hidden = {64, 64};
  std::vector<size_t> critic_hidden = {64, 64};
  double actor_lr = 0.001;
  double critic_lr = 0.01;   // the paper tunes alpha = 0.01.
  double gamma = 0.9;        // the paper tunes gamma = 0.9.
  double tau = 0.01;         // soft target update rate.
  /// The actor's raw outputs are scaled by this factor before the softmax.
  double logit_scale = 1.0;
  /// L2 pull of the (scaled) logits toward zero in the actor objective —
  /// the policy pays for moving away from uniform weights, which prevents
  /// the runaway-saturation failure where the actor exploits critic
  /// extrapolation error in never-visited corners of the simplex.
  double logit_l2 = 0.01;
  CriticForm critic_form = CriticForm::kLinearInAction;
  size_t batch_size = 16;
  double grad_clip = 5.0;
  uint64_t seed = 42;
  /// Batch-major Update path: every actor/critic/target evaluation runs as
  /// one batched pass over the minibatch (one GEMM per layer) on reusable
  /// workspace buffers. The per-transition scalar path is kept as the
  /// reference implementation for parity tests; the two match bit for bit
  /// except for the sign of exact-zero gradients (see DESIGN.md).
  bool batched_update = true;
};

/// Per-Update training diagnostics — the telemetry both ensemble-RL lines of
/// related work use to diagnose instability (critic divergence shows up as
/// exploding |Q| and loss; policy collapse as vanishing action entropy).
struct DdpgUpdateStats {
  double critic_loss = 0.0;
  double mean_abs_q = 0.0;       ///< mean |Q(s,a)| over the batch.
  double actor_grad_norm = 0.0;  ///< pre-clip global L2 norm.
  double action_entropy = 0.0;   ///< mean policy-action entropy (nats).
};

/// Deep deterministic policy gradient agent (Lillicrap et al. 2015) for the
/// ensemble-weighting MDP. The actor outputs logits which are mapped through
/// a softmax so actions live on the probability simplex — the paper's
/// "standard normalization ... so that all the weights are positive and sum
/// to one". Exploration noise is added to the logits, keeping noisy actions
/// on the simplex too.
class DdpgAgent {
 public:
  explicit DdpgAgent(const DdpgConfig& config);

  /// Deterministic action (ensemble weights) for a state. Inference-mode:
  /// runs on reusable buffers and stashes no backprop state.
  math::Vec Act(const math::Vec& state);

  /// Batched deterministic actions: row b of the result is Act(row b of
  /// `states`), bit for bit — one batched forward instead of B scalar ones
  /// (cross-request batching for the serving path).
  math::Matrix ActBatch(const math::Matrix& states);

  /// Exploratory action: softmax(logits + noise).
  math::Vec ActWithNoise(const math::Vec& state, const math::Vec& noise);

  /// One DDPG update from a minibatch: critic regression toward the Bellman
  /// target using the target networks, then a deterministic policy-gradient
  /// step on the actor, then soft target updates. Returns the critic loss.
  ///
  /// By default the whole minibatch is evaluated in single batched passes
  /// (config.batched_update): gradient accumulation is one fused-transpose
  /// GEMM per layer whose batch-index summation order equals the scalar
  /// per-transition walk, so results are bit-identical to the reference path
  /// (modulo exact-zero signs) and independent of the thread count.
  double Update(const std::vector<Transition>& batch);

  /// Q-value estimate for diagnostics/tests.
  double QValue(const math::Vec& state, const math::Vec& action);

  /// Snapshot/restore of the actor parameters (used for best-checkpoint
  /// selection during offline training).
  std::vector<math::Matrix> ActorWeights() const;
  void SetActorWeights(const std::vector<math::Matrix>& weights);

  const DdpgConfig& config() const { return config_; }

  /// Diagnostics of the most recent Update (zeros before the first one).
  const DdpgUpdateStats& last_update_stats() const { return last_stats_; }

  /// Total number of Update calls on this agent.
  size_t num_updates() const { return num_updates_; }

 private:
  static math::Vec SoftmaxJacobianVjp(const math::Vec& probs,
                                      const math::Vec& grad_probs);

  math::Vec CriticInput(const math::Vec& state, const math::Vec& action) const;

  /// Batch-major Update path (the default; see Update's contract).
  double UpdateBatched(const std::vector<Transition>& batch);

  /// Per-transition scalar reference path (config.batched_update == false);
  /// the ground truth the batched kernels are tested against.
  double UpdateScalar(const std::vector<Transition>& batch);

  /// Shared tail of both Update paths: discard stray critic gradients from
  /// the actor phase, clip + step the actor, soft-update the targets, and
  /// publish stats/telemetry. Returns the critic loss.
  double FinishUpdate(double critic_loss, double abs_q_sum,
                      double entropy_sum, double inv_n);

  DdpgConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Mlp> actor_;
  std::unique_ptr<nn::Mlp> critic_;
  std::unique_ptr<nn::Mlp> target_actor_;
  std::unique_ptr<nn::Mlp> target_critic_;
  nn::Adam actor_opt_;
  nn::Adam critic_opt_;
  /// Reusable batch-major staging buffers for UpdateBatched (warm after the
  /// first update; slot map in ddpg.cc). Not thread-safe — an agent's Update
  /// runs single-threaded, like the rest of its mutable state.
  math::Workspace ws_;

  DdpgUpdateStats last_stats_;
  size_t num_updates_ = 0;
  // Cached from the default registry (stable pointers; see MetricRegistry).
  obs::Counter* updates_counter_;
  obs::Gauge* critic_loss_gauge_;
  obs::Gauge* mean_abs_q_gauge_;
  obs::Gauge* actor_grad_norm_gauge_;
  obs::Gauge* action_entropy_gauge_;
};

}  // namespace eadrl::rl

#endif  // EADRL_RL_DDPG_H_
