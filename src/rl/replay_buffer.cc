#include "rl/replay_buffer.h"

#include "common/check.h"
#include "math/stats.h"
#include "obs/resource.h"

namespace eadrl::rl {

ReplayBuffer::ReplayBuffer(size_t capacity) : capacity_(capacity) {
  EADRL_CHECK_GT(capacity, 0u);
  buffer_.reserve(capacity);
}

void ReplayBuffer::Add(Transition t) {
  // A non-finite reward silently poisons every Bellman target sampled from
  // this buffer; reject it at the door where the producer is on the stack.
  EADRL_CHK_FINITE_VALUE(t.reward, "ReplayBuffer::Add reward");
  EADRL_CHK_SIMPLEX(t.action, 1e-6, "ReplayBuffer::Add action");
  // Stored payload: the three vectors a transition owns (the Transition
  // struct itself lives in the preallocated ring).
  obs::CountAlloc((t.state.size() + t.action.size() + t.next_state.size()) *
                  sizeof(double));
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(t));
  } else {
    buffer_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

double ReplayBuffer::RewardMedian() const {
  EADRL_CHECK(!buffer_.empty());
  math::Vec rewards(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) rewards[i] = buffer_[i].reward;
  return math::Median(std::move(rewards));
}

std::vector<Transition> ReplayBuffer::Sample(size_t n,
                                             SamplingStrategy strategy,
                                             Rng& rng) const {
  EADRL_CHK(n > 0, "ReplayBuffer::Sample batch size");
  EADRL_CHECK(!buffer_.empty());
  std::vector<Transition> batch;
  batch.reserve(n);

  if (strategy == SamplingStrategy::kUniform || buffer_.size() < 2) {
    for (size_t i = 0; i < n; ++i) batch.push_back(buffer_[rng.Index(size())]);
    return batch;
  }

  // Median split: indices with reward >= median vs. below.
  double median = RewardMedian();
  std::vector<size_t> high, low;
  for (size_t i = 0; i < buffer_.size(); ++i) {
    if (buffer_[i].reward >= median) {
      high.push_back(i);
    } else {
      low.push_back(i);
    }
  }
  if (high.empty() || low.empty()) {
    // All rewards equal — fall back to uniform.
    for (size_t i = 0; i < n; ++i) batch.push_back(buffer_[rng.Index(size())]);
    return batch;
  }

  size_t n_high = n / 2;
  size_t n_low = n - n_high;
  for (size_t i = 0; i < n_high; ++i) {
    batch.push_back(buffer_[high[rng.Index(high.size())]]);
  }
  for (size_t i = 0; i < n_low; ++i) {
    batch.push_back(buffer_[low[rng.Index(low.size())]]);
  }
  return batch;
}

}  // namespace eadrl::rl
