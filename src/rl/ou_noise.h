#ifndef EADRL_RL_OU_NOISE_H_
#define EADRL_RL_OU_NOISE_H_

#include "common/rng.h"
#include "math/vec.h"

namespace eadrl::rl {

/// Ornstein–Uhlenbeck exploration noise (Lillicrap et al. 2015): a
/// mean-reverting correlated process added to the policy's action logits
/// during training.
class OuNoise {
 public:
  OuNoise(size_t dim, double theta = 0.15, double sigma = 0.2,
          double mu = 0.0);

  /// Resets the process to its mean (start of each episode).
  void Reset();

  /// Advances the process one step and returns the current noise vector.
  const math::Vec& Sample(Rng& rng);

  /// Scales sigma (for exploration decay across episodes).
  void set_sigma(double sigma) { sigma_ = sigma; }
  double sigma() const { return sigma_; }

 private:
  double theta_;
  double sigma_;
  double mu_;
  math::Vec state_;
};

}  // namespace eadrl::rl

#endif  // EADRL_RL_OU_NOISE_H_
