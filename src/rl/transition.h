#ifndef EADRL_RL_TRANSITION_H_
#define EADRL_RL_TRANSITION_H_

#include "math/vec.h"

namespace eadrl::rl {

/// One MDP transition (s_t, a_t, r_t, s_{t+1}) stored in the replay buffer.
struct Transition {
  math::Vec state;
  math::Vec action;
  double reward = 0.0;
  math::Vec next_state;
  bool terminal = false;
};

}  // namespace eadrl::rl

#endif  // EADRL_RL_TRANSITION_H_
