#include "rl/ou_noise.h"

#include "common/check.h"

namespace eadrl::rl {

OuNoise::OuNoise(size_t dim, double theta, double sigma, double mu)
    : theta_(theta), sigma_(sigma), mu_(mu), state_(dim, mu) {
  EADRL_CHECK_GT(dim, 0u);
}

void OuNoise::Reset() {
  for (double& v : state_) v = mu_;
}

const math::Vec& OuNoise::Sample(Rng& rng) {
  for (double& v : state_) {
    v += theta_ * (mu_ - v) + sigma_ * rng.Normal();
  }
  return state_;
}

}  // namespace eadrl::rl
