#ifndef EADRL_RL_REPLAY_BUFFER_H_
#define EADRL_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <vector>

#include "chk/chk.h"
#include "common/rng.h"
#include "rl/transition.h"

namespace eadrl::rl {

/// How minibatches are drawn from the replay buffer.
enum class SamplingStrategy {
  /// Uniform random sampling (Lillicrap et al. 2015).
  kUniform,
  /// The paper's diversity sampling (Sec. II-D, Eq. 4): half the batch from
  /// transitions with reward >= median, half from below-median transitions,
  /// so the networks see both successful and unsuccessful weightings.
  kMedianSplit,
};

/// Fixed-capacity FIFO replay buffer R storing up to N_max transitions.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity);

  void Add(Transition t);

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return buffer_.empty(); }

  const Transition& at(size_t i) const {
    EADRL_CHK_BOUND(i, buffer_.size(), "ReplayBuffer::at");
    return buffer_[i];
  }

  /// Draws a batch of `n` transitions (with replacement) using the strategy.
  /// Median-split degrades to uniform while the buffer holds fewer than two
  /// transitions or all rewards are identical.
  std::vector<Transition> Sample(size_t n, SamplingStrategy strategy,
                                 Rng& rng) const;

  /// Median of the stored rewards (used by median-split sampling and tests).
  double RewardMedian() const;

 private:
  size_t capacity_;
  size_t next_ = 0;  // ring-buffer write position once full.
  std::vector<Transition> buffer_;
};

}  // namespace eadrl::rl

#endif  // EADRL_RL_REPLAY_BUFFER_H_
