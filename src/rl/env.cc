#include "rl/env.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::rl {

EnsembleEnv::EnsembleEnv(math::Matrix predictions, math::Vec actuals,
                         size_t omega, RewardType reward_type,
                         double diversity_coef)
    : predictions_(std::move(predictions)),
      actuals_(std::move(actuals)),
      omega_(omega),
      reward_type_(reward_type),
      diversity_coef_(diversity_coef) {
  EADRL_CHECK_EQ(predictions_.rows(), actuals_.size());
  EADRL_CHECK_GT(omega_, 0u);
  EADRL_CHECK_GT(predictions_.cols(), 0u);
  EADRL_CHECK_GT(predictions_.rows(), omega_);
}

math::Vec EnsembleEnv::StateVec() const { return StateVecFor(window_); }

math::Vec EnsembleEnv::StateVecFor(const std::deque<double>& window) const {
  // States are standardized by the *window's own* statistics so the policy
  // sees the shape of the recent ensemble trajectory independent of the
  // series' current level — essential for trending or random-walk series
  // whose online level leaves the validation range. The window stddev is
  // floored by a fraction of the validation stddev so flat windows do not
  // blow noise up, and values are clipped to +-4.
  double mean = 0.0;
  for (double v : window) mean += v;
  mean /= static_cast<double>(window.size());
  double var = 0.0;
  for (double v : window) var += (v - mean) * (v - mean);
  var /= static_cast<double>(window.size());
  double global_sd = math::Stddev(actuals_);
  double sd = std::max(std::sqrt(var), 0.1 * global_sd);
  if (sd <= 1e-12) sd = 1.0;
  math::Vec s(window.begin(), window.end());
  for (double& v : s) v = std::clamp((v - mean) / sd, -4.0, 4.0);
  return s;
}

math::Vec EnsembleEnv::Reset() {
  const size_t m = predictions_.cols();
  window_.clear();
  // Uniform-weight ensemble outputs seed the window (no action has been
  // taken yet, so the internal combination policy starts uniform).
  for (size_t t = 0; t < omega_; ++t) {
    double s = 0.0;
    for (size_t i = 0; i < m; ++i) s += predictions_(t, i);
    window_.push_back(s / static_cast<double>(m));
  }
  t_ = omega_;
  return StateVec();
}

double EnsembleEnv::RewardAt(size_t t, const math::Vec& weights) const {
  EADRL_CHECK_GE(t, omega_ > 0 ? omega_ - 0 : 0);
  EADRL_CHECK_LT(t, predictions_.rows());
  EADRL_CHECK_EQ(weights.size(), predictions_.cols());
  const size_t m = predictions_.cols();
  const size_t begin = t + 1 - omega_;

  // Ensemble error over the window, applying the current weights across it
  // ("the computed ensemble using the corresponding action on X^omega").
  double ens_sse = 0.0;
  for (size_t j = begin; j <= t; ++j) {
    double pred = 0.0;
    for (size_t i = 0; i < m; ++i) pred += weights[i] * predictions_(j, i);
    double d = pred - actuals_[j];
    ens_sse += d * d;
  }
  double ens_rmse = std::sqrt(ens_sse / static_cast<double>(omega_));

  // Diversity bonus (paper future work): weighted dispersion of the base
  // predictions around the ensemble output, normalized by the validation
  // stddev so the coefficient is scale-free.
  double diversity_bonus = 0.0;
  if (diversity_coef_ > 0.0) {
    double dispersion = 0.0;
    for (size_t j = begin; j <= t; ++j) {
      double ens = 0.0;
      for (size_t i = 0; i < m; ++i) ens += weights[i] * predictions_(j, i);
      for (size_t i = 0; i < m; ++i) {
        double d = predictions_(j, i) - ens;
        dispersion += weights[i] * d * d;
      }
    }
    dispersion = std::sqrt(dispersion / static_cast<double>(omega_));
    double sd = math::Stddev(actuals_);
    if (sd <= 1e-12) sd = 1.0;
    diversity_bonus = diversity_coef_ * dispersion / sd;
  }

  if (reward_type_ == RewardType::kOneMinusNrmse) {
    double lo = actuals_[begin], hi = actuals_[begin];
    for (size_t j = begin; j <= t; ++j) {
      lo = std::min(lo, actuals_[j]);
      hi = std::max(hi, actuals_[j]);
    }
    double range = hi - lo;
    if (range <= 1e-12) range = 1.0;
    return 1.0 - ens_rmse / range + diversity_bonus;
  }

  // Rank reward (Eq. 3): rank the ensemble among the m base models by RMSE
  // over the same window; rank 1 = best, reward = m + 1 - rank.
  size_t rank = 1;
  for (size_t i = 0; i < m; ++i) {
    double sse = 0.0;
    for (size_t j = begin; j <= t; ++j) {
      double d = predictions_(j, i) - actuals_[j];
      sse += d * d;
    }
    double rmse = std::sqrt(sse / static_cast<double>(omega_));
    if (rmse < ens_rmse) ++rank;
  }
  return static_cast<double>(m + 1 - rank) + diversity_bonus;
}

EnsembleEnv::StepResult EnsembleEnv::Peek(const math::Vec& weights) const {
  EADRL_CHECK_LT(t_, predictions_.rows());
  EADRL_CHECK_EQ(weights.size(), predictions_.cols());

  StepResult result;
  result.reward = RewardAt(t_, weights);

  double pred = 0.0;
  for (size_t i = 0; i < predictions_.cols(); ++i) {
    pred += weights[i] * predictions_(t_, i);
  }
  result.ensemble_prediction = pred;
  result.actual = actuals_[t_];
  // Simulate the slide on a copy of the window.
  std::deque<double> next_window(window_.begin() + 1, window_.end());
  next_window.push_back(pred);
  result.done = (t_ + 1 >= predictions_.rows());
  result.next_state = StateVecFor(next_window);
  return result;
}

EnsembleEnv::StepResult EnsembleEnv::Step(const math::Vec& weights) {
  StepResult result = Peek(weights);

  // Commit: the ensemble output at the current step enters the window.
  double pred = 0.0;
  for (size_t i = 0; i < predictions_.cols(); ++i) {
    pred += weights[i] * predictions_(t_, i);
  }
  window_.push_back(pred);
  window_.pop_front();
  ++t_;
  return result;
}

}  // namespace eadrl::rl
