#include "rl/ddpg.h"

#include <algorithm>
#include <cmath>

#include "chk/chk.h"
#include "common/check.h"
#include "math/vec.h"
#include "nn/param.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace eadrl::rl {
namespace {

std::vector<size_t> LayerSizes(size_t in, const std::vector<size_t>& hidden,
                               size_t out) {
  std::vector<size_t> sizes;
  sizes.push_back(in);
  for (size_t h : hidden) sizes.push_back(h);
  sizes.push_back(out);
  return sizes;
}

// Workspace slot map for UpdateBatched: each slot is a stable, reusable
// batch-major buffer (see math::Workspace). Warm after the first update.
enum WsSlot : size_t {
  kWsStates = 0,      // n x state_dim
  kWsNextStates,      // n x state_dim
  kWsActions,         // n x action_dim (replay actions)
  kWsNextActions,     // n x action_dim (target policy, post-softmax)
  kWsCriticDz,        // n x critic-out
  kWsScaledLogits,    // n x action_dim
  kWsProbs,           // n x action_dim
  kWsActorDz,         // n x action_dim
  kWsCriticIn,        // n x (state_dim + action_dim), monolithic critic only
  kWsNextCriticIn,    // n x (state_dim + action_dim), monolithic critic only
  kWsOnes,            // n x 1, monolithic critic only
};

/// Dot of row `b` of two equally-shaped matrices, columns in ascending
/// order — the batched equivalent of math::Dot on the copied-out rows.
double RowDot(const math::Matrix& a, const math::Matrix& b, size_t row) {
  const double* x = a.RowPtr(row);
  const double* y = b.RowPtr(row);
  double s = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) s += x[j] * y[j];
  return s;
}

}  // namespace

DdpgAgent::DdpgAgent(const DdpgConfig& config)
    : config_(config),
      rng_(config.seed),
      actor_opt_(config.actor_lr),
      critic_opt_(config.critic_lr),
      updates_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_ddpg_updates_total")),
      critic_loss_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_critic_loss")),
      mean_abs_q_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_mean_abs_q")),
      actor_grad_norm_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_actor_grad_norm")),
      action_entropy_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_action_entropy")) {
  EADRL_CHECK_GT(config_.state_dim, 0u);
  EADRL_CHECK_GT(config_.action_dim, 0u);
  EADRL_CHK(config_.tau > 0.0 && config_.tau <= 1.0,
            "DdpgConfig.tau in (0, 1]");
  EADRL_CHK_RANGE(config_.gamma, 0.0, 1.0, "DdpgConfig.gamma");
  EADRL_CHK(config_.batch_size > 0, "DdpgConfig.batch_size positive");
  EADRL_CHK(config_.grad_clip > 0.0, "DdpgConfig.grad_clip positive");

  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  const size_t critic_in =
      linear_critic ? config_.state_dim
                    : config_.state_dim + config_.action_dim;
  const size_t critic_out = linear_critic ? config_.action_dim : 1;

  actor_ = std::make_unique<nn::Mlp>(
      LayerSizes(config_.state_dim, config_.actor_hidden, config_.action_dim),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      LayerSizes(critic_in, config_.critic_hidden, critic_out),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  // DDPG's small final-layer init keeps the initial policy near uniform and
  // initial Q-values near zero.
  actor_->ReinitOutputUniform(3e-3, rng_);
  critic_->ReinitOutputUniform(3e-3, rng_);

  target_actor_ = std::make_unique<nn::Mlp>(
      LayerSizes(config_.state_dim, config_.actor_hidden, config_.action_dim),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  target_critic_ = std::make_unique<nn::Mlp>(
      LayerSizes(critic_in, config_.critic_hidden, critic_out),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  nn::CopyParams(target_actor_->Params(), actor_->Params());
  nn::CopyParams(target_critic_->Params(), critic_->Params());

  actor_opt_.Register(actor_->Params());
  critic_opt_.Register(critic_->Params());
}

math::Vec DdpgAgent::CriticInput(const math::Vec& state,
                                 const math::Vec& action) const {
  math::Vec input;
  input.reserve(state.size() + action.size());
  input.insert(input.end(), state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  return input;
}

math::Vec DdpgAgent::Act(const math::Vec& state) {
  // Inference-mode forward: no backprop state is stashed and the only
  // allocation left on the predict hot path is the returned action itself.
  math::Vec& logits = ws_.vec(0, config_.action_dim);
  logits = actor_->Predict(state);
  for (double& v : logits) v *= config_.logit_scale;
  math::Vec action = math::Softmax(logits);
  EADRL_CHK_SIMPLEX(action, 1e-6, "DdpgAgent::Act action");
  return action;
}

math::Matrix DdpgAgent::ActBatch(const math::Matrix& states) {
  math::Matrix actions = actor_->ForwardBatch(states, /*train=*/false);
  actions.Scale(config_.logit_scale);
  math::SoftmaxRowsInPlace(&actions);
  return actions;
}

math::Vec DdpgAgent::ActWithNoise(const math::Vec& state,
                                  const math::Vec& noise) {
  math::Vec& logits = ws_.vec(0, config_.action_dim);
  logits = actor_->Predict(state);
  EADRL_CHECK_EQ(logits.size(), noise.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    logits[i] = config_.logit_scale * logits[i] + noise[i];
  }
  return math::Softmax(logits);
}

double DdpgAgent::QValue(const math::Vec& state, const math::Vec& action) {
  if (config_.critic_form == CriticForm::kLinearInAction) {
    return math::Dot(action, critic_->Predict(state));
  }
  return critic_->Predict(CriticInput(state, action))[0];
}

math::Vec DdpgAgent::SoftmaxJacobianVjp(const math::Vec& probs,
                                        const math::Vec& grad_probs) {
  // (J_softmax)^T g, with J_ij = p_i (delta_ij - p_j):
  // out_j = p_j * (g_j - sum_i g_i p_i).
  double inner = math::Dot(grad_probs, probs);
  math::Vec out(probs.size());
  for (size_t j = 0; j < probs.size(); ++j) {
    out[j] = probs[j] * (grad_probs[j] - inner);
  }
  return out;
}

std::vector<math::Matrix> DdpgAgent::ActorWeights() const {
  std::vector<math::Matrix> out;
  for (nn::Param* p : const_cast<nn::Mlp*>(actor_.get())->Params()) {
    out.push_back(p->value);
  }
  return out;
}

void DdpgAgent::SetActorWeights(const std::vector<math::Matrix>& weights) {
  std::vector<nn::Param*> params = actor_->Params();
  EADRL_CHECK_EQ(params.size(), weights.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EADRL_CHK_SHAPE(weights[i].rows(), weights[i].cols(),
                    params[i]->value.rows(), params[i]->value.cols(),
                    "DdpgAgent::SetActorWeights weight block");
    EADRL_CHK_FINITE(weights[i].data(),
                     "DdpgAgent::SetActorWeights actor weights");
    params[i]->value = weights[i];
  }
}

double DdpgAgent::Update(const std::vector<Transition>& batch) {
  EADRL_CHECK(!batch.empty());
  obs::Span span("ddpg_update");
  if (span.armed()) {
    span.SetAttr("batch", batch.size());
    span.SetAttr("update", num_updates_ + 1);
  }
  if (config_.batched_update) return UpdateBatched(batch);
  return UpdateScalar(batch);
}

double DdpgAgent::UpdateBatched(const std::vector<Transition>& batch) {
  const size_t n = batch.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  const size_t s_dim = config_.state_dim;
  const size_t a_dim = config_.action_dim;

  // Stage the minibatch batch-major: row b = transition b. The workspace
  // buffers are warm after the first update at a given batch size, so the
  // whole update allocates nothing.
  math::Matrix& states = ws_.mat(kWsStates, n, s_dim);
  math::Matrix& next_states = ws_.mat(kWsNextStates, n, s_dim);
  math::Matrix& actions = ws_.mat(kWsActions, n, a_dim);
  for (size_t b = 0; b < n; ++b) {
    const Transition& t = batch[b];
    states.SetRow(b, t.state);
    next_states.SetRow(b, t.next_state);
    actions.SetRow(b, t.action);
  }

  // --- Critic update: minimize (Q(s,a) - y)^2, y from target networks. ----
  // Every per-row quantity below is computed by exactly the arithmetic the
  // scalar path applies per transition, and every accumulation (loss, |Q|,
  // and the gradients inside BackwardBatch) runs over rows in ascending
  // order — which is what makes this path bit-identical to UpdateScalar.
  double critic_loss = 0.0;
  double abs_q_sum = 0.0;
  {
    obs::Span critic_span("critic_update");
    // Target policy actions for all next states (terminal rows are computed
    // too and simply never read — target nets are pure functions, so the
    // extra rows cost a few flops and change nothing).
    math::Matrix& next_actions = ws_.mat(kWsNextActions, n, a_dim);
    next_actions = target_actor_->ForwardBatch(next_states, /*train=*/false);
    next_actions.Scale(config_.logit_scale);
    math::SoftmaxRowsInPlace(&next_actions);

    const math::Matrix* next_q;
    if (linear_critic) {
      next_q = &target_critic_->ForwardBatch(next_states, /*train=*/false);
    } else {
      math::Matrix& next_in = ws_.mat(kWsNextCriticIn, n, s_dim + a_dim);
      for (size_t b = 0; b < n; ++b) {
        double* row = next_in.RowPtr(b);
        const double* s = next_states.RowPtr(b);
        const double* a = next_actions.RowPtr(b);
        for (size_t j = 0; j < s_dim; ++j) row[j] = s[j];
        for (size_t j = 0; j < a_dim; ++j) row[s_dim + j] = a[j];
      }
      next_q = &target_critic_->ForwardBatch(next_in, /*train=*/false);
    }

    const math::Matrix* q;
    if (linear_critic) {
      q = &critic_->ForwardBatch(states, /*train=*/true);
    } else {
      math::Matrix& critic_in = ws_.mat(kWsCriticIn, n, s_dim + a_dim);
      for (size_t b = 0; b < n; ++b) {
        double* row = critic_in.RowPtr(b);
        const double* s = states.RowPtr(b);
        const double* a = actions.RowPtr(b);
        for (size_t j = 0; j < s_dim; ++j) row[j] = s[j];
        for (size_t j = 0; j < a_dim; ++j) row[s_dim + j] = a[j];
      }
      q = &critic_->ForwardBatch(critic_in, /*train=*/true);
    }

    math::Matrix& dz = ws_.mat(kWsCriticDz, n, linear_critic ? a_dim : 1);
    for (size_t b = 0; b < n; ++b) {
      const Transition& t = batch[b];
      double target = t.reward;
      if (!t.terminal) {
        double nq = linear_critic ? RowDot(next_actions, *next_q, b)
                                  : (*next_q)(b, 0);
        target += config_.gamma * nq;
      }
      double qv = linear_critic ? RowDot(actions, *q, b) : (*q)(b, 0);
      double err = qv - target;
      critic_loss += err * err * inv_n;
      abs_q_sum += std::fabs(qv);
      // dL/dq_i = 2 * err * a_i / N (linear) or dL/dq = 2 * err / N.
      if (linear_critic) {
        const double s = 2.0 * err * inv_n;
        const double* arow = actions.RowPtr(b);
        double* dzrow = dz.RowPtr(b);
        for (size_t j = 0; j < a_dim; ++j) dzrow[j] = arow[j] * s;
      } else {
        dz(b, 0) = 2.0 * err * inv_n;
      }
    }
    critic_->BackwardBatch(dz);
    nn::ClipGradNorm(critic_->Params(), config_.grad_clip);
    critic_opt_.StepAndZero();
  }

  // --- Actor update: ascend dQ/dtheta through the softmax. ----------------
  double entropy_sum = 0.0;
  {
    obs::Span actor_span("actor_update");
    math::Matrix& logits = ws_.mat(kWsScaledLogits, n, a_dim);
    logits = actor_->ForwardBatch(states, /*train=*/true);
    logits.Scale(config_.logit_scale);
    math::Matrix& probs = ws_.mat(kWsProbs, n, a_dim);
    probs = logits;
    math::SoftmaxRowsInPlace(&probs);

    // dQ/da for every row, then the softmax-Jacobian VJP row-wise.
    const math::Matrix* dinput = nullptr;
    const math::Matrix* dq_da = nullptr;
    if (linear_critic) {
      dq_da = &critic_->ForwardBatch(states, /*train=*/false);
    } else {
      math::Matrix& critic_in = ws_.mat(kWsCriticIn, n, s_dim + a_dim);
      for (size_t b = 0; b < n; ++b) {
        double* row = critic_in.RowPtr(b);
        const double* s = states.RowPtr(b);
        const double* a = probs.RowPtr(b);
        for (size_t j = 0; j < s_dim; ++j) row[j] = s[j];
        for (size_t j = 0; j < a_dim; ++j) row[s_dim + j] = a[j];
      }
      critic_->ForwardBatch(critic_in, /*train=*/true);
      math::Matrix& ones = ws_.mat(kWsOnes, n, 1);
      ones.Fill(1.0);
      dinput = &critic_->BackwardBatch(ones);
    }

    math::Matrix& dz = ws_.mat(kWsActorDz, n, a_dim);
    for (size_t b = 0; b < n; ++b) {
      const double* prow = probs.RowPtr(b);
      for (size_t j = 0; j < a_dim; ++j) {
        if (prow[j] > 0.0) entropy_sum -= prow[j] * std::log(prow[j]);
      }
      const double* grow = linear_critic ? dq_da->RowPtr(b)
                                         : dinput->RowPtr(b) + s_dim;
      // SoftmaxJacobianVjp on the row, then the same chain as the scalar
      // path: descent on -Q through the logit scale plus the L2 pull of the
      // scaled logits toward zero.
      double inner = 0.0;
      for (size_t j = 0; j < a_dim; ++j) inner += grow[j] * prow[j];
      const double* lrow = logits.RowPtr(b);
      double* dzrow = dz.RowPtr(b);
      for (size_t j = 0; j < a_dim; ++j) {
        const double vjp = prow[j] * (grow[j] - inner);
        dzrow[j] = -inv_n * config_.logit_scale * vjp +
                   inv_n * config_.logit_l2 * lrow[j];
      }
    }
    actor_->BackwardBatch(dz);
  }
  return FinishUpdate(critic_loss, abs_q_sum, entropy_sum, inv_n);
}

double DdpgAgent::UpdateScalar(const std::vector<Transition>& batch) {
  const double inv_n = 1.0 / static_cast<double>(batch.size());

  // --- Critic update: minimize (Q(s,a) - y)^2, y from target networks. ----
  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  double critic_loss = 0.0;
  double abs_q_sum = 0.0;
  {
    obs::Span critic_span("critic_update");
    for (const Transition& t : batch) {
      double target = t.reward;
      if (!t.terminal) {
        math::Vec next_logits = target_actor_->Forward(t.next_state);
        for (double& v : next_logits) v *= config_.logit_scale;
        math::Vec next_action = math::Softmax(next_logits);
        double next_q =
            linear_critic
                ? math::Dot(next_action,
                            target_critic_->Forward(t.next_state))
                : target_critic_->Forward(
                      CriticInput(t.next_state, next_action))[0];
        target += config_.gamma * next_q;
      }
      if (linear_critic) {
        math::Vec q_vec = critic_->Forward(t.state);
        double q = math::Dot(t.action, q_vec);
        double err = q - target;
        critic_loss += err * err * inv_n;
        abs_q_sum += std::fabs(q);
        // dL/dq_i = 2 * err * a_i / N.
        critic_->Backward(math::Scale(t.action, 2.0 * err * inv_n));
      } else {
        double q = critic_->Forward(CriticInput(t.state, t.action))[0];
        double err = q - target;
        critic_loss += err * err * inv_n;
        abs_q_sum += std::fabs(q);
        critic_->Backward({2.0 * err * inv_n});
      }
    }
    nn::ClipGradNorm(critic_->Params(), config_.grad_clip);
    critic_opt_.StepAndZero();
  }

  // --- Actor update: ascend dQ/dtheta through the softmax. ----------------
  double entropy_sum = 0.0;
  {
    obs::Span actor_span("actor_update");
    for (const Transition& t : batch) {
      math::Vec logits = actor_->Forward(t.state);
      for (double& v : logits) v *= config_.logit_scale;
      math::Vec action = math::Softmax(logits);
      for (double p : action) {
        if (p > 0.0) entropy_sum -= p * std::log(p);
      }
      math::Vec dq_da;
      if (linear_critic) {
        dq_da = critic_->Forward(t.state);  // dQ/da = q(s), exactly.
      } else {
        critic_->Forward(CriticInput(t.state, action));
        math::Vec dinput = critic_->Backward({1.0});
        dq_da.assign(
            dinput.begin() + static_cast<ptrdiff_t>(config_.state_dim),
            dinput.end());
      }
      math::Vec dq_dz = SoftmaxJacobianVjp(action, dq_da);
      // Gradient ascent on Q == descent on -Q; chain through the logit scale
      // and add the L2 pull of the logits toward zero (uniform weights),
      // which keeps the actor from running away into action regions the
      // critic has never been trained on.
      for (size_t j = 0; j < dq_dz.size(); ++j) {
        dq_dz[j] = -inv_n * config_.logit_scale * dq_dz[j] +
                   inv_n * config_.logit_l2 * logits[j];
      }
      actor_->Backward(dq_dz);
    }
  }
  return FinishUpdate(critic_loss, abs_q_sum, entropy_sum, inv_n);
}

double DdpgAgent::FinishUpdate(double critic_loss, double abs_q_sum,
                               double entropy_sum, double inv_n) {
  // A diverged critic or an exploding policy gradient corrupts the learned
  // combination policy silently; fail here, where the update is attributable.
  EADRL_CHK_FINITE_VALUE(critic_loss, "DdpgAgent::Update critic loss");
  // The actor loop accumulated gradients inside the critic too; discard them.
  nn::ZeroGrads(critic_->Params());
  double actor_grad_norm =
      nn::ClipGradNorm(actor_->Params(), config_.grad_clip);
  EADRL_CHK_FINITE_VALUE(actor_grad_norm,
                         "DdpgAgent::Update actor gradient norm");
  actor_opt_.StepAndZero();

  // --- Soft target updates. ------------------------------------------------
  {
    obs::Span sync_span("target_sync");
    nn::SoftUpdate(target_actor_->Params(), actor_->Params(), config_.tau);
    nn::SoftUpdate(target_critic_->Params(), critic_->Params(), config_.tau);
  }

  // --- Telemetry. ----------------------------------------------------------
  last_stats_.critic_loss = critic_loss;
  last_stats_.mean_abs_q = abs_q_sum * inv_n;
  last_stats_.actor_grad_norm = actor_grad_norm;
  last_stats_.action_entropy = entropy_sum * inv_n;
  ++num_updates_;
  updates_counter_->Inc();
  critic_loss_gauge_->Set(last_stats_.critic_loss);
  mean_abs_q_gauge_->Set(last_stats_.mean_abs_q);
  actor_grad_norm_gauge_->Set(last_stats_.actor_grad_norm);
  action_entropy_gauge_->Set(last_stats_.action_entropy);
  EADRL_TELEMETRY("ddpg_update", {"update", num_updates_},
                  {"critic_loss", last_stats_.critic_loss},
                  {"mean_abs_q", last_stats_.mean_abs_q},
                  {"actor_grad_norm", last_stats_.actor_grad_norm},
                  {"action_entropy", last_stats_.action_entropy});
  return critic_loss;
}

}  // namespace eadrl::rl
