#include "rl/ddpg.h"

#include <algorithm>
#include <cmath>

#include "chk/chk.h"
#include "common/check.h"
#include "math/vec.h"
#include "nn/param.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/parallel.h"

namespace eadrl::rl {
namespace {

std::vector<size_t> LayerSizes(size_t in, const std::vector<size_t>& hidden,
                               size_t out) {
  std::vector<size_t> sizes;
  sizes.push_back(in);
  for (size_t h : hidden) sizes.push_back(h);
  sizes.push_back(out);
  return sizes;
}

// Smallest batch worth fanning out, and transitions per pool task. Below the
// threshold the replica setup costs more than the gradient math.
constexpr size_t kMinParallelBatch = 8;
constexpr size_t kUpdateGrain = 4;

/// Same-architecture copy of a network (forward/backward scratch state is
/// per-replica, so replicas can run on pool workers while the original's
/// parameters stay untouched).
std::unique_ptr<nn::Mlp> CloneNet(nn::Mlp& src,
                                  const std::vector<size_t>& sizes) {
  Rng scratch(0);  // initial weights are overwritten by CopyParams.
  auto copy = std::make_unique<nn::Mlp>(
      sizes, nn::Activation::kRelu, nn::Activation::kIdentity, scratch);
  nn::CopyParams(copy->Params(), src.Params());
  nn::ZeroGrads(copy->Params());
  return copy;
}

/// Moves the accumulated gradients out of `params` (zeroing them) so a
/// replica can be reused for the next transition.
std::vector<math::Matrix> ExtractGrads(const std::vector<nn::Param*>& params) {
  std::vector<math::Matrix> out;
  out.reserve(params.size());
  for (nn::Param* p : params) {
    out.push_back(p->grad);
    p->ZeroGrad();
  }
  return out;
}

/// grad += contribution, element-wise — one addend per element, exactly like
/// one serial Backward call (Dense::Backward adds each transition's product
/// to each gradient element once), so reducing per-transition contributions
/// in transition order reproduces the serial accumulation bit for bit.
void AccumulateGrads(const std::vector<nn::Param*>& params,
                     const std::vector<math::Matrix>& contribution) {
  for (size_t i = 0; i < params.size(); ++i) {
    std::vector<double>& grad = params[i]->grad.data();
    const std::vector<double>& add = contribution[i].data();
    for (size_t e = 0; e < grad.size(); ++e) grad[e] += add[e];
  }
}

}  // namespace

DdpgAgent::DdpgAgent(const DdpgConfig& config)
    : config_(config),
      rng_(config.seed),
      actor_opt_(config.actor_lr),
      critic_opt_(config.critic_lr),
      updates_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_ddpg_updates_total")),
      critic_loss_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_critic_loss")),
      mean_abs_q_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_mean_abs_q")),
      actor_grad_norm_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_actor_grad_norm")),
      action_entropy_gauge_(obs::MetricRegistry::Default().GetGauge(
          "eadrl_ddpg_action_entropy")) {
  EADRL_CHECK_GT(config_.state_dim, 0u);
  EADRL_CHECK_GT(config_.action_dim, 0u);
  EADRL_CHK(config_.tau > 0.0 && config_.tau <= 1.0,
            "DdpgConfig.tau in (0, 1]");
  EADRL_CHK_RANGE(config_.gamma, 0.0, 1.0, "DdpgConfig.gamma");
  EADRL_CHK(config_.batch_size > 0, "DdpgConfig.batch_size positive");
  EADRL_CHK(config_.grad_clip > 0.0, "DdpgConfig.grad_clip positive");

  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  const size_t critic_in =
      linear_critic ? config_.state_dim
                    : config_.state_dim + config_.action_dim;
  const size_t critic_out = linear_critic ? config_.action_dim : 1;

  actor_ = std::make_unique<nn::Mlp>(
      LayerSizes(config_.state_dim, config_.actor_hidden, config_.action_dim),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  critic_ = std::make_unique<nn::Mlp>(
      LayerSizes(critic_in, config_.critic_hidden, critic_out),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  // DDPG's small final-layer init keeps the initial policy near uniform and
  // initial Q-values near zero.
  actor_->ReinitOutputUniform(3e-3, rng_);
  critic_->ReinitOutputUniform(3e-3, rng_);

  target_actor_ = std::make_unique<nn::Mlp>(
      LayerSizes(config_.state_dim, config_.actor_hidden, config_.action_dim),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  target_critic_ = std::make_unique<nn::Mlp>(
      LayerSizes(critic_in, config_.critic_hidden, critic_out),
      nn::Activation::kRelu, nn::Activation::kIdentity, rng_);
  nn::CopyParams(target_actor_->Params(), actor_->Params());
  nn::CopyParams(target_critic_->Params(), critic_->Params());

  actor_opt_.Register(actor_->Params());
  critic_opt_.Register(critic_->Params());
}

math::Vec DdpgAgent::CriticInput(const math::Vec& state,
                                 const math::Vec& action) const {
  math::Vec input;
  input.reserve(state.size() + action.size());
  input.insert(input.end(), state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  return input;
}

math::Vec DdpgAgent::Act(const math::Vec& state) {
  math::Vec logits = actor_->Forward(state);
  for (double& v : logits) v *= config_.logit_scale;
  math::Vec action = math::Softmax(logits);
  EADRL_CHK_SIMPLEX(action, 1e-6, "DdpgAgent::Act action");
  return action;
}

math::Vec DdpgAgent::ActWithNoise(const math::Vec& state,
                                  const math::Vec& noise) {
  math::Vec logits = actor_->Forward(state);
  EADRL_CHECK_EQ(logits.size(), noise.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    logits[i] = config_.logit_scale * logits[i] + noise[i];
  }
  return math::Softmax(logits);
}

double DdpgAgent::QValue(const math::Vec& state, const math::Vec& action) {
  if (config_.critic_form == CriticForm::kLinearInAction) {
    return math::Dot(action, critic_->Forward(state));
  }
  return critic_->Forward(CriticInput(state, action))[0];
}

math::Vec DdpgAgent::SoftmaxJacobianVjp(const math::Vec& probs,
                                        const math::Vec& grad_probs) {
  // (J_softmax)^T g, with J_ij = p_i (delta_ij - p_j):
  // out_j = p_j * (g_j - sum_i g_i p_i).
  double inner = math::Dot(grad_probs, probs);
  math::Vec out(probs.size());
  for (size_t j = 0; j < probs.size(); ++j) {
    out[j] = probs[j] * (grad_probs[j] - inner);
  }
  return out;
}

std::vector<math::Matrix> DdpgAgent::ActorWeights() const {
  std::vector<math::Matrix> out;
  for (nn::Param* p : const_cast<nn::Mlp*>(actor_.get())->Params()) {
    out.push_back(p->value);
  }
  return out;
}

void DdpgAgent::SetActorWeights(const std::vector<math::Matrix>& weights) {
  std::vector<nn::Param*> params = actor_->Params();
  EADRL_CHECK_EQ(params.size(), weights.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EADRL_CHK_SHAPE(weights[i].rows(), weights[i].cols(),
                    params[i]->value.rows(), params[i]->value.cols(),
                    "DdpgAgent::SetActorWeights weight block");
    EADRL_CHK_FINITE(weights[i].data(),
                     "DdpgAgent::SetActorWeights actor weights");
    params[i]->value = weights[i];
  }
}

double DdpgAgent::Update(const std::vector<Transition>& batch) {
  EADRL_CHECK(!batch.empty());
  obs::Span span("ddpg_update");
  if (span.armed()) {
    span.SetAttr("batch", batch.size());
    span.SetAttr("update", num_updates_ + 1);
  }
  if (batch.size() >= kMinParallelBatch && par::DefaultPool().parallel()) {
    return UpdateParallel(batch);
  }
  const double inv_n = 1.0 / static_cast<double>(batch.size());

  // --- Critic update: minimize (Q(s,a) - y)^2, y from target networks. ----
  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  double critic_loss = 0.0;
  double abs_q_sum = 0.0;
  {
    obs::Span critic_span("critic_update");
    for (const Transition& t : batch) {
      double target = t.reward;
      if (!t.terminal) {
        math::Vec next_logits = target_actor_->Forward(t.next_state);
        for (double& v : next_logits) v *= config_.logit_scale;
        math::Vec next_action = math::Softmax(next_logits);
        double next_q =
            linear_critic
                ? math::Dot(next_action,
                            target_critic_->Forward(t.next_state))
                : target_critic_->Forward(
                      CriticInput(t.next_state, next_action))[0];
        target += config_.gamma * next_q;
      }
      if (linear_critic) {
        math::Vec q_vec = critic_->Forward(t.state);
        double q = math::Dot(t.action, q_vec);
        double err = q - target;
        critic_loss += err * err * inv_n;
        abs_q_sum += std::fabs(q);
        // dL/dq_i = 2 * err * a_i / N.
        critic_->Backward(math::Scale(t.action, 2.0 * err * inv_n));
      } else {
        double q = critic_->Forward(CriticInput(t.state, t.action))[0];
        double err = q - target;
        critic_loss += err * err * inv_n;
        abs_q_sum += std::fabs(q);
        critic_->Backward({2.0 * err * inv_n});
      }
    }
    nn::ClipGradNorm(critic_->Params(), config_.grad_clip);
    critic_opt_.StepAndZero();
  }

  // --- Actor update: ascend dQ/dtheta through the softmax. ----------------
  double entropy_sum = 0.0;
  {
    obs::Span actor_span("actor_update");
    for (const Transition& t : batch) {
      math::Vec logits = actor_->Forward(t.state);
      for (double& v : logits) v *= config_.logit_scale;
      math::Vec action = math::Softmax(logits);
      for (double p : action) {
        if (p > 0.0) entropy_sum -= p * std::log(p);
      }
      math::Vec dq_da;
      if (linear_critic) {
        dq_da = critic_->Forward(t.state);  // dQ/da = q(s), exactly.
      } else {
        critic_->Forward(CriticInput(t.state, action));
        math::Vec dinput = critic_->Backward({1.0});
        dq_da.assign(
            dinput.begin() + static_cast<ptrdiff_t>(config_.state_dim),
            dinput.end());
      }
      math::Vec dq_dz = SoftmaxJacobianVjp(action, dq_da);
      // Gradient ascent on Q == descent on -Q; chain through the logit scale
      // and add the L2 pull of the logits toward zero (uniform weights),
      // which keeps the actor from running away into action regions the
      // critic has never been trained on.
      for (size_t j = 0; j < dq_dz.size(); ++j) {
        dq_dz[j] = -inv_n * config_.logit_scale * dq_dz[j] +
                   inv_n * config_.logit_l2 * logits[j];
      }
      actor_->Backward(dq_dz);
    }
  }
  return FinishUpdate(critic_loss, abs_q_sum, entropy_sum, inv_n);
}

double DdpgAgent::UpdateParallel(const std::vector<Transition>& batch) {
  const size_t n = batch.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  const bool linear_critic =
      config_.critic_form == CriticForm::kLinearInAction;
  const std::vector<size_t> actor_sizes =
      LayerSizes(config_.state_dim, config_.actor_hidden, config_.action_dim);
  const size_t critic_in =
      linear_critic ? config_.state_dim
                    : config_.state_dim + config_.action_dim;
  const size_t critic_out = linear_critic ? config_.action_dim : 1;
  const std::vector<size_t> critic_sizes =
      LayerSizes(critic_in, config_.critic_hidden, critic_out);
  const size_t num_chunks = (n + kUpdateGrain - 1) / kUpdateGrain;

  // --- Critic phase: per-transition gradients on replicas. -----------------
  // Each chunk task clones the nets it reads (targets + critic), runs the
  // same per-transition math as the serial loop and stores that transition's
  // gradient contribution in its own slot.
  std::vector<std::vector<math::Matrix>> critic_grads(n);
  std::vector<double> loss_terms(n, 0.0);
  std::vector<double> abs_q_terms(n, 0.0);
  double critic_loss = 0.0;
  double abs_q_sum = 0.0;
  {
    obs::Span critic_span("critic_update");
    par::ParallelFor(0, num_chunks, [&](size_t c) {
      std::unique_ptr<nn::Mlp> critic = CloneNet(*critic_, critic_sizes);
      std::unique_ptr<nn::Mlp> target_actor =
          CloneNet(*target_actor_, actor_sizes);
      std::unique_ptr<nn::Mlp> target_critic =
          CloneNet(*target_critic_, critic_sizes);
      const size_t lo = c * kUpdateGrain;
      const size_t hi = std::min(n, lo + kUpdateGrain);
      for (size_t i = lo; i < hi; ++i) {
        const Transition& t = batch[i];
        double target = t.reward;
        if (!t.terminal) {
          math::Vec next_logits = target_actor->Forward(t.next_state);
          for (double& v : next_logits) v *= config_.logit_scale;
          math::Vec next_action = math::Softmax(next_logits);
          double next_q =
              linear_critic
                  ? math::Dot(next_action,
                              target_critic->Forward(t.next_state))
                  : target_critic->Forward(
                        CriticInput(t.next_state, next_action))[0];
          target += config_.gamma * next_q;
        }
        if (linear_critic) {
          math::Vec q_vec = critic->Forward(t.state);
          double q = math::Dot(t.action, q_vec);
          double err = q - target;
          loss_terms[i] = err * err * inv_n;
          abs_q_terms[i] = std::fabs(q);
          critic->Backward(math::Scale(t.action, 2.0 * err * inv_n));
        } else {
          double q = critic->Forward(CriticInput(t.state, t.action))[0];
          double err = q - target;
          loss_terms[i] = err * err * inv_n;
          abs_q_terms[i] = std::fabs(q);
          critic->Backward({2.0 * err * inv_n});
        }
        critic_grads[i] = ExtractGrads(critic->Params());
      }
    });
    const std::vector<nn::Param*> params = critic_->Params();
    for (size_t i = 0; i < n; ++i) {
      critic_loss += loss_terms[i];
      abs_q_sum += abs_q_terms[i];
      AccumulateGrads(params, critic_grads[i]);
    }
    nn::ClipGradNorm(critic_->Params(), config_.grad_clip);
    critic_opt_.StepAndZero();
  }

  // --- Actor phase (replicas cloned after the critic step so dQ/da uses the
  // updated critic, as in the serial loop). --------------------------------
  std::vector<std::vector<math::Matrix>> actor_grads(n);
  std::vector<double> entropy_terms(n, 0.0);
  double entropy_sum = 0.0;
  {
    obs::Span actor_span("actor_update");
    par::ParallelFor(0, num_chunks, [&](size_t c) {
      std::unique_ptr<nn::Mlp> actor = CloneNet(*actor_, actor_sizes);
      std::unique_ptr<nn::Mlp> critic = CloneNet(*critic_, critic_sizes);
      const size_t lo = c * kUpdateGrain;
      const size_t hi = std::min(n, lo + kUpdateGrain);
      for (size_t i = lo; i < hi; ++i) {
        const Transition& t = batch[i];
        math::Vec logits = actor->Forward(t.state);
        for (double& v : logits) v *= config_.logit_scale;
        math::Vec action = math::Softmax(logits);
        double entropy = 0.0;
        for (double p : action) {
          if (p > 0.0) entropy -= p * std::log(p);
        }
        entropy_terms[i] = entropy;
        math::Vec dq_da;
        if (linear_critic) {
          dq_da = critic->Forward(t.state);  // dQ/da = q(s), exactly.
        } else {
          critic->Forward(CriticInput(t.state, action));
          math::Vec dinput = critic->Backward({1.0});
          dq_da.assign(
              dinput.begin() + static_cast<ptrdiff_t>(config_.state_dim),
              dinput.end());
        }
        math::Vec dq_dz = SoftmaxJacobianVjp(action, dq_da);
        for (size_t j = 0; j < dq_dz.size(); ++j) {
          dq_dz[j] = -inv_n * config_.logit_scale * dq_dz[j] +
                     inv_n * config_.logit_l2 * logits[j];
        }
        actor->Backward(dq_dz);
        actor_grads[i] = ExtractGrads(actor->Params());
      }
    });
    const std::vector<nn::Param*> params = actor_->Params();
    for (size_t i = 0; i < n; ++i) {
      entropy_sum += entropy_terms[i];
      AccumulateGrads(params, actor_grads[i]);
    }
  }
  return FinishUpdate(critic_loss, abs_q_sum, entropy_sum, inv_n);
}

double DdpgAgent::FinishUpdate(double critic_loss, double abs_q_sum,
                               double entropy_sum, double inv_n) {
  // A diverged critic or an exploding policy gradient corrupts the learned
  // combination policy silently; fail here, where the update is attributable.
  EADRL_CHK_FINITE_VALUE(critic_loss, "DdpgAgent::Update critic loss");
  // The actor loop accumulated gradients inside the critic too; discard them.
  nn::ZeroGrads(critic_->Params());
  double actor_grad_norm =
      nn::ClipGradNorm(actor_->Params(), config_.grad_clip);
  EADRL_CHK_FINITE_VALUE(actor_grad_norm,
                         "DdpgAgent::Update actor gradient norm");
  actor_opt_.StepAndZero();

  // --- Soft target updates. ------------------------------------------------
  {
    obs::Span sync_span("target_sync");
    nn::SoftUpdate(target_actor_->Params(), actor_->Params(), config_.tau);
    nn::SoftUpdate(target_critic_->Params(), critic_->Params(), config_.tau);
  }

  // --- Telemetry. ----------------------------------------------------------
  last_stats_.critic_loss = critic_loss;
  last_stats_.mean_abs_q = abs_q_sum * inv_n;
  last_stats_.actor_grad_norm = actor_grad_norm;
  last_stats_.action_entropy = entropy_sum * inv_n;
  ++num_updates_;
  updates_counter_->Inc();
  critic_loss_gauge_->Set(last_stats_.critic_loss);
  mean_abs_q_gauge_->Set(last_stats_.mean_abs_q);
  actor_grad_norm_gauge_->Set(last_stats_.actor_grad_norm);
  action_entropy_gauge_->Set(last_stats_.action_entropy);
  EADRL_TELEMETRY("ddpg_update", {"update", num_updates_},
                  {"critic_loss", last_stats_.critic_loss},
                  {"mean_abs_q", last_stats_.mean_abs_q},
                  {"actor_grad_norm", last_stats_.actor_grad_norm},
                  {"action_entropy", last_stats_.action_entropy});
  return critic_loss;
}

}  // namespace eadrl::rl
