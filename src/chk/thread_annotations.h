#ifndef EADRL_CHK_THREAD_ANNOTATIONS_H_
#define EADRL_CHK_THREAD_ANNOTATIONS_H_

// Thread-safety annotations (see DESIGN.md, "Correctness tooling"): the
// EADRL_* macros below document which mutex guards which state and which
// locks a function requires or excludes, in a form two analyzers consume:
//
//   1. clang's -Wthread-safety pass, when the tree is built with clang
//      (CMake adds the flag automatically; see EADRL_THREAD_SAFETY in the
//      top-level CMakeLists.txt). Under any other compiler every macro
//      expands to nothing, so annotations are free to carry everywhere.
//   2. eadrl_lint's structural rules (guarded-by, requires-self-lock,
//      lock-order), which parse the annotations textually and therefore
//      work under every compiler — they are the gate check.sh and the
//      lint_gate ctest actually enforce.
//
// Vocabulary (mirrors the clang attribute set):
//
//   EADRL_GUARDED_BY(mu)      reads/writes of this member require `mu`.
//   EADRL_PT_GUARDED_BY(mu)   the pointee (not the pointer) requires `mu`.
//   EADRL_REQUIRES(mu)        caller must hold `mu`; the function must NOT
//                             lock it itself (lint: requires-self-lock).
//   EADRL_EXCLUDES(mu)        caller must NOT hold `mu` (the function locks
//                             it, or hands off to something that does).
//   EADRL_ACQUIRE(mu...)      function leaves with `mu` held.
//   EADRL_RELEASE(mu...)      function leaves with `mu` released.
//   EADRL_TRY_ACQUIRE(b, mu)  acquires `mu` iff the return value is `b`.
//   EADRL_ACQUIRED_BEFORE/AFTER declare a pairwise order to clang. Prefer
//                             the global registry (src/chk/lock_order.def):
//                             it is enforced by lint and runtime lockdep.
//   EADRL_CAPABILITY("mutex") marks a class as a lockable capability.
//   EADRL_SCOPED_CAPABILITY   marks an RAII lock holder.
//   EADRL_NO_THREAD_SAFETY_ANALYSIS opts a function out (e.g. constructors
//                             that initialize guarded members before the
//                             object is published).
//
// Two extra markers exist purely for eadrl_lint (they never expand to an
// attribute):
//
//   EADRL_UNGUARDED           documents a container member in a class that
//                             has a mutex but deliberately does not guard
//                             this member (construction-immutable state,
//                             externally synchronized, etc.). Satisfies the
//                             guarded-by rule; always pair with a comment.
//   EADRL_LOCK_ORDERED(rank)  binds a plain std::mutex member to a rank in
//                             src/chk/lock_order.def without converting it
//                             to chk::OrderedMutex (static order checking
//                             only, no runtime tracking).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define EADRL_TSA_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#if !defined(EADRL_TSA_ATTRIBUTE)
#define EADRL_TSA_ATTRIBUTE(x)  // not clang: annotations compile to nothing.
#endif

#define EADRL_CAPABILITY(x) EADRL_TSA_ATTRIBUTE(capability(x))
#define EADRL_SCOPED_CAPABILITY EADRL_TSA_ATTRIBUTE(scoped_lockable)
#define EADRL_GUARDED_BY(x) EADRL_TSA_ATTRIBUTE(guarded_by(x))
#define EADRL_PT_GUARDED_BY(x) EADRL_TSA_ATTRIBUTE(pt_guarded_by(x))
#define EADRL_ACQUIRED_BEFORE(...) \
  EADRL_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define EADRL_ACQUIRED_AFTER(...) \
  EADRL_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define EADRL_REQUIRES(...) \
  EADRL_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define EADRL_EXCLUDES(...) EADRL_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define EADRL_ACQUIRE(...) \
  EADRL_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define EADRL_RELEASE(...) \
  EADRL_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define EADRL_TRY_ACQUIRE(...) \
  EADRL_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define EADRL_NO_THREAD_SAFETY_ANALYSIS \
  EADRL_TSA_ATTRIBUTE(no_thread_safety_analysis)

// Lint-only markers: no attribute under any compiler.
#define EADRL_UNGUARDED
#define EADRL_LOCK_ORDERED(rank)

#endif  // EADRL_CHK_THREAD_ANNOTATIONS_H_
