#include "chk/chk.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace eadrl::chk {
namespace {

std::atomic<FailureHandler> g_handler{nullptr};

}  // namespace

void SetFailureHandlerForTest(FailureHandler handler) {
  g_handler.store(handler, std::memory_order_release);
}

namespace internal {

// The out-of-line failure paths are compiled unconditionally: a translation
// unit built with EADRL_CHK_FORCE_ON must link even when the library itself
// was configured with EADRL_CHECKS=OFF.

[[noreturn]] void FailContract(const char* file, int line, const char* what,
                               const char* detail) {
  char message[512];
  std::snprintf(message, sizeof(message), "%s:%d: contract violated: [%s] %s",
                file, line, what, detail);
  FailureHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(message);  // must not return (throws in tests).
  }
  std::fprintf(stderr, "%s\n", message);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void FailContractF(const char* file, int line, const char* what,
                                const char* detail_format, ...) {
  char detail[256];
  va_list args;
  va_start(args, detail_format);
  std::vsnprintf(detail, sizeof(detail), detail_format, args);
  va_end(args);
  FailContract(file, line, what, detail);
}

[[noreturn]] void FailFinite(const char* file, int line, const char* what,
                             size_t index, double value) {
  FailContractF(file, line, what, "element %zu is %s", index,
                std::isnan(value) ? "nan" : "inf");
}

[[noreturn]] void FailSimplex(const char* file, int line, const char* what,
                              size_t size, size_t bad_index, double bad_value,
                              double sum, double tol) {
  if (bad_index < size) {
    FailContractF(file, line, what,
                  "weight %zu of %zu is %g, outside the simplex (tol %g)",
                  bad_index, size, bad_value, tol);
  }
  FailContractF(file, line, what, "weights sum to %.12g, not 1 (tol %g)", sum,
                tol);
}

void CheckShape(size_t got_rows, size_t got_cols, size_t want_rows,
                size_t want_cols, const char* what, const char* file,
                int line) {
  if (got_rows != want_rows || got_cols != want_cols) {
    FailContractF(file, line, what, "shape is %zux%zu, want %zux%zu", got_rows,
                  got_cols, want_rows, want_cols);
  }
}

void CheckDim(size_t got, size_t want, const char* what, const char* file,
              int line) {
  if (got != want) {
    FailContractF(file, line, what, "dimension is %zu, want %zu", got, want);
  }
}

void CheckBound(size_t index, size_t size, const char* what, const char* file,
                int line) {
  if (index >= size) {
    FailContractF(file, line, what, "index %zu out of bounds [0, %zu)", index,
                  size);
  }
}

void CheckRange(double x, double lo, double hi, const char* what,
                const char* file, int line) {
  if (!(x >= lo && x <= hi)) {  // also catches nan.
    FailContractF(file, line, what, "value %g outside [%g, %g]", x, lo, hi);
  }
}

}  // namespace internal
}  // namespace eadrl::chk
