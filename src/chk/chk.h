#ifndef EADRL_CHK_CHK_H_
#define EADRL_CHK_CHK_H_

#include <cmath>
#include <cstddef>

// eadrl::chk — numeric/contract sanitizer for the training and serving hot
// paths (see DESIGN.md, "Correctness tooling").
//
// Contracts are *compiled* in or out: with EADRL_CHECKS=0 every EADRL_CHK*
// macro expands to `static_cast<void>(0)` — arguments are never evaluated, so
// a disabled contract costs exactly nothing (bench/chk_bench.cc holds the
// nn-forward and combiner-predict hot paths to the pre-contract baseline).
// This mirrors the obs disabled-emission pattern, but moves the gate from a
// runtime atomic load to compile time because contracts sit inside inner
// loops that telemetry never enters.
//
// The gate resolves, most specific first:
//   1. EADRL_CHK_FORCE_ON / EADRL_CHK_FORCE_OFF — per-translation-unit
//      overrides for tests that must observe both behaviors in one binary.
//   2. EADRL_CHECKS (0/1) — the build-wide CMake option, propagated as a
//      PUBLIC compile definition of the eadrl target (default ON; serving
//      builds configure with -DEADRL_CHECKS=OFF).
//   3. NDEBUG — when nothing is configured, contracts follow assert().
//
// A violated contract formats "file:line: contract violated: [what] detail"
// and aborts, unless a test handler installed via SetFailureHandlerForTest
// intercepts it (the handler must not return; ours throw).

#if defined(EADRL_CHK_FORCE_ON)
#define EADRL_CHK_ENABLED 1
#elif defined(EADRL_CHK_FORCE_OFF)
#define EADRL_CHK_ENABLED 0
#elif defined(EADRL_CHECKS)
#define EADRL_CHK_ENABLED EADRL_CHECKS
#elif defined(NDEBUG)
#define EADRL_CHK_ENABLED 0
#else
#define EADRL_CHK_ENABLED 1
#endif

namespace eadrl::chk {

/// True when this translation unit was compiled with contracts on. Tests and
/// benchmarks branch on it to know whether the *library's* wired contracts
/// are live (the eadrl target publishes its EADRL_CHECKS setting).
inline constexpr bool Enabled() { return EADRL_CHK_ENABLED != 0; }

/// Test hook: receives the fully formatted violation message instead of the
/// default stderr+abort path. Must be thread-safe (contracts fire on pool
/// workers) and must not return — throw or abort. Pass nullptr to restore
/// the default. Not for production use: contracts are programmer errors.
using FailureHandler = void (*)(const char* formatted_message);
void SetFailureHandlerForTest(FailureHandler handler);

namespace internal {

/// Formats and reports the violation, then invokes the installed handler or
/// aborts. `what` names the op/tensor being checked ("Dense::Forward input",
/// "actor weights"); `detail` says how it failed ("element 3 is nan").
[[noreturn]] void FailContract(const char* file, int line, const char* what,
                               const char* detail);

/// FailContract with printf-style detail formatting.
[[noreturn]] void FailContractF(const char* file, int line, const char* what,
                                const char* detail_format, ...)
    __attribute__((format(printf, 4, 5)));

[[noreturn]] void FailFinite(const char* file, int line, const char* what,
                             size_t index, double value);

[[noreturn]] void FailSimplex(const char* file, int line, const char* what,
                              size_t size, size_t bad_index, double bad_value,
                              double sum, double tol);

/// Element-wise finiteness over any contiguous container of doubles
/// (math::Vec, Matrix::data()). Out-of-line slow path keeps the scan tight.
template <typename Container>
inline void CheckFiniteRange(const Container& c, const char* what,
                             const char* file, int line) {
  const double* data = c.data();
  const size_t n = c.size();
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) FailFinite(file, line, what, i, data[i]);
  }
}

inline void CheckFiniteValue(double v, const char* what, const char* file,
                             int line) {
  if (!std::isfinite(v)) FailFinite(file, line, what, 0, v);
}

/// Weights must be non-negative (within tol), finite, and sum to 1 within
/// tol — the simplex constraint every combiner action must satisfy.
template <typename Container>
inline void CheckSimplex(const Container& w, double tol, const char* what,
                         const char* file, int line) {
  const double* data = w.data();
  const size_t n = w.size();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!(data[i] >= -tol) || !std::isfinite(data[i])) {
      FailSimplex(file, line, what, n, i, data[i], 0.0, tol);
    }
    sum += data[i];
  }
  if (!(std::fabs(sum - 1.0) <= tol)) {
    FailSimplex(file, line, what, n, n, 0.0, sum, tol);
  }
}

void CheckShape(size_t got_rows, size_t got_cols, size_t want_rows,
                size_t want_cols, const char* what, const char* file,
                int line);

void CheckDim(size_t got, size_t want, const char* what, const char* file,
              int line);

void CheckBound(size_t index, size_t size, const char* what, const char* file,
                int line);

void CheckRange(double x, double lo, double hi, const char* what,
                const char* file, int line);

}  // namespace internal
}  // namespace eadrl::chk

#if EADRL_CHK_ENABLED

/// General contract: `what` names the violated invariant.
#define EADRL_CHK(cond, what)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::eadrl::chk::internal::FailContract(__FILE__, __LINE__, (what), \
                                           "condition " #cond          \
                                           " is false");               \
    }                                                                  \
  } while (0)

/// Every element of a contiguous double container is finite.
#define EADRL_CHK_FINITE(container, what) \
  ::eadrl::chk::internal::CheckFiniteRange((container), (what), __FILE__, \
                                           __LINE__)

/// A single scalar is finite.
#define EADRL_CHK_FINITE_VALUE(value, what) \
  ::eadrl::chk::internal::CheckFiniteValue((value), (what), __FILE__, __LINE__)

/// `weights` lies on the probability simplex within `tol`.
#define EADRL_CHK_SIMPLEX(weights, tol, what)                             \
  ::eadrl::chk::internal::CheckSimplex((weights), (tol), (what), __FILE__, \
                                       __LINE__)

/// A (rows, cols) pair matches the expected shape.
#define EADRL_CHK_SHAPE(got_rows, got_cols, want_rows, want_cols, what) \
  ::eadrl::chk::internal::CheckShape((got_rows), (got_cols), (want_rows), \
                                     (want_cols), (what), __FILE__, __LINE__)

/// A vector length matches the expected dimension.
#define EADRL_CHK_DIM(got, want, what) \
  ::eadrl::chk::internal::CheckDim((got), (want), (what), __FILE__, __LINE__)

/// index < size.
#define EADRL_CHK_BOUND(index, size, what)                              \
  ::eadrl::chk::internal::CheckBound((index), (size), (what), __FILE__, \
                                     __LINE__)

/// lo <= x <= hi, and x is finite.
#define EADRL_CHK_RANGE(x, lo, hi, what)                                  \
  ::eadrl::chk::internal::CheckRange((x), (lo), (hi), (what), __FILE__, \
                                     __LINE__)

#else  // !EADRL_CHK_ENABLED — contracts compile to nothing.

#define EADRL_CHK(cond, what) static_cast<void>(0)
#define EADRL_CHK_FINITE(container, what) static_cast<void>(0)
#define EADRL_CHK_FINITE_VALUE(value, what) static_cast<void>(0)
#define EADRL_CHK_SIMPLEX(weights, tol, what) static_cast<void>(0)
#define EADRL_CHK_SHAPE(got_rows, got_cols, want_rows, want_cols, what) \
  static_cast<void>(0)
#define EADRL_CHK_DIM(got, want, what) static_cast<void>(0)
#define EADRL_CHK_BOUND(index, size, what) static_cast<void>(0)
#define EADRL_CHK_RANGE(x, lo, hi, what) static_cast<void>(0)

#endif  // EADRL_CHK_ENABLED

#endif  // EADRL_CHK_CHK_H_
