#include "chk/lockdep.h"

#include <cstdlib>
#include <functional>
#include <type_traits>

namespace eadrl::chk {
namespace {

struct HeldLock {
  LockRank rank = LockRank::kCount;
  const void* mutex = nullptr;
  const char* site = "";
};

// The calling thread's stack of tracked locks, innermost last. Deliberately
// a fixed-size array, NOT a vector: the stack must be trivially destructible
// so it has no TLS destructor. The main thread's thread_local destructors
// run BEFORE static-duration destructors, and static-duration objects (the
// default pool) lock ranked mutexes while tearing down — with a vector here,
// those late hooks would push into a destroyed object (observed as glibc
// heap corruption at exit). A trivially-destructible thread_local keeps its
// storage valid for the entire thread lifetime. Capacity is sized to the
// deepest legitimate path: a serve drain wave holds one session lock per
// batched row (up to ServeConfig::max_batch, 64 in the benches) in
// canonical address order before taking the policy mutex, on top of the
// queue/stripe locks that got it there.
struct HeldStackStorage {
  static constexpr size_t kCapacity = 256;
  HeldLock entries[kCapacity];
  size_t depth = 0;
};

HeldStackStorage& HeldStack() {
  static_assert(std::is_trivially_destructible_v<HeldStackStorage>,
                "held stack must not have a TLS destructor (see comment)");
  thread_local HeldStackStorage stack;
  return stack;
}

const char* kRankNames[] = {
#define EADRL_LOCK(name, description) #name,
#include "chk/lock_order.def"
#undef EADRL_LOCK
};

const char* kRankDescriptions[] = {
#define EADRL_LOCK(name, description) description,
#include "chk/lock_order.def"
#undef EADRL_LOCK
};

static_assert(sizeof(kRankNames) / sizeof(kRankNames[0]) == kLockRankCount,
              "rank table out of sync with lock_order.def");

}  // namespace

const char* LockRankName(LockRank rank) {
  const auto i = static_cast<size_t>(rank);
  return i < kLockRankCount ? kRankNames[i] : "<invalid>";
}

const char* LockRankDescription(LockRank rank) {
  const auto i = static_cast<size_t>(rank);
  return i < kLockRankCount ? kRankDescriptions[i] : "<invalid>";
}

bool LockdepCompiled() { return EADRL_LOCKDEP_COMPILED != 0; }

LockTracker& LockTracker::Instance() {
  // Leaked singleton: OrderedMutexes live in objects with static storage
  // duration (the default pool) whose teardown may release locks after any
  // non-leaked tracker would have been destroyed.
  static LockTracker* tracker = new LockTracker();  // NOLINT(naked-new)
  return *tracker;
}

LockTracker::LockTracker() {
  const char* env = std::getenv("EADRL_LOCKDEP");
  enabled_.store(!(env != nullptr && env[0] == '0' && env[1] == '\0'),
                 std::memory_order_relaxed);
}

bool LockTracker::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void LockTracker::SetEnabledForTest(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void LockTracker::ResetForTest() {
  std::lock_guard<std::mutex> lock(graph_mu_);
  for (size_t i = 0; i < kLockRankCount; ++i) {
    for (size_t j = 0; j < kLockRankCount; ++j) {
      edges_[i][j].present.store(false, std::memory_order_relaxed);
      edges_[i][j].held_site = "";
      edges_[i][j].acquired_site = "";
    }
  }
  edge_count_ = 0;
  acquisitions_.store(0, std::memory_order_relaxed);
}

LockTracker::Stats LockTracker::GetStats() const {
  Stats stats;
  stats.tracked_acquisitions = acquisitions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    stats.edges_recorded = edge_count_;
  }
  stats.held_on_this_thread = HeldStack().depth;
  return stats;
}

bool LockTracker::Reachable(size_t from, size_t to) const {
  if (from == to) return true;
  // Iterative DFS over at most kLockRankCount nodes; the explicit stack
  // avoids recursion in a failure path that may run under low stack.
  bool visited[kLockRankCount] = {};
  size_t work[kLockRankCount];
  size_t depth = 0;
  work[depth++] = from;
  visited[from] = true;
  while (depth > 0) {
    const size_t node = work[--depth];
    for (size_t next = 0; next < kLockRankCount; ++next) {
      if (visited[next] ||
          !edges_[node][next].present.load(std::memory_order_relaxed)) {
        continue;
      }
      if (next == to) return true;
      visited[next] = true;
      work[depth++] = next;
    }
  }
  return false;
}

void LockTracker::OnAcquire(LockRank rank, const void* mutex,
                            const char* site, bool blocking) {
  HeldStackStorage& held = HeldStack();
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const size_t to = static_cast<size_t>(rank);
  if (held.depth == HeldStackStorage::kCapacity) {
    internal::FailContractF(
        __FILE__, __LINE__, "lockdep held stack",
        "thread holds %zu tracked locks while acquiring '%s' -- nesting this "
        "deep is a bug, not a capacity problem",
        held.depth, site);
  }

  // All checks run BEFORE this acquisition joins the held stack, so a
  // throwing test failure handler leaves the stack consistent with what the
  // thread actually holds.
  for (size_t hi = 0; hi < held.depth; ++hi) {
    const HeldLock& h = held.entries[hi];
    if (h.rank == rank) {
      // Same-rank nesting (two stripes, two sessions) is legal only in
      // ascending address order — the global tiebreak that makes same-rank
      // acquisition conflict-free across threads.
      if (!std::less<const void*>()(h.mutex, mutex)) {
        internal::FailContractF(
            __FILE__, __LINE__, "lock order (same rank)",
            "acquiring '%s' (rank %s) at %p while holding '%s' at %p; "
            "same-rank locks must be taken in ascending address order",
            site, LockRankName(rank), mutex, h.site, h.mutex);
      }
      continue;
    }
    if (!blocking) continue;  // try_lock cannot deadlock: no edge.
    const size_t from = static_cast<size_t>(h.rank);
    if (edges_[from][to].present.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(graph_mu_);
    if (edges_[from][to].present.load(std::memory_order_relaxed)) continue;
    // First observation of (h.rank -> rank). If rank already reaches h.rank
    // through recorded edges, this edge closes a cycle: two threads
    // interleaving the two paths deadlock. Report before recording so the
    // graph keeps only acyclic (reachability-meaningful) edges.
    if (Reachable(to, from)) {
      const Edge& reverse = edges_[to][from];
      if (reverse.present.load(std::memory_order_relaxed)) {
        internal::FailContractF(
            __FILE__, __LINE__, "lock-order cycle",
            "acquiring '%s' (rank %s) while holding '%s' (rank %s), but the "
            "opposite order was already observed (held '%s' then acquired "
            "'%s') -- these two paths deadlock under interleaving; see "
            "src/chk/lock_order.def",
            site, LockRankName(rank), h.site, LockRankName(h.rank),
            reverse.held_site, reverse.acquired_site);
      }
      internal::FailContractF(
          __FILE__, __LINE__, "lock-order cycle",
          "acquiring '%s' (rank %s) while holding '%s' (rank %s) closes a "
          "cycle through previously observed acquired-after edges -- these "
          "paths deadlock under interleaving; see src/chk/lock_order.def",
          site, LockRankName(rank), h.site, LockRankName(h.rank));
    }
    edges_[from][to].held_site = h.site;
    edges_[from][to].acquired_site = site;
    edges_[from][to].present.store(true, std::memory_order_release);
    ++edge_count_;
  }
  held.entries[held.depth++] = HeldLock{rank, mutex, site};
}

void LockTracker::OnRelease(LockRank rank, const void* mutex) {
  HeldStackStorage& held = HeldStack();
  // Locks release in (near-)LIFO order, but std::unique_lock allows
  // out-of-order unlocks (ProcessWave releases session locks in wave
  // order), so scan from the top.
  for (size_t i = held.depth; i > 0; --i) {
    if (held.entries[i - 1].mutex == mutex && held.entries[i - 1].rank == rank) {
      for (size_t j = i - 1; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.depth;
      return;
    }
  }
  // Not found: the lock was acquired while tracking was disabled (or before
  // a ResetForTest) — ignore rather than fail, so toggling is safe.
}

namespace internal_lockdep {

void OnAcquire(LockRank rank, const void* mutex, const char* site,
               bool blocking) {
  LockTracker& tracker = LockTracker::Instance();
  if (!tracker.enabled()) return;
  tracker.OnAcquire(rank, mutex, site, blocking);
}

void OnRelease(LockRank rank, const void* mutex) {
  LockTracker& tracker = LockTracker::Instance();
  if (!tracker.enabled()) return;
  tracker.OnRelease(rank, mutex);
}

}  // namespace internal_lockdep
}  // namespace eadrl::chk
