#ifndef EADRL_CHK_LOCKDEP_H_
#define EADRL_CHK_LOCKDEP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "chk/chk.h"
#include "chk/thread_annotations.h"

// Runtime lock-order checking (see DESIGN.md, "Correctness tooling"). The
// static half of lock discipline is eadrl_lint's lock-order rule over
// src/chk/lock_order.def; this header is the dynamic half, in the style of
// the kernel's lockdep: chk::OrderedMutex is a std::mutex that carries a
// LockRank, and chk::LockTracker maintains a per-thread held-lock stack plus
// a process-wide acquired-after edge graph over ranks. The first acquisition
// that would close a cycle in that graph — a real deadlock candidate, even
// if no two threads have interleaved badly yet — fails a contract naming
// both lock sites and the edge observed earlier. Same-rank nesting (two
// table stripes, two sessions in a wave) is legal only in ascending address
// order, which is the discipline ProcessWave's address sort implements.
//
// Cost model: tracking follows the library-wide EADRL_CHECKS setting (the
// same PUBLIC compile definition that gates EADRL_CHK). With checks off,
// OrderedMutex::lock() inlines to exactly std::mutex::lock() — the rank is
// still stored (layout never changes across build modes; the per-TU
// EADRL_CHK_FORCE_ON/OFF overrides deliberately do NOT apply here, because a
// class layout or inline body that varied per-TU would be an ODR violation)
// but no hook runs and no thread-local state exists.
// tests/lock_order_test.cc holds both claims: cycle detection fires when
// compiled in, and a checks-off binary performs zero tracked acquisitions.
//
// With checks compiled in, tracking defaults ON and can be disabled for a
// process with EADRL_LOCKDEP=0 (check.sh forces it on for the TSan stage
// with EADRL_LOCKDEP=1); tests toggle it via LockTracker::SetEnabledForTest.

// Library-wide gate: EADRL_CHECKS, else assert()'s convention. Unlike
// EADRL_CHK_ENABLED this ignores EADRL_CHK_FORCE_ON/OFF — see above.
#if defined(EADRL_CHECKS)
#define EADRL_LOCKDEP_COMPILED EADRL_CHECKS
#elif defined(NDEBUG)
#define EADRL_LOCKDEP_COMPILED 0
#else
#define EADRL_LOCKDEP_COMPILED 1
#endif

namespace eadrl::chk {

/// One rank per entry of src/chk/lock_order.def, in file (= allowed
/// acquisition) order. Rank values are comparable: a thread holding rank R
/// may only acquire ranks >= R (equal ranks in ascending address order).
enum class LockRank : int {
#define EADRL_LOCK(name, description) k_##name,
#include "chk/lock_order.def"
#undef EADRL_LOCK
  kCount,
};

inline constexpr size_t kLockRankCount =
    static_cast<size_t>(LockRank::kCount);

/// Registry name / description for a rank (lock_order.def order).
const char* LockRankName(LockRank rank);
const char* LockRankDescription(LockRank rank);

/// Names a rank at an OrderedMutex construction site. eadrl_lint's
/// lock-order rule reads these bindings textually, so always construct with
/// the macro (never a bare LockRank value): the macro is what associates the
/// member name with its rank for the static analysis.
#define EADRL_LOCK_RANK(name) ::eadrl::chk::LockRank::k_##name

/// True when this build carries the lock tracker (EADRL_CHECKS at library
/// build time). The runtime toggle below is only meaningful when true.
bool LockdepCompiled();

namespace internal_lockdep {
void OnAcquire(LockRank rank, const void* mutex, const char* site,
               bool blocking);
void OnRelease(LockRank rank, const void* mutex);
}  // namespace internal_lockdep

/// A std::mutex with a declared rank. Drop-in for the std lock helpers
/// (std::lock_guard<chk::OrderedMutex>, std::unique_lock<...>,
/// std::scoped_lock); condition variables need std::condition_variable_any.
class EADRL_CAPABILITY("mutex") OrderedMutex {
 public:
  /// `site` names the member for failure reports ("serve::Session::
  /// session_mu"); it must be a string literal (stored by pointer).
  OrderedMutex(LockRank rank, const char* site) : rank_(rank), site_(site) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() EADRL_ACQUIRE() {
#if EADRL_LOCKDEP_COMPILED
    // Hook BEFORE the blocking acquire: a would-deadlock cycle must be
    // reported while this thread can still make progress.
    internal_lockdep::OnAcquire(rank_, this, site_, /*blocking=*/true);
#endif
    mu_.lock();
  }

  void unlock() EADRL_RELEASE() {
    mu_.unlock();
#if EADRL_LOCKDEP_COMPILED
    internal_lockdep::OnRelease(rank_, this);
#endif
  }

  bool try_lock() EADRL_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if EADRL_LOCKDEP_COMPILED
    // A successful try_lock cannot deadlock, so it contributes no
    // acquired-after edges — it only joins the held stack (lockdep's
    // trylock convention).
    internal_lockdep::OnAcquire(rank_, this, site_, /*blocking=*/false);
#endif
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* site() const { return site_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const site_;
};

/// Process-wide acquisition tracker. Library code never calls this directly
/// (OrderedMutex does); tests inspect and reset it.
class LockTracker {
 public:
  static LockTracker& Instance();

  struct Stats {
    uint64_t tracked_acquisitions = 0;  ///< hooks that ran with tracking on.
    uint64_t edges_recorded = 0;        ///< distinct acquired-after edges.
    size_t held_on_this_thread = 0;     ///< calling thread's stack depth.
  };
  Stats GetStats() const;

  /// Runtime toggle. Compiled-in builds start enabled unless the
  /// EADRL_LOCKDEP environment variable is "0" at first use.
  bool enabled() const;
  void SetEnabledForTest(bool enabled);

  /// Clears the edge graph and counters (NOT other threads' held stacks).
  /// Call from tests with no tracked locks held.
  void ResetForTest();

  // Hooks (via internal_lockdep; public so the out-of-line shims can reach
  // them without a friend maze).
  void OnAcquire(LockRank rank, const void* mutex, const char* site,
                 bool blocking);
  void OnRelease(LockRank rank, const void* mutex);

 private:
  LockTracker();

  /// One acquired-after edge. `present` is checked lock-free on the hot
  /// path (an edge seen before cannot create a new cycle, so re-observing
  /// it costs one relaxed load); graph_mu_ serializes first insertions and
  /// guards the site strings. The tracker deliberately adds NO
  /// synchronization between acquisitions beyond this — a global lock on
  /// every acquire would manufacture happens-before edges and hide real
  /// races from the TSan stage that runs with lockdep forced on.
  struct Edge {
    std::atomic<bool> present{false};
    // First observation of this edge, for the cycle report. Written under
    // graph_mu_ before `present` is released; read under graph_mu_.
    const char* held_site = "";
    const char* acquired_site = "";
  };

  /// True when `to` is reachable from `from` in the edge graph. Caller
  /// holds graph_mu_ (insertions are serialized; `present` loads race only
  /// with other readers).
  bool Reachable(size_t from, size_t to) const EADRL_REQUIRES(graph_mu_);

  /// Serializes edge insertion; deliberately a plain (untracked) std::mutex
  /// — the tracker cannot track itself. Always innermost: nothing is
  /// acquired while it is held.
  mutable std::mutex graph_mu_;
  Edge edges_[kLockRankCount][kLockRankCount];
  uint64_t edge_count_ EADRL_GUARDED_BY(graph_mu_) = 0;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace eadrl::chk

#endif  // EADRL_CHK_LOCKDEP_H_
