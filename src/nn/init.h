#ifndef EADRL_NN_INIT_H_
#define EADRL_NN_INIT_H_

#include "common/rng.h"
#include "math/matrix.h"

namespace eadrl::nn {

/// Xavier/Glorot uniform initialization: U(-r, r), r = sqrt(6/(fan_in+fan_out)).
void XavierInit(math::Matrix* w, size_t fan_in, size_t fan_out, Rng& rng);

/// He (Kaiming) normal initialization: N(0, 2/fan_in). For ReLU layers.
void HeInit(math::Matrix* w, size_t fan_in, Rng& rng);

/// Uniform initialization in [-r, r] (DDPG's final-layer init uses small r).
void UniformInit(math::Matrix* w, double r, Rng& rng);

}  // namespace eadrl::nn

#endif  // EADRL_NN_INIT_H_
