#include "nn/activation.h"

#include <cmath>

#include "common/check.h"
#include "obs/resource.h"

namespace eadrl::nn {

double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double TanhScalar(double x) { return std::tanh(x); }

math::Vec ApplyActivation(Activation act, const math::Vec& z) {
  obs::CountAlloc(z.size() * sizeof(double));
  math::Vec out(z.size());
  switch (act) {
    case Activation::kIdentity:
      out = z;
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < z.size(); ++i) out[i] = z[i] > 0.0 ? z[i] : 0.0;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < z.size(); ++i) out[i] = std::tanh(z[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < z.size(); ++i) out[i] = SigmoidScalar(z[i]);
      break;
  }
  return out;
}

void ApplyActivationInPlace(Activation act, double* z, size_t n) {
  switch (act) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) z[i] = z[i] > 0.0 ? z[i] : 0.0;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) z[i] = std::tanh(z[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) z[i] = SigmoidScalar(z[i]);
      break;
  }
}

void MultiplyActivationDerivative(Activation act, const math::Matrix& z,
                                  math::Matrix* grad) {
  EADRL_CHECK(grad->rows() == z.rows() && grad->cols() == z.cols());
  const size_t n = z.size();
  const double* zp = z.data().data();
  double* gp = grad->data().data();
  switch (act) {
    case Activation::kIdentity:
      break;  // act' == 1.
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) gp[i] = zp[i] > 0.0 ? gp[i] : 0.0;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) {
        double t = std::tanh(zp[i]);
        gp[i] *= 1.0 - t * t;
      }
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) {
        double s = SigmoidScalar(zp[i]);
        gp[i] *= s * (1.0 - s);
      }
      break;
  }
}

math::Vec ActivationDerivative(Activation act, const math::Vec& z) {
  obs::CountAlloc(z.size() * sizeof(double));
  math::Vec out(z.size());
  switch (act) {
    case Activation::kIdentity:
      for (double& v : out) v = 1.0;
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < z.size(); ++i) out[i] = z[i] > 0.0 ? 1.0 : 0.0;
      break;
    case Activation::kTanh: {
      for (size_t i = 0; i < z.size(); ++i) {
        double t = std::tanh(z[i]);
        out[i] = 1.0 - t * t;
      }
      break;
    }
    case Activation::kSigmoid: {
      for (size_t i = 0; i < z.size(); ++i) {
        double s = SigmoidScalar(z[i]);
        out[i] = s * (1.0 - s);
      }
      break;
    }
  }
  return out;
}

}  // namespace eadrl::nn
