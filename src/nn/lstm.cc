#include "nn/lstm.h"

#include <cmath>

#include "chk/chk.h"
#include "common/check.h"
#include "nn/activation.h"
#include "nn/init.h"

namespace eadrl::nn {

Lstm::Lstm(size_t input_size, size_t hidden_size, Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_(4 * hidden_size, input_size),
      u_(4 * hidden_size, hidden_size),
      b_(4 * hidden_size, 1) {
  XavierInit(&w_.value, input_size + hidden_size, hidden_size, rng);
  XavierInit(&u_.value, input_size + hidden_size, hidden_size, rng);
  // Forget-gate bias of 1.0 helps gradient flow early in training.
  for (size_t i = hidden_size_; i < 2 * hidden_size_; ++i) {
    b_.value(i, 0) = 1.0;
  }
}

std::vector<math::Vec> Lstm::Forward(const std::vector<math::Vec>& inputs) {
  EADRL_CHECK(!inputs.empty());
  cache_.clear();
  cache_.reserve(inputs.size());

  const size_t h = hidden_size_;
  math::Vec h_prev(h, 0.0), c_prev(h, 0.0);
  std::vector<math::Vec> hs;
  hs.reserve(inputs.size());

  for (const math::Vec& x : inputs) {
    EADRL_CHK_DIM(x.size(), input_size_, "Lstm::Forward step input");
    EADRL_CHK_FINITE(x, "Lstm::Forward step input");
    EADRL_CHECK_EQ(x.size(), input_size_);
    math::Vec z = w_.value.MatVec(x);
    math::Vec uz = u_.value.MatVec(h_prev);
    for (size_t i = 0; i < 4 * h; ++i) z[i] += uz[i] + b_.value(i, 0);

    StepCache sc;
    sc.input = x;
    sc.h_prev = h_prev;
    sc.c_prev = c_prev;
    sc.i.resize(h);
    sc.f.resize(h);
    sc.g.resize(h);
    sc.o.resize(h);
    sc.c.resize(h);
    sc.tanh_c.resize(h);
    math::Vec h_new(h);
    for (size_t j = 0; j < h; ++j) {
      sc.i[j] = SigmoidScalar(z[j]);
      sc.f[j] = SigmoidScalar(z[h + j]);
      sc.g[j] = TanhScalar(z[2 * h + j]);
      sc.o[j] = SigmoidScalar(z[3 * h + j]);
      sc.c[j] = sc.f[j] * c_prev[j] + sc.i[j] * sc.g[j];
      sc.tanh_c[j] = TanhScalar(sc.c[j]);
      h_new[j] = sc.o[j] * sc.tanh_c[j];
    }
    h_prev = h_new;
    c_prev = sc.c;
    hs.push_back(h_new);
    cache_.push_back(std::move(sc));
  }
  // A non-finite hidden state here means the recurrent weights diverged —
  // catch it where the stage is still identifiable.
  EADRL_CHK_FINITE(hs.back(), "Lstm::Forward final hidden state");
  return hs;
}

std::vector<math::Vec> Lstm::Backward(
    const std::vector<math::Vec>& grad_hidden) {
  EADRL_CHECK_EQ(grad_hidden.size(), cache_.size());
  const size_t h = hidden_size_;
  const size_t t_steps = cache_.size();

  std::vector<math::Vec> grad_inputs(t_steps);
  math::Vec dh_next(h, 0.0), dc_next(h, 0.0);

  for (size_t tt = 0; tt < t_steps; ++tt) {
    size_t t = t_steps - 1 - tt;
    const StepCache& sc = cache_[t];

    math::Vec dh(h);
    for (size_t j = 0; j < h; ++j) dh[j] = grad_hidden[t][j] + dh_next[j];

    math::Vec dz(4 * h);
    math::Vec dc(h);
    for (size_t j = 0; j < h; ++j) {
      double d_o = dh[j] * sc.tanh_c[j];
      dc[j] = dh[j] * sc.o[j] * (1.0 - sc.tanh_c[j] * sc.tanh_c[j]) +
              dc_next[j];
      double d_i = dc[j] * sc.g[j];
      double d_f = dc[j] * sc.c_prev[j];
      double d_g = dc[j] * sc.i[j];
      dz[j] = d_i * sc.i[j] * (1.0 - sc.i[j]);
      dz[h + j] = d_f * sc.f[j] * (1.0 - sc.f[j]);
      dz[2 * h + j] = d_g * (1.0 - sc.g[j] * sc.g[j]);
      dz[3 * h + j] = d_o * sc.o[j] * (1.0 - sc.o[j]);
    }

    // Parameter gradients.
    for (size_t r = 0; r < 4 * h; ++r) {
      b_.grad(r, 0) += dz[r];
      if (dz[r] == 0.0) continue;
      for (size_t cix = 0; cix < input_size_; ++cix) {
        w_.grad(r, cix) += dz[r] * sc.input[cix];
      }
      for (size_t cix = 0; cix < h; ++cix) {
        u_.grad(r, cix) += dz[r] * sc.h_prev[cix];
      }
    }

    grad_inputs[t] = w_.value.TransposeMatVec(dz);
    dh_next = u_.value.TransposeMatVec(dz);
    for (size_t j = 0; j < h; ++j) dc_next[j] = dc[j] * sc.f[j];
  }
  return grad_inputs;
}

std::vector<Param*> Lstm::Params() { return {&w_, &u_, &b_}; }

}  // namespace eadrl::nn
