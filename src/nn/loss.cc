#include "nn/loss.h"

#include <cmath>

#include "common/check.h"

namespace eadrl::nn {

LossResult MseLoss(const math::Vec& pred, const math::Vec& target) {
  EADRL_CHECK_EQ(pred.size(), target.size());
  EADRL_CHECK(!pred.empty());
  LossResult out;
  out.grad.resize(pred.size());
  double n = static_cast<double>(pred.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - target[i];
    out.value += d * d / n;
    out.grad[i] = 2.0 * d / n;
  }
  return out;
}

LossResult HuberLoss(const math::Vec& pred, const math::Vec& target,
                     double delta) {
  EADRL_CHECK_EQ(pred.size(), target.size());
  EADRL_CHECK(!pred.empty());
  EADRL_CHECK_GT(delta, 0.0);
  LossResult out;
  out.grad.resize(pred.size());
  double n = static_cast<double>(pred.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - target[i];
    if (std::fabs(d) <= delta) {
      out.value += 0.5 * d * d / n;
      out.grad[i] = d / n;
    } else {
      out.value += delta * (std::fabs(d) - 0.5 * delta) / n;
      out.grad[i] = (d > 0 ? delta : -delta) / n;
    }
  }
  return out;
}

}  // namespace eadrl::nn
