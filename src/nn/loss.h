#ifndef EADRL_NN_LOSS_H_
#define EADRL_NN_LOSS_H_

#include "math/vec.h"

namespace eadrl::nn {

/// Loss value and gradient with respect to the prediction.
struct LossResult {
  double value = 0.0;
  math::Vec grad;
};

/// Mean squared error over the vector: L = mean((pred - target)^2).
LossResult MseLoss(const math::Vec& pred, const math::Vec& target);

/// Huber loss with threshold delta (robust to outliers).
LossResult HuberLoss(const math::Vec& pred, const math::Vec& target,
                     double delta);

}  // namespace eadrl::nn

#endif  // EADRL_NN_LOSS_H_
