#include "nn/serialize.h"

#include <iomanip>
#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace eadrl::nn {

Status WriteMatrices(std::ostream& out,
                     const std::vector<math::Matrix>& matrices) {
  out << "matrices " << matrices.size() << "\n";
  out << std::setprecision(17);
  for (const math::Matrix& m : matrices) {
    out << m.rows() << " " << m.cols() << "\n";
    for (size_t i = 0; i < m.rows(); ++i) {
      for (size_t j = 0; j < m.cols(); ++j) {
        if (j > 0) out << " ";
        out << m(i, j);
      }
      out << "\n";
    }
  }
  if (!out) return Status::Internal("WriteMatrices: stream write failed");
  return Status::Ok();
}

StatusOr<std::vector<math::Matrix>> ReadMatrices(std::istream& in) {
  std::string tag;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "matrices") {
    return Status::InvalidArgument("ReadMatrices: bad header");
  }
  if (count > 10000) {
    return Status::InvalidArgument("ReadMatrices: implausible matrix count");
  }
  std::vector<math::Matrix> matrices;
  matrices.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows == 0 || cols == 0 ||
        rows * cols > (1u << 26)) {
      return Status::InvalidArgument(
          StrCat("ReadMatrices: bad shape for matrix ", k));
    }
    math::Matrix m(rows, cols);
    for (double& v : m.data()) {
      if (!(in >> v)) {
        return Status::InvalidArgument(
            StrCat("ReadMatrices: truncated values in matrix ", k));
      }
    }
    matrices.push_back(std::move(m));
  }
  return matrices;
}

}  // namespace eadrl::nn
