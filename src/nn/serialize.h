#ifndef EADRL_NN_SERIALIZE_H_
#define EADRL_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace eadrl::nn {

/// Writes a list of matrices to a stream in a line-oriented text format
/// (shape header followed by full-precision values).
Status WriteMatrices(std::ostream& out,
                     const std::vector<math::Matrix>& matrices);

/// Reads matrices previously written by WriteMatrices.
StatusOr<std::vector<math::Matrix>> ReadMatrices(std::istream& in);

}  // namespace eadrl::nn

#endif  // EADRL_NN_SERIALIZE_H_
