#include "nn/conv1d.h"

#include "chk/chk.h"
#include "common/check.h"
#include "nn/init.h"

namespace eadrl::nn {

Conv1d::Conv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
               Activation act, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      act_(act),
      kernel_(out_channels, kernel_size * in_channels),
      bias_(out_channels, 1) {
  EADRL_CHECK_GT(kernel_size, 0u);
  XavierInit(&kernel_.value, kernel_size * in_channels, out_channels, rng);
}

math::Matrix Conv1d::Forward(const math::Matrix& input) {
  EADRL_CHK_DIM(input.cols(), in_channels_, "Conv1d::Forward input channels");
  EADRL_CHK(input.rows() >= kernel_size_,
            "Conv1d::Forward input shorter than kernel");
  EADRL_CHK_FINITE(input.data(), "Conv1d::Forward input");
  EADRL_CHECK_EQ(input.cols(), in_channels_);
  EADRL_CHECK_GE(input.rows(), kernel_size_);
  const size_t out_t = input.rows() - kernel_size_ + 1;
  last_input_ = input;
  last_pre_activation_ = math::Matrix(out_t, out_channels_);

  for (size_t t = 0; t < out_t; ++t) {
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      double s = bias_.value(oc, 0);
      for (size_t k = 0; k < kernel_size_; ++k) {
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          s += kernel_.value(oc, k * in_channels_ + ic) * input(t + k, ic);
        }
      }
      last_pre_activation_(t, oc) = s;
    }
  }

  math::Matrix out = last_pre_activation_;
  for (size_t i = 0; i < out.rows(); ++i) {
    math::Vec row = ApplyActivation(act_, out.Row(i));
    out.SetRow(i, row);
  }
  return out;
}

math::Matrix Conv1d::Backward(const math::Matrix& grad_output) {
  const size_t out_t = last_pre_activation_.rows();
  EADRL_CHK_SHAPE(grad_output.rows(), grad_output.cols(), out_t,
                  out_channels_, "Conv1d::Backward grad_output");
  EADRL_CHK_FINITE(grad_output.data(), "Conv1d::Backward grad_output");
  EADRL_CHECK_EQ(grad_output.rows(), out_t);
  EADRL_CHECK_EQ(grad_output.cols(), out_channels_);

  math::Matrix grad_input(last_input_.rows(), in_channels_);
  for (size_t t = 0; t < out_t; ++t) {
    math::Vec dact = ActivationDerivative(act_, last_pre_activation_.Row(t));
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      double dz = grad_output(t, oc) * dact[oc];
      if (dz == 0.0) continue;
      bias_.grad(oc, 0) += dz;
      for (size_t k = 0; k < kernel_size_; ++k) {
        for (size_t ic = 0; ic < in_channels_; ++ic) {
          kernel_.grad(oc, k * in_channels_ + ic) +=
              dz * last_input_(t + k, ic);
          grad_input(t + k, ic) +=
              dz * kernel_.value(oc, k * in_channels_ + ic);
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv1d::Params() { return {&kernel_, &bias_}; }

}  // namespace eadrl::nn
