#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace eadrl::nn {

void Optimizer::StepAndZero() {
  Step();
  ZeroGrads(params_);
}

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  EADRL_CHECK_GT(lr, 0.0);
}

void Sgd::Register(const std::vector<Param*>& params) {
  params_ = params;
  velocity_.clear();
  for (const Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  EADRL_CHECK(!params_.empty());
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& val = params_[i]->value.data();
    const auto& grad = params_[i]->grad.data();
    auto& vel = velocity_[i].data();
    for (size_t j = 0; j < val.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * grad[j];
      val[j] += vel[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  EADRL_CHECK_GT(lr, 0.0);
}

void Adam::Register(const std::vector<Param*>& params) {
  params_ = params;
  m_.clear();
  v_.clear();
  t_ = 0;
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  EADRL_CHECK(!params_.empty());
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& val = params_[i]->value.data();
    const auto& grad = params_[i]->grad.data();
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    for (size_t j = 0; j < val.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
      double mhat = m[j] / bc1;
      double vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace eadrl::nn
