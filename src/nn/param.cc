#include "nn/param.h"

#include <cmath>

#include "common/check.h"

namespace eadrl::nn {

void ZeroGrads(const std::vector<Param*>& params) {
  for (Param* p : params) p->ZeroGrad();
}

double ClipGradNorm(const std::vector<Param*>& params, double max_norm) {
  EADRL_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const Param* p : params) {
    for (double g : p->grad.data()) sq += g * g;
  }
  double norm = std::sqrt(sq);
  if (norm > max_norm) {
    double scale = max_norm / (norm + 1e-12);
    for (Param* p : params) p->grad.Scale(scale);
  }
  return norm;
}

void SoftUpdate(const std::vector<Param*>& target,
                const std::vector<Param*>& source, double tau) {
  EADRL_CHECK_EQ(target.size(), source.size());
  for (size_t i = 0; i < target.size(); ++i) {
    auto& tv = target[i]->value.data();
    const auto& sv = source[i]->value.data();
    EADRL_CHECK_EQ(tv.size(), sv.size());
    for (size_t j = 0; j < tv.size(); ++j) {
      tv[j] = tau * sv[j] + (1.0 - tau) * tv[j];
    }
  }
}

void CopyParams(const std::vector<Param*>& target,
                const std::vector<Param*>& source) {
  SoftUpdate(target, source, 1.0);
}

}  // namespace eadrl::nn
