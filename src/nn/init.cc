#include "nn/init.h"

#include <cmath>

namespace eadrl::nn {

void XavierInit(math::Matrix* w, size_t fan_in, size_t fan_out, Rng& rng) {
  double r = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : w->data()) v = rng.Uniform(-r, r);
}

void HeInit(math::Matrix* w, size_t fan_in, Rng& rng) {
  double s = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (double& v : w->data()) v = rng.Normal(0.0, s);
}

void UniformInit(math::Matrix* w, double r, Rng& rng) {
  for (double& v : w->data()) v = rng.Uniform(-r, r);
}

}  // namespace eadrl::nn
