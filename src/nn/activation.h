#ifndef EADRL_NN_ACTIVATION_H_
#define EADRL_NN_ACTIVATION_H_

#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::nn {

/// Elementwise activation functions used by dense and recurrent layers.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// Applies the activation elementwise.
math::Vec ApplyActivation(Activation act, const math::Vec& z);

/// Derivative of the activation evaluated at pre-activation z (elementwise).
math::Vec ActivationDerivative(Activation act, const math::Vec& z);

/// Applies the activation elementwise in place (z := act(z)). The no-alloc
/// building block of both the scalar-Into and the batched forward paths;
/// applies the same per-element formulas as ApplyActivation.
void ApplyActivationInPlace(Activation act, double* z, size_t n);

/// grad[i] *= act'(z[i]) elementwise over a batch matrix — the batched
/// equivalent of multiplying by ActivationDerivative, same formulas.
void MultiplyActivationDerivative(Activation act, const math::Matrix& z,
                                  math::Matrix* grad);

/// Scalar helpers (used by LSTM cells).
double SigmoidScalar(double x);
double TanhScalar(double x);

}  // namespace eadrl::nn

#endif  // EADRL_NN_ACTIVATION_H_
