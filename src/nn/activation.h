#ifndef EADRL_NN_ACTIVATION_H_
#define EADRL_NN_ACTIVATION_H_

#include "math/vec.h"

namespace eadrl::nn {

/// Elementwise activation functions used by dense and recurrent layers.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// Applies the activation elementwise.
math::Vec ApplyActivation(Activation act, const math::Vec& z);

/// Derivative of the activation evaluated at pre-activation z (elementwise).
math::Vec ActivationDerivative(Activation act, const math::Vec& z);

/// Scalar helpers (used by LSTM cells).
double SigmoidScalar(double x);
double TanhScalar(double x);

}  // namespace eadrl::nn

#endif  // EADRL_NN_ACTIVATION_H_
