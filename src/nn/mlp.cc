#include "nn/mlp.h"

#include "chk/chk.h"
#include "common/check.h"

namespace eadrl::nn {

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Activation hidden_act,
         Activation output_act, Rng& rng) {
  EADRL_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    bool is_output = (i + 2 == layer_sizes.size());
    layers_.push_back(std::make_unique<Dense>(
        layer_sizes[i], layer_sizes[i + 1],
        is_output ? output_act : hidden_act, rng));
  }
}

math::Vec Mlp::Forward(const math::Vec& input) {
  math::Vec h = input;
  for (auto& layer : layers_) h = layer->Forward(h);
  // Finite inputs (checked per layer) with a non-finite output pins the
  // corruption on this network's own weights.
  EADRL_CHK_FINITE(h, "Mlp::Forward output");
  return h;
}

const math::Vec& Mlp::Predict(const math::Vec& input) {
  const math::Vec* cur = &input;
  math::Vec* bufs[2] = {&predict_a_, &predict_b_};
  size_t which = 0;
  for (auto& layer : layers_) {
    math::Vec* next = bufs[which];
    layer->ForwardInto(*cur, next, /*train=*/false);
    cur = next;
    which ^= 1;
  }
  EADRL_CHK_FINITE(*cur, "Mlp::Forward output");
  return *cur;
}

math::Vec Mlp::Backward(const math::Vec& grad_output) {
  math::Vec g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

const math::Matrix& Mlp::ForwardBatch(const math::Matrix& batch, bool train) {
  batch_acts_.resize(layers_.size());
  const math::Matrix* cur = &batch;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->ForwardBatch(*cur, &batch_acts_[i], train);
    cur = &batch_acts_[i];
  }
  EADRL_CHK_FINITE(cur->data(), "Mlp::ForwardBatch output");
  return *cur;
}

const math::Matrix& Mlp::BackwardBatch(const math::Matrix& grad_output) {
  const math::Matrix* cur = &grad_output;
  math::Matrix* bufs[2] = {&batch_grad_a_, &batch_grad_b_};
  size_t which = 0;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    math::Matrix* next = bufs[which];
    (*it)->BackwardBatch(*cur, next);
    cur = next;
    which ^= 1;
  }
  return *cur;
}

std::vector<Param*> Mlp::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Mlp::ReinitOutputUniform(double r, Rng& rng) {
  layers_.back()->ReinitUniform(r, rng);
}

}  // namespace eadrl::nn
