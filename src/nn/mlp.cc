#include "nn/mlp.h"

#include "chk/chk.h"
#include "common/check.h"

namespace eadrl::nn {

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Activation hidden_act,
         Activation output_act, Rng& rng) {
  EADRL_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    bool is_output = (i + 2 == layer_sizes.size());
    layers_.push_back(std::make_unique<Dense>(
        layer_sizes[i], layer_sizes[i + 1],
        is_output ? output_act : hidden_act, rng));
  }
}

math::Vec Mlp::Forward(const math::Vec& input) {
  math::Vec h = input;
  for (auto& layer : layers_) h = layer->Forward(h);
  // Finite inputs (checked per layer) with a non-finite output pins the
  // corruption on this network's own weights.
  EADRL_CHK_FINITE(h, "Mlp::Forward output");
  return h;
}

math::Vec Mlp::Backward(const math::Vec& grad_output) {
  math::Vec g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param*> Mlp::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) out.push_back(p);
  }
  return out;
}

void Mlp::ReinitOutputUniform(double r, Rng& rng) {
  layers_.back()->ReinitUniform(r, rng);
}

}  // namespace eadrl::nn
