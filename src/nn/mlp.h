#ifndef EADRL_NN_MLP_H_
#define EADRL_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "nn/dense.h"

namespace eadrl::nn {

/// Multi-layer perceptron: a stack of Dense layers.
///
/// The hidden layers use `hidden_act`; the output layer uses `output_act`.
/// This is the network family used for the DDPG actor and critic (the paper's
/// "policy network" and "value network") and for the MLP forecaster.
///
/// Beyond the scalar Forward/Backward it exposes a no-grad scalar Predict and
/// batch-major ForwardBatch/BackwardBatch (one GEMM per layer for a B-row
/// minibatch) whose per-sample results match the scalar path bit for bit
/// except for exact-zero signs (see DESIGN.md, "Batch-major kernels"). The
/// batched and Predict paths run on member workspaces, so a warmed-up network
/// performs no per-call scratch allocation.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; requires at least 2 entries.
  Mlp(const std::vector<size_t>& layer_sizes, Activation hidden_act,
      Activation output_act, Rng& rng);

  math::Vec Forward(const math::Vec& input);

  /// No-grad scalar forward (nothing cached for Backward, no allocation once
  /// warm). Returns a reference to an internal buffer, valid until the next
  /// Predict call on this network.
  const math::Vec& Predict(const math::Vec& input);

  /// Backward from dL/d(output); returns dL/d(input).
  math::Vec Backward(const math::Vec& grad_output);

  /// Batched forward over a row-major B x in_dim batch (row = sample).
  /// Returns a reference to the internal B x out_dim output, valid until the
  /// next batched call. In train mode the layers cache their inputs by
  /// reference into this network's activation workspace, so `batch` must
  /// stay alive and unmodified until the matching BackwardBatch returns.
  const math::Matrix& ForwardBatch(const math::Matrix& batch, bool train);

  /// Batched backward from dL/d(output) (B x out_dim); accumulates parameter
  /// gradients and returns a reference to the internal dL/d(input), valid
  /// until the next batched call.
  const math::Matrix& BackwardBatch(const math::Matrix& grad_output);

  std::vector<Param*> Params();

  size_t in_dim() const { return layers_.front()->in_dim(); }
  size_t out_dim() const { return layers_.back()->out_dim(); }

  /// Reinitializes the final layer uniformly in [-r, r] (DDPG init trick to
  /// keep initial actions/values near zero).
  void ReinitOutputUniform(double r, Rng& rng);

 private:
  std::vector<std::unique_ptr<Dense>> layers_;

  // Batched-path workspace: batch_acts_[i] is layer i's output and layer
  // i+1's cached-by-reference input (which is why it must be a stable member
  // rather than a local). The grad pair ping-pongs through BackwardBatch.
  std::vector<math::Matrix> batch_acts_;
  math::Matrix batch_grad_a_;
  math::Matrix batch_grad_b_;
  // Predict-path ping-pong buffers.
  math::Vec predict_a_;
  math::Vec predict_b_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_MLP_H_
