#ifndef EADRL_NN_MLP_H_
#define EADRL_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "math/vec.h"
#include "nn/dense.h"

namespace eadrl::nn {

/// Multi-layer perceptron: a stack of Dense layers.
///
/// The hidden layers use `hidden_act`; the output layer uses `output_act`.
/// This is the network family used for the DDPG actor and critic (the paper's
/// "policy network" and "value network") and for the MLP forecaster.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; requires at least 2 entries.
  Mlp(const std::vector<size_t>& layer_sizes, Activation hidden_act,
      Activation output_act, Rng& rng);

  math::Vec Forward(const math::Vec& input);

  /// Backward from dL/d(output); returns dL/d(input).
  math::Vec Backward(const math::Vec& grad_output);

  std::vector<Param*> Params();

  size_t in_dim() const { return layers_.front()->in_dim(); }
  size_t out_dim() const { return layers_.back()->out_dim(); }

  /// Reinitializes the final layer uniformly in [-r, r] (DDPG init trick to
  /// keep initial actions/values near zero).
  void ReinitOutputUniform(double r, Rng& rng);

 private:
  std::vector<std::unique_ptr<Dense>> layers_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_MLP_H_
