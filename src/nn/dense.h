#ifndef EADRL_NN_DENSE_H_
#define EADRL_NN_DENSE_H_

#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "nn/activation.h"
#include "nn/param.h"

namespace eadrl::nn {

/// Fully connected layer y = act(W x + b) with hand-written backprop.
///
/// Forward caches the input and pre-activation for the following Backward
/// call; Backward accumulates parameter gradients (callers zero them via the
/// optimizer) and returns the gradient with respect to the input.
class Dense {
 public:
  Dense(size_t in_dim, size_t out_dim, Activation act, Rng& rng);

  /// Forward pass for a single sample.
  math::Vec Forward(const math::Vec& input);

  /// Backward pass: `grad_output` is dL/dy; returns dL/dx and accumulates
  /// dL/dW, dL/db. Must follow a Forward call with the matching input.
  math::Vec Backward(const math::Vec& grad_output);

  /// Trainable parameters: weight (out x in) and bias (out x 1).
  std::vector<Param*> Params();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  Activation activation() const { return act_; }

  /// Reinitializes the weights uniformly in [-r, r] (DDPG output layers).
  void ReinitUniform(double r, Rng& rng);

 private:
  size_t in_dim_;
  size_t out_dim_;
  Activation act_;
  Param weight_;  // out x in
  Param bias_;    // out x 1

  // Caches from the last Forward call.
  math::Vec last_input_;
  math::Vec last_pre_activation_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_DENSE_H_
