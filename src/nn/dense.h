#ifndef EADRL_NN_DENSE_H_
#define EADRL_NN_DENSE_H_

#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "nn/activation.h"
#include "nn/param.h"

namespace eadrl::nn {

/// Fully connected layer y = act(W x + b) with hand-written backprop.
///
/// Two execution modes share the parameters:
///  - scalar: Forward/Backward on one sample (the historical reference path;
///    ForwardInto adds an allocation-free, optionally no-grad variant);
///  - batched: ForwardBatch/BackwardBatch on a row-major B x dim minibatch,
///    one GEMM per call instead of B MatVecs. Batched results match the
///    scalar path bit for bit except for the sign of exact-zero gradients
///    (see DESIGN.md, "Batch-major kernels").
///
/// Train-mode forwards cache what the following Backward needs; inference
/// (`train == false`) stashes nothing at all. Backward accumulates parameter
/// gradients (callers zero them via the optimizer) and returns the gradient
/// with respect to the input.
class Dense {
 public:
  Dense(size_t in_dim, size_t out_dim, Activation act, Rng& rng);

  /// Forward pass for a single sample (train mode).
  math::Vec Forward(const math::Vec& input);

  /// Allocation-free scalar forward into *out (resized; warm after one
  /// call). With `train`, the input and pre-activation are cached for
  /// Backward via capacity-reusing copies; without, nothing is stashed.
  void ForwardInto(const math::Vec& input, math::Vec* out, bool train);

  /// Batched forward over a row-major B x in_dim batch (row b = sample b)
  /// into the B x out_dim *out. With `train`, the layer caches `batch` BY
  /// REFERENCE — no copy — so the matrix must outlive and stay unmodified
  /// until the matching BackwardBatch (the Mlp/agent workspaces guarantee
  /// this; see DESIGN.md for the lifetime rule).
  void ForwardBatch(const math::Matrix& batch, math::Matrix* out, bool train);

  /// Backward pass: `grad_output` is dL/dy; returns dL/dx and accumulates
  /// dL/dW, dL/db. Must follow a train-mode Forward with the matching input.
  math::Vec Backward(const math::Vec& grad_output);

  /// Batched backward: `grad_output` is dL/dY (B x out_dim); writes dL/dX
  /// into *grad_input and accumulates dL/dW (one fused-transpose GEMM whose
  /// batch-index accumulation order equals B scalar Backward calls) and
  /// dL/db. Must follow a train-mode ForwardBatch with the matching batch.
  void BackwardBatch(const math::Matrix& grad_output,
                     math::Matrix* grad_input);

  /// Trainable parameters: weight (out x in) and bias (1 x out). The bias is
  /// a flat row vector — forward adds contiguous doubles instead of the old
  /// out x 1 strided (i, 0) lookups — and serialization follows this shape.
  std::vector<Param*> Params();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  Activation activation() const { return act_; }

  /// Reinitializes the weights uniformly in [-r, r] (DDPG output layers).
  void ReinitUniform(double r, Rng& rng);

 private:
  /// dz = grad_output ⊙ act'(last_pre_activation_) into scratch_dz_, with
  /// the same per-element formulas as ActivationDerivative.
  void ComputeScalarDz(const math::Vec& grad_output);

  size_t in_dim_;
  size_t out_dim_;
  Activation act_;
  Param weight_;  // out x in
  Param bias_;    // 1 x out (flat row; see Params()).

  // Scalar-path caches from the last train-mode Forward. Capacity-reusing
  // assignments: warm after the first call, no per-call allocation.
  math::Vec last_input_;
  math::Vec last_pre_activation_;
  math::Vec scratch_dz_;

  // Batch-path caches from the last train-mode ForwardBatch. The input is
  // cached by pointer, not copied (see ForwardBatch's lifetime rule).
  const math::Matrix* last_batch_ = nullptr;
  math::Matrix batch_pre_activation_;
  math::Matrix batch_dz_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_DENSE_H_
