#ifndef EADRL_NN_PARAM_H_
#define EADRL_NN_PARAM_H_

#include <vector>

#include "math/matrix.h"

namespace eadrl::nn {

/// A trainable parameter block: a value matrix and its accumulated gradient.
/// Layers own their `Param`s and expose pointers to them so optimizers can
/// update values in place.
struct Param {
  math::Matrix value;
  math::Matrix grad;

  Param() = default;
  Param(size_t rows, size_t cols)
      : value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

/// Zeroes the gradients of all parameters in the list.
void ZeroGrads(const std::vector<Param*>& params);

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
double ClipGradNorm(const std::vector<Param*>& params, double max_norm);

/// Soft update target <- tau * source + (1 - tau) * target, parameter-wise.
/// Used for DDPG target networks. The two lists must be structurally equal.
void SoftUpdate(const std::vector<Param*>& target,
                const std::vector<Param*>& source, double tau);

/// Hard copy source values into target.
void CopyParams(const std::vector<Param*>& target,
                const std::vector<Param*>& source);

}  // namespace eadrl::nn

#endif  // EADRL_NN_PARAM_H_
