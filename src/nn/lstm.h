#ifndef EADRL_NN_LSTM_H_
#define EADRL_NN_LSTM_H_

#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "nn/param.h"

namespace eadrl::nn {

/// Single-layer LSTM processing a whole sequence, with full backpropagation
/// through time.
///
/// Gate layout in the stacked parameter blocks is [input, forget, candidate,
/// output], each of size `hidden`. Forward caches per-step activations for
/// the following Backward call.
class Lstm {
 public:
  Lstm(size_t input_size, size_t hidden_size, Rng& rng);

  size_t input_size() const { return input_size_; }
  size_t hidden_size() const { return hidden_size_; }

  /// Runs the sequence from zero initial state; returns hidden states
  /// h_1..h_T (one per input step).
  std::vector<math::Vec> Forward(const std::vector<math::Vec>& inputs);

  /// BPTT. `grad_hidden[t]` is dL/dh_t (zero vectors for unsupervised
  /// steps). Accumulates parameter gradients; returns dL/dx_t per step.
  std::vector<math::Vec> Backward(const std::vector<math::Vec>& grad_hidden);

  std::vector<Param*> Params();

 private:
  struct StepCache {
    math::Vec input;
    math::Vec h_prev;
    math::Vec c_prev;
    math::Vec i, f, g, o;  // post-activation gates.
    math::Vec c;           // cell state.
    math::Vec tanh_c;
  };

  size_t input_size_;
  size_t hidden_size_;
  Param w_;  // (4H) x input
  Param u_;  // (4H) x H
  Param b_;  // (4H) x 1
  std::vector<StepCache> cache_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_LSTM_H_
