#ifndef EADRL_NN_CONV1D_H_
#define EADRL_NN_CONV1D_H_

#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "nn/activation.h"
#include "nn/param.h"

namespace eadrl::nn {

/// 1-D convolution over a (time x channels) sequence with valid padding,
/// followed by an elementwise activation. Used by the CNN-LSTM and Conv-LSTM
/// forecasters.
class Conv1d {
 public:
  Conv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
         Activation act, Rng& rng);

  size_t in_channels() const { return in_channels_; }
  size_t out_channels() const { return out_channels_; }
  size_t kernel_size() const { return kernel_size_; }

  /// `input` is T x in_channels; returns (T - kernel_size + 1) x out_channels.
  math::Matrix Forward(const math::Matrix& input);

  /// Backward from dL/d(output); accumulates parameter grads and returns
  /// dL/d(input).
  math::Matrix Backward(const math::Matrix& grad_output);

  std::vector<Param*> Params();

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_size_;
  Activation act_;
  Param kernel_;  // out_channels x (kernel_size * in_channels)
  Param bias_;    // out_channels x 1

  math::Matrix last_input_;
  math::Matrix last_pre_activation_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_CONV1D_H_
