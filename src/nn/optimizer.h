#ifndef EADRL_NN_OPTIMIZER_H_
#define EADRL_NN_OPTIMIZER_H_

#include <vector>

#include "math/matrix.h"
#include "nn/param.h"

namespace eadrl::nn {

/// Gradient-descent optimizer interface. Implementations keep per-parameter
/// state keyed by position in the registered parameter list.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers the parameters this optimizer updates. Must be called once
  /// before the first Step.
  virtual void Register(const std::vector<Param*>& params) = 0;

  /// Applies one update using the accumulated gradients, then leaves the
  /// gradients untouched (call ZeroGrads separately, or use StepAndZero).
  virtual void Step() = 0;

  /// Convenience: Step followed by zeroing all gradients.
  void StepAndZero();

 protected:
  std::vector<Param*> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  void Register(const std::vector<Param*>& params) override;
  void Step() override;

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  std::vector<math::Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  void Register(const std::vector<Param*>& params) override;
  void Step() override;

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long long t_ = 0;
  std::vector<math::Matrix> m_;
  std::vector<math::Matrix> v_;
};

}  // namespace eadrl::nn

#endif  // EADRL_NN_OPTIMIZER_H_
