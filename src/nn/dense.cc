#include "nn/dense.h"

#include <cmath>

#include "chk/chk.h"
#include "common/check.h"
#include "nn/init.h"
#include "obs/resource.h"

namespace eadrl::nn {

Dense::Dense(size_t in_dim, size_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      weight_(out_dim, in_dim),
      bias_(1, out_dim) {
  XavierInit(&weight_.value, in_dim, out_dim, rng);
}

math::Vec Dense::Forward(const math::Vec& input) {
  obs::CountAlloc(out_dim_ * sizeof(double));  // the returned vector.
  math::Vec out;
  ForwardInto(input, &out, /*train=*/true);
  return out;
}

void Dense::ForwardInto(const math::Vec& input, math::Vec* out, bool train) {
  EADRL_CHK_DIM(input.size(), in_dim_, "Dense::Forward input");
  EADRL_CHK_FINITE(input, "Dense::Forward input");
  EADRL_CHECK_EQ(input.size(), in_dim_);
  EADRL_CHECK(out != &input);
  math::Vec* pre = out;
  if (train) {
    last_input_ = input;  // capacity-reusing copy, not a fresh buffer.
    pre = &last_pre_activation_;
  }
  weight_.value.MatVecInto(input, pre);
  const math::Vec& b = bias_.value.data();
  for (size_t i = 0; i < out_dim_; ++i) (*pre)[i] += b[i];
  if (train) *out = last_pre_activation_;
  ApplyActivationInPlace(act_, out->data(), out_dim_);
}

void Dense::ForwardBatch(const math::Matrix& batch, math::Matrix* out,
                         bool train) {
  EADRL_CHK_DIM(batch.cols(), in_dim_, "Dense::ForwardBatch input width");
  EADRL_CHK_FINITE(batch.data(), "Dense::ForwardBatch input");
  EADRL_CHECK_EQ(batch.cols(), in_dim_);
  EADRL_CHECK(out != &batch);
  const size_t n = batch.rows();
  math::Matrix* pre = train ? &batch_pre_activation_ : out;
  // Z = X W^T: row b of Z equals the scalar MatVec for sample b (same
  // ascending-k dot per element), fused so W is never transposed.
  batch.MatMulTransposeBInto(weight_.value, pre);
  const math::Vec& b = bias_.value.data();
  for (size_t r = 0; r < n; ++r) {
    double* zrow = pre->RowPtr(r);
    for (size_t i = 0; i < out_dim_; ++i) zrow[i] += b[i];
  }
  if (train) {
    last_batch_ = &batch;
    *out = batch_pre_activation_;  // capacity-reusing copy.
  }
  ApplyActivationInPlace(act_, out->data().data(), out->size());
}

void Dense::ComputeScalarDz(const math::Vec& grad_output) {
  scratch_dz_.resize(out_dim_);
  const math::Vec& z = last_pre_activation_;
  // Same formulas (and multiplication forms) as ActivationDerivative.
  switch (act_) {
    case Activation::kIdentity:
      for (size_t i = 0; i < out_dim_; ++i) scratch_dz_[i] = grad_output[i];
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < out_dim_; ++i) {
        scratch_dz_[i] = grad_output[i] * (z[i] > 0.0 ? 1.0 : 0.0);
      }
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < out_dim_; ++i) {
        double t = std::tanh(z[i]);
        scratch_dz_[i] = grad_output[i] * (1.0 - t * t);
      }
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < out_dim_; ++i) {
        double s = SigmoidScalar(z[i]);
        scratch_dz_[i] = grad_output[i] * (s * (1.0 - s));
      }
      break;
  }
}

math::Vec Dense::Backward(const math::Vec& grad_output) {
  EADRL_CHK_DIM(grad_output.size(), out_dim_, "Dense::Backward grad_output");
  EADRL_CHK_FINITE(grad_output, "Dense::Backward grad_output");
  EADRL_CHECK_EQ(grad_output.size(), out_dim_);
  EADRL_CHECK_EQ(last_input_.size(), in_dim_);

  ComputeScalarDz(grad_output);
  math::Vec& bias_grad = bias_.grad.data();
  for (size_t i = 0; i < out_dim_; ++i) {
    const double dzi = scratch_dz_[i];
    bias_grad[i] += dzi;
    if (dzi == 0.0) continue;
    double* wg = weight_.grad.RowPtr(i);
    for (size_t j = 0; j < in_dim_; ++j) wg[j] += dzi * last_input_[j];
  }
  return weight_.value.TransposeMatVec(scratch_dz_);
}

void Dense::BackwardBatch(const math::Matrix& grad_output,
                          math::Matrix* grad_input) {
  EADRL_CHECK(last_batch_ != nullptr);
  const math::Matrix& x = *last_batch_;
  EADRL_CHK_SHAPE(grad_output.rows(), grad_output.cols(), x.rows(), out_dim_,
                  "Dense::BackwardBatch grad_output");
  EADRL_CHK_FINITE(grad_output.data(), "Dense::BackwardBatch grad_output");
  EADRL_CHECK(grad_output.rows() == x.rows() &&
              grad_output.cols() == out_dim_);
  EADRL_CHECK(grad_input != &grad_output && grad_input != &x);

  // dZ = dY ⊙ act'(Z), into the member so grad_output stays intact.
  batch_dz_ = grad_output;  // capacity-reusing copy.
  MultiplyActivationDerivative(act_, batch_pre_activation_, &batch_dz_);

  // Bias gradient: batch rows accumulate in ascending sample order — the
  // same order as B scalar Backward calls.
  math::Vec& bias_grad = bias_.grad.data();
  for (size_t r = 0; r < batch_dz_.rows(); ++r) {
    const double* dzrow = batch_dz_.RowPtr(r);
    for (size_t i = 0; i < out_dim_; ++i) bias_grad[i] += dzrow[i];
  }
  // Weight gradient: dW += dZ^T X as one fused GEMM; MatMulTransposeAInto's
  // k loop runs over batch rows in ascending order, matching the per-sample
  // accumulation of the scalar path.
  batch_dz_.MatMulTransposeAInto(x, &weight_.grad, /*accumulate=*/true);
  // Input gradient: dX = dZ W (row b matches scalar TransposeMatVec).
  batch_dz_.MatMulInto(weight_.value, grad_input);
}

std::vector<Param*> Dense::Params() { return {&weight_, &bias_}; }

void Dense::ReinitUniform(double r, Rng& rng) {
  UniformInit(&weight_.value, r, rng);
  UniformInit(&bias_.value, r, rng);
}

}  // namespace eadrl::nn
