#include "nn/dense.h"

#include "chk/chk.h"
#include "common/check.h"
#include "nn/init.h"

namespace eadrl::nn {

Dense::Dense(size_t in_dim, size_t out_dim, Activation act, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      weight_(out_dim, in_dim),
      bias_(out_dim, 1) {
  XavierInit(&weight_.value, in_dim, out_dim, rng);
}

math::Vec Dense::Forward(const math::Vec& input) {
  EADRL_CHK_DIM(input.size(), in_dim_, "Dense::Forward input");
  EADRL_CHK_FINITE(input, "Dense::Forward input");
  EADRL_CHECK_EQ(input.size(), in_dim_);
  last_input_ = input;
  last_pre_activation_ = weight_.value.MatVec(input);
  for (size_t i = 0; i < out_dim_; ++i) {
    last_pre_activation_[i] += bias_.value(i, 0);
  }
  return ApplyActivation(act_, last_pre_activation_);
}

math::Vec Dense::Backward(const math::Vec& grad_output) {
  EADRL_CHK_DIM(grad_output.size(), out_dim_, "Dense::Backward grad_output");
  EADRL_CHK_FINITE(grad_output, "Dense::Backward grad_output");
  EADRL_CHECK_EQ(grad_output.size(), out_dim_);
  EADRL_CHECK_EQ(last_input_.size(), in_dim_);

  math::Vec dact = ActivationDerivative(act_, last_pre_activation_);
  math::Vec dz(out_dim_);
  for (size_t i = 0; i < out_dim_; ++i) dz[i] = grad_output[i] * dact[i];

  for (size_t i = 0; i < out_dim_; ++i) {
    bias_.grad(i, 0) += dz[i];
    if (dz[i] == 0.0) continue;
    for (size_t j = 0; j < in_dim_; ++j) {
      weight_.grad(i, j) += dz[i] * last_input_[j];
    }
  }
  return weight_.value.TransposeMatVec(dz);
}

std::vector<Param*> Dense::Params() { return {&weight_, &bias_}; }

void Dense::ReinitUniform(double r, Rng& rng) {
  UniformInit(&weight_.value, r, rng);
  UniformInit(&bias_.value, r, rng);
}

}  // namespace eadrl::nn
