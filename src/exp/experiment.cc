#include "exp/experiment.h"

#include <chrono>
#include <cmath>

#include "baselines/dynamic_selection.h"
#include "baselines/expert_aggregation.h"
#include "baselines/stacking.h"
#include "baselines/static_combiners.h"
#include "common/check.h"
#include "common/logging.h"
#include "models/arima.h"
#include "models/gbm.h"
#include "models/nn_regressors.h"
#include "models/random_forest.h"
#include "models/regression_forecaster.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "ts/metrics.h"

namespace eadrl::exp {
namespace {

/// Online-loop latency histogram of one method (Table III's runtime
/// telemetry); one labeled family member per method name.
obs::Histogram* MethodRuntimeHist(const std::string& method) {
  return obs::MetricRegistry::Default().GetHistogram(
      "eadrl_method_runtime_seconds", {}, {{"method", method}});
}

}  // namespace

PoolRun PreparePool(const ts::Series& series, const ExperimentOptions& opt) {
  obs::Span span("pool_prepare");
  span.SetAttr("dataset", series.name());
  ts::TrainTestSplit outer = ts::SplitTrainTest(series, opt.train_ratio);
  ts::TrainTestSplit inner =
      ts::SplitTrainTest(outer.train, 1.0 - opt.validation_ratio);

  models::PoolConfig pool_cfg = opt.pool;
  pool_cfg.seed = opt.seed;
  double fit_seconds = 0.0;
  std::vector<std::unique_ptr<models::Forecaster>> pool;
  {
    obs::ScopedTimer timer(nullptr, &fit_seconds);
    pool = models::FitPool(models::BuildPaperPool(pool_cfg), inner.train);
  }
  EADRL_CHECK(!pool.empty());
  EADRL_TELEMETRY("pool_prepared", {"models", pool.size()},
                  {"fit_seconds", fit_seconds},
                  {"val_rows", inner.test.size()},
                  {"test_rows", outer.test.size()});

  PoolRun run;
  run.train_values = outer.train.values();
  run.val_actuals = inner.test.values();
  run.test_actuals = outer.test.values();
  run.val_preds = math::Matrix(inner.test.size(), pool.size());
  run.test_preds = math::Matrix(outer.test.size(), pool.size());

  // Per-model rolling forecasts are independent: model m only touches its
  // own forecaster state, its slot in model_names and column m of the
  // prediction matrices (distinct doubles — safe to fill concurrently).
  run.model_names.resize(pool.size());
  par::ParallelFor(0, pool.size(), [&](size_t m) {
    obs::Span forecast_span("rolling_forecast");
    forecast_span.SetAttr("model", pool[m]->name());
    run.model_names[m] = pool[m]->name();
    // Roll through validation, then (state carried over) through test.
    math::Vec val_p = models::RollingForecast(pool[m].get(), inner.test);
    math::Vec test_p = models::RollingForecast(pool[m].get(), outer.test);
    for (size_t t = 0; t < val_p.size(); ++t) run.val_preds(t, m) = val_p[t];
    for (size_t t = 0; t < test_p.size(); ++t) run.test_preds(t, m) = test_p[t];
  });
  return run;
}

MethodRun RunCombiner(core::Combiner* combiner, const PoolRun& pool) {
  MethodRun result;
  result.name = combiner->name();
  obs::Span span("method_run");
  span.SetAttr("method", result.name);

  Status st = combiner->Initialize(pool.val_preds, pool.val_actuals);
  EADRL_CHECK(st.ok());

  const size_t t_test = pool.test_preds.rows();
  result.predictions.resize(t_test);
  result.squared_errors.resize(t_test);

  {
    obs::ScopedTimer timer(MethodRuntimeHist(result.name),
                           &result.runtime_seconds);
    for (size_t t = 0; t < t_test; ++t) {
      math::Vec preds = pool.test_preds.Row(t);
      double pred = combiner->Predict(preds);
      combiner->Update(preds, pool.test_actuals[t]);
      result.predictions[t] = pred;
    }
  }

  for (size_t t = 0; t < t_test; ++t) {
    double d = result.predictions[t] - pool.test_actuals[t];
    result.squared_errors[t] = d * d;
  }
  result.rmse = ts::Rmse(pool.test_actuals, result.predictions);
  EADRL_TELEMETRY("method_run", {"method", result.name},
                  {"rmse", result.rmse},
                  {"runtime_seconds", result.runtime_seconds},
                  {"steps", t_test});
  return result;
}

std::vector<std::unique_ptr<core::Combiner>> MakeCombinerSuite(
    const ExperimentOptions& opt) {
  std::vector<std::unique_ptr<core::Combiner>> suite;
  suite.push_back(std::make_unique<baselines::SimpleAverageCombiner>());
  suite.push_back(std::make_unique<baselines::SlidingWindowCombiner>(
      opt.eadrl.omega));
  suite.push_back(std::make_unique<baselines::EwaCombiner>());
  suite.push_back(std::make_unique<baselines::FixedShareCombiner>());
  suite.push_back(std::make_unique<baselines::OgdCombiner>());
  suite.push_back(std::make_unique<baselines::MlpolCombiner>());
  suite.push_back(std::make_unique<baselines::StackingCombiner>(
      /*num_trees=*/25, opt.seed));
  suite.push_back(std::make_unique<baselines::ClusCombiner>(opt.eadrl.omega));
  suite.push_back(std::make_unique<baselines::TopSelCombiner>(
      /*top_n=*/10, opt.eadrl.omega));
  suite.push_back(std::make_unique<baselines::DemscCombiner>());
  core::EadrlConfig eadrl_cfg = opt.eadrl;
  eadrl_cfg.seed = opt.seed;
  suite.push_back(std::make_unique<core::EadrlCombiner>(eadrl_cfg));
  return suite;
}

std::vector<MethodRun> RunStandaloneModels(const ts::Series& series,
                                           const ExperimentOptions& opt) {
  ts::TrainTestSplit outer = ts::SplitTrainTest(series, opt.train_ratio);

  models::NnTrainParams nn;
  nn.epochs = opt.pool.nn_epochs;
  nn.seed = opt.seed;
  const size_t k = opt.pool.embedding_dim;

  std::vector<std::unique_ptr<models::Forecaster>> singles;
  singles.push_back(std::make_unique<models::ArimaForecaster>(2, 1, 1));
  {
    models::RandomForestRegressor::Params p;
    p.num_trees = 25;
    p.seed = opt.seed;
    singles.push_back(std::make_unique<models::RegressionForecaster>(
        "RF", k, std::make_unique<models::RandomForestRegressor>(p)));
  }
  {
    models::GbmRegressor::Params p;
    p.num_trees = 50;
    p.seed = opt.seed;
    singles.push_back(std::make_unique<models::RegressionForecaster>(
        "GBM", k, std::make_unique<models::GbmRegressor>(p)));
  }
  singles.push_back(std::make_unique<models::RegressionForecaster>(
      "LSTM", k, std::make_unique<models::LstmRegressor>(16, nn)));
  singles.push_back(std::make_unique<models::RegressionForecaster>(
      "StLSTM", k, std::make_unique<models::StackedLstmRegressor>(12, nn)));

  std::vector<MethodRun> results;
  for (auto& model : singles) {
    MethodRun run;
    // Present ARIMA under its family name to match the paper's rows.
    run.name = model->name().rfind("arima", 0) == 0 ? "ARIMA" : model->name();
    Status st = model->Fit(outer.train);
    if (!st.ok()) continue;

    {
      obs::ScopedTimer timer(MethodRuntimeHist(run.name),
                             &run.runtime_seconds);
      run.predictions = models::RollingForecast(model.get(), outer.test);
    }

    run.squared_errors.resize(run.predictions.size());
    for (size_t t = 0; t < run.predictions.size(); ++t) {
      double d = run.predictions[t] - outer.test[t];
      run.squared_errors[t] = d * d;
    }
    run.rmse = ts::Rmse(outer.test.values(), run.predictions);
    results.push_back(std::move(run));
  }
  return results;
}

DatasetResult RunDataset(const ts::Series& series,
                         const ExperimentOptions& opt) {
  DatasetResult result;
  result.dataset = series.name();

  // A concurrent RunSuite interleaves event streams from several datasets in
  // the sink; this ambient scope stamps every event emitted below
  // (pool_prepared, model_fit, episode, ddpg_update, checkpoint, method_run)
  // with its dataset, following the work across pool workers. The span is
  // the causal counterpart: every span opened below (down to worker-side
  // restarts and episodes) reaches this one through its parent chain.
  obs::TelemetryScope telemetry_scope("dataset", series.name());
  obs::Span span("dataset_run");
  span.SetAttr("dataset", series.name());

  PoolRun pool = PreparePool(series, opt);
  for (auto& combiner : MakeCombinerSuite(opt)) {
    result.methods.push_back(RunCombiner(combiner.get(), pool));
  }
  if (opt.include_standalone) {
    for (MethodRun& run : RunStandaloneModels(series, opt)) {
      result.methods.push_back(std::move(run));
    }
  }
  return result;
}

std::vector<DatasetResult> RunSuite(const std::vector<ts::Series>& datasets,
                                    const ExperimentOptions& opt,
                                    par::ThreadPool* exec) {
  par::ThreadPool& executor = exec != nullptr ? *exec : par::DefaultPool();
  std::vector<DatasetResult> results(datasets.size());
  obs::Span span("suite_run");
  span.SetAttr("datasets", datasets.size());
  obs::Counter* done_counter = obs::MetricRegistry::Default().GetCounter(
      "eadrl_suite_datasets_done_total");
  const auto wall_start = std::chrono::steady_clock::now();
  par::ParallelFor(
      0, datasets.size(),
      [&](size_t i) {
        EADRL_LOG(Info) << "suite: running dataset " << datasets[i].name()
                        << " (" << (i + 1) << "/" << datasets.size() << ")";
        results[i] = RunDataset(datasets[i], opt);
        done_counter->Inc();
      },
      {/*grain=*/1, &executor});
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  size_t methods = 0;
  for (const DatasetResult& r : results) methods += r.methods.size();
  EADRL_TELEMETRY("suite_run", {"datasets", datasets.size()},
                  {"methods", methods}, {"wall_seconds", wall_seconds},
                  {"threads", executor.concurrency()});
  return results;
}

}  // namespace eadrl::exp
