#ifndef EADRL_EXP_EXPERIMENT_H_
#define EADRL_EXP_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/combiner.h"
#include "core/eadrl.h"
#include "math/matrix.h"
#include "models/pool.h"
#include "par/thread_pool.h"
#include "ts/series.h"

namespace eadrl::exp {

/// Options shared by the paper-reproduction experiments.
struct ExperimentOptions {
  /// Chronological train fraction (paper: 75% / 25%).
  double train_ratio = 0.75;
  /// Fraction of the training segment held out as the combiner validation
  /// set (pool models are fit on the rest).
  double validation_ratio = 0.3;
  models::PoolConfig pool;
  core::EadrlConfig eadrl;
  uint64_t seed = 42;
  /// Adds the standalone single-model rows of Table II
  /// (ARIMA, RF, GBM, LSTM, StLSTM).
  bool include_standalone = true;
};

/// Fitted pool and its prediction matrices over validation and test.
struct PoolRun {
  std::vector<std::string> model_names;
  math::Matrix val_preds;   ///< T_val x m one-step-ahead predictions.
  math::Vec val_actuals;
  math::Matrix test_preds;  ///< T_test x m.
  math::Vec test_actuals;
  math::Vec train_values;   ///< raw training values (metrics scaling).
};

/// Result of one method (combiner or standalone model) on one dataset.
struct MethodRun {
  std::string name;
  math::Vec predictions;
  math::Vec squared_errors;  ///< per test step, for the Bayesian tests.
  double rmse = 0.0;
  double runtime_seconds = 0.0;  ///< online prediction time over the test set.
};

/// All methods on one dataset.
struct DatasetResult {
  std::string dataset;
  std::vector<MethodRun> methods;
};

/// Fits the pool (on train minus validation), rolls it forward over
/// validation and test, and returns the prediction matrices every combiner
/// consumes.
PoolRun PreparePool(const ts::Series& series, const ExperimentOptions& opt);

/// Initializes the combiner on the validation matrix, then runs the timed
/// online loop over the test matrix.
MethodRun RunCombiner(core::Combiner* combiner, const PoolRun& pool);

/// The paper's combiner suite (Table II): SE, SWE, EWA, FS, OGD, MLpol,
/// Stacking, Clus, Top.sel, DEMSC and EA-DRL.
std::vector<std::unique_ptr<core::Combiner>> MakeCombinerSuite(
    const ExperimentOptions& opt);

/// Standalone single-model baselines fit on the full training segment and
/// rolled over the test segment: ARIMA, RF, GBM, LSTM, StLSTM.
std::vector<MethodRun> RunStandaloneModels(const ts::Series& series,
                                           const ExperimentOptions& opt);

/// Full Table II-style evaluation of one dataset.
DatasetResult RunDataset(const ts::Series& series,
                         const ExperimentOptions& opt);

/// Runs the full dataset x method grid: RunDataset over every series,
/// datasets running concurrently on `exec` (nullptr means the default pool).
/// Results come back in input order regardless of completion order; a
/// `suite_run` telemetry event summarizes the grid when done.
std::vector<DatasetResult> RunSuite(const std::vector<ts::Series>& datasets,
                                    const ExperimentOptions& opt,
                                    par::ThreadPool* exec = nullptr);

}  // namespace eadrl::exp

#endif  // EADRL_EXP_EXPERIMENT_H_
