#include "baselines/static_combiners.h"

#include "common/check.h"

namespace eadrl::baselines {

Status SimpleAverageCombiner::Initialize(const math::Matrix& val_preds,
                                         const math::Vec& val_actuals) {
  (void)val_actuals;
  if (val_preds.cols() == 0) {
    return Status::InvalidArgument("SE: no base models");
  }
  num_models_ = val_preds.cols();
  return Status::Ok();
}

void SimpleAverageCombiner::Update(const math::Vec& preds, double actual) {
  (void)preds;
  (void)actual;
}

math::Vec SimpleAverageCombiner::Weights() const {
  EADRL_CHECK_GT(num_models_, 0u);
  return math::Vec(num_models_, 1.0 / static_cast<double>(num_models_));
}

SlidingWindowCombiner::SlidingWindowCombiner(size_t window)
    : name_("SWE"), window_(window) {}

Status SlidingWindowCombiner::Initialize(const math::Matrix& val_preds,
                                         const math::Vec& val_actuals) {
  if (val_preds.cols() == 0) {
    return Status::InvalidArgument("SWE: no base models");
  }
  tracker_ = std::make_unique<SlidingErrorTracker>(val_preds.cols(), window_);
  tracker_->Warm(val_preds, val_actuals);
  return Status::Ok();
}

void SlidingWindowCombiner::Update(const math::Vec& preds, double actual) {
  EADRL_CHECK(tracker_ != nullptr);
  tracker_->Add(preds, actual);
}

math::Vec SlidingWindowCombiner::Weights() const {
  EADRL_CHECK(tracker_ != nullptr);
  return tracker_->InverseErrorWeights();
}

}  // namespace eadrl::baselines
