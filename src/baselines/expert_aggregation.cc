#include "baselines/expert_aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "math/stats.h"
#include "math/vec.h"

namespace eadrl::baselines {

Status ExpertAggregationBase::Initialize(const math::Matrix& val_preds,
                                         const math::Vec& val_actuals) {
  if (val_preds.cols() == 0 || val_preds.rows() != val_actuals.size()) {
    return Status::InvalidArgument(name_ + ": bad validation data");
  }
  num_models_ = val_preds.cols();
  weights_.assign(num_models_, 1.0 / static_cast<double>(num_models_));
  mean_ = math::Mean(val_actuals);
  std_ = math::Stddev(val_actuals);
  if (std_ <= 1e-12) std_ = 1.0;

  if (warm_start_) {
    for (size_t t = 0; t < val_preds.rows(); ++t) {
      UpdateImpl(val_preds.Row(t), val_actuals[t]);
    }
  }
  return Status::Ok();
}

void ExpertAggregationBase::UpdateImpl(const math::Vec& preds,
                                       double actual) {
  EADRL_CHECK_EQ(preds.size(), num_models_);
  math::Vec z(num_models_);
  for (size_t i = 0; i < num_models_; ++i) z[i] = Standardize(preds[i]);
  Step(z, Standardize(actual));
}

void ExpertAggregationBase::Update(const math::Vec& preds, double actual) {
  UpdateImpl(preds, actual);
}

// ---------------------------------------------------------------------------
// EWA

EwaCombiner::EwaCombiner(double eta, bool warm_start)
    : ExpertAggregationBase("EWA", warm_start), eta_(eta) {}

void EwaCombiner::Step(const math::Vec& z_preds, double z_actual) {
  if (cumulative_loss_.size() != num_models_) {
    cumulative_loss_.assign(num_models_, 0.0);
  }
  ++t_;
  for (size_t i = 0; i < num_models_; ++i) {
    double err = z_preds[i] - z_actual;
    cumulative_loss_[i] += std::min(err * err, 1.0);
  }
  double eta = eta_ > 0.0
                   ? eta_
                   : std::sqrt(8.0 * std::log(static_cast<double>(
                                   num_models_)) /
                               static_cast<double>(t_));
  double min_loss =
      *std::min_element(cumulative_loss_.begin(), cumulative_loss_.end());
  double sum = 0.0;
  for (size_t i = 0; i < num_models_; ++i) {
    weights_[i] = std::exp(-eta * (cumulative_loss_[i] - min_loss));
    sum += weights_[i];
  }
  for (double& w : weights_) w /= sum;
}

// ---------------------------------------------------------------------------
// Fixed share

FixedShareCombiner::FixedShareCombiner(double eta, double alpha,
                                       bool warm_start)
    : ExpertAggregationBase("FS", warm_start), eta_(eta), alpha_(alpha) {}

void FixedShareCombiner::Step(const math::Vec& z_preds, double z_actual) {
  ++t_;
  double eta = eta_ > 0.0
                   ? eta_
                   : std::sqrt(8.0 * std::log(static_cast<double>(
                                   num_models_)) /
                               static_cast<double>(t_));
  // Multiplicative loss update followed by sharing.
  double sum = 0.0;
  for (size_t i = 0; i < num_models_; ++i) {
    double err = z_preds[i] - z_actual;
    weights_[i] *= std::exp(-eta * std::min(err * err, 1.0));
    sum += weights_[i];
  }
  if (sum <= 1e-300) {
    weights_.assign(num_models_, 1.0 / static_cast<double>(num_models_));
    return;
  }
  double uniform = 1.0 / static_cast<double>(num_models_);
  for (double& w : weights_) {
    w = (1.0 - alpha_) * (w / sum) + alpha_ * uniform;
  }
}

// ---------------------------------------------------------------------------
// OGD

OgdCombiner::OgdCombiner(double eta0, bool warm_start)
    : ExpertAggregationBase("OGD", warm_start), eta0_(eta0) {}

void OgdCombiner::Step(const math::Vec& z_preds, double z_actual) {
  ++t_;
  double eta = eta0_ / std::sqrt(static_cast<double>(t_));
  double pred = math::Dot(weights_, z_preds);
  double grad_scale = 2.0 * (pred - z_actual);
  math::Vec next(num_models_);
  for (size_t i = 0; i < num_models_; ++i) {
    next[i] = weights_[i] - eta * grad_scale * z_preds[i];
  }
  weights_ = math::ProjectToSimplex(next);
}

// ---------------------------------------------------------------------------
// MLpol

MlpolCombiner::MlpolCombiner(bool warm_start)
    : ExpertAggregationBase("MLpol", warm_start) {}

void MlpolCombiner::Step(const math::Vec& z_preds, double z_actual) {
  if (regrets_.size() != num_models_) regrets_.assign(num_models_, 0.0);
  double own_pred = math::Dot(weights_, z_preds);
  double own_err = own_pred - z_actual;
  double own_loss = own_err * own_err;
  double sum = 0.0;
  for (size_t i = 0; i < num_models_; ++i) {
    double err = z_preds[i] - z_actual;
    regrets_[i] += own_loss - err * err;
    sum += std::max(0.0, regrets_[i]);
  }
  if (sum <= 0.0) {
    weights_.assign(num_models_, 1.0 / static_cast<double>(num_models_));
    return;
  }
  for (size_t i = 0; i < num_models_; ++i) {
    weights_[i] = std::max(0.0, regrets_[i]) / sum;
  }
}

}  // namespace eadrl::baselines
