#ifndef EADRL_BASELINES_STACKING_H_
#define EADRL_BASELINES_STACKING_H_

#include <memory>
#include <string>

#include "core/combiner.h"
#include "models/random_forest.h"

namespace eadrl::baselines {

/// Stacking (Wolpert 1992) with a random-forest meta-learner, as in the
/// paper's Stacking row: the meta-learner is trained offline on the
/// validation-segment base-model predictions and then applied unchanged
/// online. The combination is nonlinear, so this is a `Combiner` but not a
/// `WeightedCombiner`.
class StackingCombiner : public core::Combiner {
 public:
  explicit StackingCombiner(size_t num_trees = 25, uint64_t seed = 42);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  double Predict(const math::Vec& preds) override;
  void Update(const math::Vec& preds, double actual) override;

 private:
  std::string name_;
  size_t num_trees_;
  uint64_t seed_;
  std::unique_ptr<models::RandomForestRegressor> meta_;
};

}  // namespace eadrl::baselines

#endif  // EADRL_BASELINES_STACKING_H_
