#ifndef EADRL_BASELINES_ERROR_TRACKER_H_
#define EADRL_BASELINES_ERROR_TRACKER_H_

#include <deque>
#include <vector>

#include "math/matrix.h"
#include "math/vec.h"

namespace eadrl::baselines {

/// Tracks each base model's squared error over a sliding window — the common
/// machinery behind SWE, Top.sel, Clus and DEMSC, plus the recent-prediction
/// history used for clustering.
class SlidingErrorTracker {
 public:
  SlidingErrorTracker(size_t num_models, size_t window);

  /// Records one step of base predictions against the realized value.
  void Add(const math::Vec& preds, double actual);

  /// Warms the tracker with a whole validation matrix.
  void Warm(const math::Matrix& preds, const math::Vec& actuals);

  size_t num_models() const { return num_models_; }
  size_t window() const { return window_; }
  size_t steps_seen() const { return steps_seen_; }

  /// RMSE of model i over the current window (infinity until it has data).
  double Rmse(size_t i) const;

  /// SWE weights: inverse window-RMSE, normalized over `subset` (all models
  /// if `subset` is empty). Models outside the subset get zero.
  math::Vec InverseErrorWeights(const std::vector<size_t>& subset = {}) const;

  /// Indices of the `n` lowest-window-RMSE models.
  std::vector<size_t> TopModels(size_t n) const;

  /// Pairwise Pearson correlation of the recent predictions of two models.
  double PredictionCorrelation(size_t a, size_t b) const;

 private:
  size_t num_models_;
  size_t window_;
  size_t steps_seen_ = 0;
  std::vector<std::deque<double>> squared_errors_;
  std::vector<std::deque<double>> recent_preds_;
};

}  // namespace eadrl::baselines

#endif  // EADRL_BASELINES_ERROR_TRACKER_H_
