#ifndef EADRL_BASELINES_STATIC_COMBINERS_H_
#define EADRL_BASELINES_STATIC_COMBINERS_H_

#include <memory>
#include <string>

#include "baselines/error_tracker.h"
#include "core/combiner.h"

namespace eadrl::baselines {

/// SE (Clemen & Winkler 1986): static ensemble — the arithmetic mean of all
/// base-model predictions.
class SimpleAverageCombiner : public core::WeightedCombiner {
 public:
  SimpleAverageCombiner() : name_("SE") {}

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

 private:
  std::string name_;
  size_t num_models_ = 0;
};

/// SWE (Saadallah et al. 2018, BRIGHT): linear combination whose weights are
/// the normalized inverse RMSE of each model over a recent sliding window.
class SlidingWindowCombiner : public core::WeightedCombiner {
 public:
  explicit SlidingWindowCombiner(size_t window = 10);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

 private:
  std::string name_;
  size_t window_;
  std::unique_ptr<SlidingErrorTracker> tracker_;
};

}  // namespace eadrl::baselines

#endif  // EADRL_BASELINES_STATIC_COMBINERS_H_
