#ifndef EADRL_BASELINES_EXPERT_AGGREGATION_H_
#define EADRL_BASELINES_EXPERT_AGGREGATION_H_

#include <string>

#include "core/combiner.h"

namespace eadrl::baselines {

/// Common machinery for the online expert-aggregation combiners from the
/// prediction-with-expert-advice literature (the paper's EWA, FS, OGD and
/// MLpol rows; cf. Cesa-Bianchi & Lugosi 2006 and the `opera` R package).
/// All of them standardize losses by the validation statistics so a single
/// learning rate works across series of any scale.
class ExpertAggregationBase : public core::WeightedCombiner {
 public:
  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  math::Vec Weights() const override { return weights_; }

 protected:
  /// `warm_start` replays the validation segment through the aggregator
  /// during Initialize. Off by default: the opera-style combiners in the
  /// paper's comparison learn online over the evaluation stream only.
  ExpertAggregationBase(std::string name, bool warm_start)
      : name_(std::move(name)), warm_start_(warm_start) {}

  /// Standardizes a value with the validation statistics.
  double Standardize(double v) const { return (v - mean_) / std_; }

  /// Hook called per validation/online step with standardized expert
  /// predictions and outcome.
  virtual void Step(const math::Vec& z_preds, double z_actual) = 0;

  std::string name_;
  bool warm_start_ = false;
  math::Vec weights_;
  size_t num_models_ = 0;

 private:
  void UpdateImpl(const math::Vec& preds, double actual);

 public:
  void Update(const math::Vec& preds, double actual) override;

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

/// EWA: exponentially weighted average forecaster,
/// w_i proportional to exp(-eta_t * cumulative loss_i), with per-step losses
/// clipped to [0, 1] (the bounded-loss setting of the theory) and the
/// calibrated learning rate eta_t = sqrt(8 ln m / t) of Cesa-Bianchi &
/// Lugosi (2006) unless a fixed eta > 0 is supplied.
class EwaCombiner : public ExpertAggregationBase {
 public:
  explicit EwaCombiner(double eta = 0.0, bool warm_start = false);

 protected:
  void Step(const math::Vec& z_preds, double z_actual) override;

 private:
  double eta_;  // 0 = calibrated.
  size_t t_ = 0;
  math::Vec cumulative_loss_;
};

/// FS: the fixed-share forecaster (Herbster & Warmuth), an EWA update mixed
/// with a uniform share so the combiner can track the best expert through
/// regime changes. Uses the same clipped losses and calibrated eta as EWA.
class FixedShareCombiner : public ExpertAggregationBase {
 public:
  explicit FixedShareCombiner(double eta = 0.0, double alpha = 0.05,
                              bool warm_start = false);

 protected:
  void Step(const math::Vec& z_preds, double z_actual) override;

 private:
  double eta_;  // 0 = calibrated.
  double alpha_;
  size_t t_ = 0;
};

/// OGD: projected online gradient descent on the simplex (Zinkevich 2003)
/// with step size eta0 / sqrt(t).
class OgdCombiner : public ExpertAggregationBase {
 public:
  explicit OgdCombiner(double eta0 = 0.5, bool warm_start = false);

 protected:
  void Step(const math::Vec& z_preds, double z_actual) override;

 private:
  double eta0_;
  size_t t_ = 0;
};

/// MLpol: polynomially weighted average forecaster driven by positive
/// regrets, w_i proportional to max(R_i, 0) (degree-2 polynomial potential,
/// as in the `opera` package's MLpol).
class MlpolCombiner : public ExpertAggregationBase {
 public:
  explicit MlpolCombiner(bool warm_start = false);

 protected:
  void Step(const math::Vec& z_preds, double z_actual) override;

 private:
  math::Vec regrets_;
};

}  // namespace eadrl::baselines

#endif  // EADRL_BASELINES_EXPERT_AGGREGATION_H_
