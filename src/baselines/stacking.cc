#include "baselines/stacking.h"

#include "common/check.h"

namespace eadrl::baselines {

StackingCombiner::StackingCombiner(size_t num_trees, uint64_t seed)
    : name_("Stacking"), num_trees_(num_trees), seed_(seed) {}

Status StackingCombiner::Initialize(const math::Matrix& val_preds,
                                    const math::Vec& val_actuals) {
  if (val_preds.rows() != val_actuals.size() || val_preds.rows() == 0) {
    return Status::InvalidArgument("Stacking: bad validation data");
  }
  models::RandomForestRegressor::Params p;
  p.num_trees = num_trees_;
  p.tree.max_depth = 8;
  p.seed = seed_;
  meta_ = std::make_unique<models::RandomForestRegressor>(p);
  return meta_->Fit(val_preds, val_actuals);
}

double StackingCombiner::Predict(const math::Vec& preds) {
  EADRL_CHECK(meta_ != nullptr);
  return meta_->Predict(preds);
}

void StackingCombiner::Update(const math::Vec& preds, double actual) {
  // Offline meta-learner; no online adaptation.
  (void)preds;
  (void)actual;
}

}  // namespace eadrl::baselines
