#ifndef EADRL_BASELINES_DYNAMIC_SELECTION_H_
#define EADRL_BASELINES_DYNAMIC_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/error_tracker.h"
#include "core/combiner.h"
#include "ts/drift.h"

namespace eadrl::baselines {

/// Agglomerative (average-link) clustering of models by the correlation
/// distance 1 - corr of their recent predictions; clusters are merged while
/// the closest pair is within `distance_threshold`. Exposed for Clus/DEMSC
/// and for unit tests.
std::vector<std::vector<size_t>> ClusterModelsByCorrelation(
    const SlidingErrorTracker& tracker, double distance_threshold);

/// Top.sel (Saadallah et al. 2019): dynamically selects the best-performing
/// base models over a sliding window and combines them with SWE weights.
class TopSelCombiner : public core::WeightedCombiner {
 public:
  explicit TopSelCombiner(size_t top_n = 10, size_t window = 10);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

 private:
  std::string name_;
  size_t top_n_;
  size_t window_;
  std::unique_ptr<SlidingErrorTracker> tracker_;
};

/// Clus (Saadallah et al. 2019): clusters similar models by prediction
/// correlation, keeps one representative per cluster (its most accurate
/// member), and combines the representatives with SWE. Re-clusters every
/// `recluster_every` steps.
class ClusCombiner : public core::WeightedCombiner {
 public:
  explicit ClusCombiner(size_t window = 10, double distance_threshold = 0.3,
                        size_t recluster_every = 25);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

  const std::vector<size_t>& representatives() const {
    return representatives_;
  }

 private:
  void Recluster();

  std::string name_;
  size_t window_;
  double distance_threshold_;
  size_t recluster_every_;
  size_t steps_since_recluster_ = 0;
  std::unique_ptr<SlidingErrorTracker> tracker_;
  std::vector<size_t> representatives_;
};

/// DEMSC (Saadallah et al. 2019): drift-aware dynamic ensemble — Top.sel
/// pruning plus Clus diversity enhancement, with the committee rebuilt only
/// when a Page–Hinkley detector flags drift in the ensemble error. This is
/// the paper's strongest baseline (Table II) and its online-runtime
/// comparator (Table III).
class DemscCombiner : public core::WeightedCombiner {
 public:
  struct Params {
    size_t window = 10;
    size_t top_n = 10;
    /// Correlation-distance merge threshold. Base models forecasting the
    /// same series are all highly correlated, so only near-duplicates
    /// (corr > 0.98) are merged; coarser thresholds collapse every decent
    /// model into one cluster and starve the committee.
    double distance_threshold = 0.02;
    double ph_delta = 0.005;
    double ph_lambda = 5.0;
  };

  DemscCombiner();
  explicit DemscCombiner(Params params);

  const std::string& name() const override { return name_; }
  Status Initialize(const math::Matrix& val_preds,
                    const math::Vec& val_actuals) override;
  void Update(const math::Vec& preds, double actual) override;
  math::Vec Weights() const override;

  size_t drift_count() const { return drift_count_; }
  const std::vector<size_t>& committee() const { return committee_; }

 private:
  void Recluster();
  void RefreshCommittee();

  std::string name_;
  Params params_;
  std::unique_ptr<SlidingErrorTracker> tracker_;
  ts::PageHinkley detector_;
  std::vector<std::vector<size_t>> clusters_;
  std::vector<size_t> committee_;
  size_t drift_count_ = 0;
};

}  // namespace eadrl::baselines

#endif  // EADRL_BASELINES_DYNAMIC_SELECTION_H_
