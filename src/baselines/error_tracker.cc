#include "baselines/error_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "math/stats.h"

namespace eadrl::baselines {

SlidingErrorTracker::SlidingErrorTracker(size_t num_models, size_t window)
    : num_models_(num_models),
      window_(window),
      squared_errors_(num_models),
      recent_preds_(num_models) {
  EADRL_CHECK_GT(num_models, 0u);
  EADRL_CHECK_GT(window, 0u);
}

void SlidingErrorTracker::Add(const math::Vec& preds, double actual) {
  EADRL_CHECK_EQ(preds.size(), num_models_);
  for (size_t i = 0; i < num_models_; ++i) {
    double err = preds[i] - actual;
    squared_errors_[i].push_back(err * err);
    if (squared_errors_[i].size() > window_) squared_errors_[i].pop_front();
    recent_preds_[i].push_back(preds[i]);
    if (recent_preds_[i].size() > window_) recent_preds_[i].pop_front();
  }
  ++steps_seen_;
}

void SlidingErrorTracker::Warm(const math::Matrix& preds,
                               const math::Vec& actuals) {
  EADRL_CHECK_EQ(preds.rows(), actuals.size());
  for (size_t t = 0; t < preds.rows(); ++t) Add(preds.Row(t), actuals[t]);
}

double SlidingErrorTracker::Rmse(size_t i) const {
  EADRL_CHECK_LT(i, num_models_);
  if (squared_errors_[i].empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double s = 0.0;
  for (double e : squared_errors_[i]) s += e;
  return std::sqrt(s / static_cast<double>(squared_errors_[i].size()));
}

math::Vec SlidingErrorTracker::InverseErrorWeights(
    const std::vector<size_t>& subset) const {
  std::vector<size_t> models = subset;
  if (models.empty()) {
    models.resize(num_models_);
    std::iota(models.begin(), models.end(), 0u);
  }
  math::Vec w(num_models_, 0.0);
  double sum = 0.0;
  for (size_t i : models) {
    double rmse = Rmse(i);
    double inv = std::isfinite(rmse) ? 1.0 / (rmse + 1e-8) : 0.0;
    w[i] = inv;
    sum += inv;
  }
  if (sum <= 0.0) {
    for (size_t i : models) w[i] = 1.0 / static_cast<double>(models.size());
    return w;
  }
  for (double& v : w) v /= sum;
  return w;
}

std::vector<size_t> SlidingErrorTracker::TopModels(size_t n) const {
  std::vector<size_t> order(num_models_);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return Rmse(a) < Rmse(b);
  });
  order.resize(std::min(n, order.size()));
  return order;
}

double SlidingErrorTracker::PredictionCorrelation(size_t a, size_t b) const {
  EADRL_CHECK(a < num_models_ && b < num_models_);
  const auto& pa = recent_preds_[a];
  const auto& pb = recent_preds_[b];
  if (pa.size() < 3 || pa.size() != pb.size()) return 0.0;
  math::Vec va(pa.begin(), pa.end());
  math::Vec vb(pb.begin(), pb.end());
  return math::PearsonCorrelation(va, vb);
}

}  // namespace eadrl::baselines
