#include "baselines/dynamic_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "math/vec.h"

namespace eadrl::baselines {

std::vector<std::vector<size_t>> ClusterModelsByCorrelation(
    const SlidingErrorTracker& tracker, double distance_threshold) {
  const size_t m = tracker.num_models();
  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(m);
  for (size_t i = 0; i < m; ++i) clusters.push_back({i});

  auto cluster_distance = [&](const std::vector<size_t>& a,
                              const std::vector<size_t>& b) {
    // Average-link distance on 1 - correlation.
    double s = 0.0;
    for (size_t i : a) {
      for (size_t j : b) {
        s += 1.0 - tracker.PredictionCorrelation(i, j);
      }
    }
    return s / static_cast<double>(a.size() * b.size());
  };

  while (clusters.size() > 1) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        double d = cluster_distance(clusters[i], clusters[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (best > distance_threshold) break;
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + bj);
  }
  return clusters;
}

namespace {

// Picks the lowest-RMSE member of each cluster.
std::vector<size_t> ClusterRepresentatives(
    const SlidingErrorTracker& tracker,
    const std::vector<std::vector<size_t>>& clusters) {
  std::vector<size_t> reps;
  reps.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    size_t best = cluster[0];
    for (size_t i : cluster) {
      if (tracker.Rmse(i) < tracker.Rmse(best)) best = i;
    }
    reps.push_back(best);
  }
  return reps;
}

}  // namespace

// ---------------------------------------------------------------------------
// Top.sel

TopSelCombiner::TopSelCombiner(size_t top_n, size_t window)
    : name_("Top.sel"), top_n_(top_n), window_(window) {}

Status TopSelCombiner::Initialize(const math::Matrix& val_preds,
                                  const math::Vec& val_actuals) {
  if (val_preds.cols() == 0) {
    return Status::InvalidArgument("Top.sel: no base models");
  }
  tracker_ = std::make_unique<SlidingErrorTracker>(val_preds.cols(), window_);
  tracker_->Warm(val_preds, val_actuals);
  return Status::Ok();
}

void TopSelCombiner::Update(const math::Vec& preds, double actual) {
  EADRL_CHECK(tracker_ != nullptr);
  tracker_->Add(preds, actual);
}

math::Vec TopSelCombiner::Weights() const {
  EADRL_CHECK(tracker_ != nullptr);
  return tracker_->InverseErrorWeights(tracker_->TopModels(top_n_));
}

// ---------------------------------------------------------------------------
// Clus

ClusCombiner::ClusCombiner(size_t window, double distance_threshold,
                           size_t recluster_every)
    : name_("Clus"),
      window_(window),
      distance_threshold_(distance_threshold),
      recluster_every_(recluster_every) {}

Status ClusCombiner::Initialize(const math::Matrix& val_preds,
                                const math::Vec& val_actuals) {
  if (val_preds.cols() == 0) {
    return Status::InvalidArgument("Clus: no base models");
  }
  tracker_ = std::make_unique<SlidingErrorTracker>(val_preds.cols(), window_);
  tracker_->Warm(val_preds, val_actuals);
  Recluster();
  return Status::Ok();
}

void ClusCombiner::Recluster() {
  representatives_ = ClusterRepresentatives(
      *tracker_, ClusterModelsByCorrelation(*tracker_, distance_threshold_));
  steps_since_recluster_ = 0;
}

void ClusCombiner::Update(const math::Vec& preds, double actual) {
  EADRL_CHECK(tracker_ != nullptr);
  tracker_->Add(preds, actual);
  if (++steps_since_recluster_ >= recluster_every_) Recluster();
}

math::Vec ClusCombiner::Weights() const {
  EADRL_CHECK(tracker_ != nullptr);
  return tracker_->InverseErrorWeights(representatives_);
}

// ---------------------------------------------------------------------------
// DEMSC

DemscCombiner::DemscCombiner() : DemscCombiner(Params()) {}

DemscCombiner::DemscCombiner(Params params)
    : name_("DEMSC"),
      params_(params),
      detector_(params.ph_delta, params.ph_lambda) {}

Status DemscCombiner::Initialize(const math::Matrix& val_preds,
                                 const math::Vec& val_actuals) {
  if (val_preds.cols() == 0) {
    return Status::InvalidArgument("DEMSC: no base models");
  }
  tracker_ =
      std::make_unique<SlidingErrorTracker>(val_preds.cols(), params_.window);
  tracker_->Warm(val_preds, val_actuals);
  detector_.Reset();
  drift_count_ = 0;
  Recluster();
  RefreshCommittee();
  return Status::Ok();
}

void DemscCombiner::Recluster() {
  // The expensive diversity analysis (pairwise correlation clustering) is
  // only recomputed when the drift detector fires — the "informed update"
  // the paper describes and Table III's runtime cost for DEMSC.
  clusters_ = ClusterModelsByCorrelation(*tracker_, params_.distance_threshold);
}

void DemscCombiner::RefreshCommittee() {
  // Per-step Top.sel pruning inside the cached clustering: keep each
  // cluster's best current member, restricted to the current top models.
  std::vector<size_t> top = tracker_->TopModels(params_.top_n);
  std::vector<std::vector<size_t>> restricted;
  for (const auto& cluster : clusters_) {
    std::vector<size_t> kept;
    for (size_t i : cluster) {
      if (std::find(top.begin(), top.end(), i) != top.end()) {
        kept.push_back(i);
      }
    }
    if (!kept.empty()) restricted.push_back(std::move(kept));
  }
  if (restricted.empty()) restricted.push_back(std::move(top));
  committee_ = ClusterRepresentatives(*tracker_, restricted);
}

void DemscCombiner::Update(const math::Vec& preds, double actual) {
  EADRL_CHECK(tracker_ != nullptr);
  // Ensemble error drives the drift detector (standardized by the window's
  // own magnitude through Page-Hinkley's adaptive mean).
  double ensemble_pred = core::Combine(Weights(), preds);
  tracker_->Add(preds, actual);
  if (detector_.Update(std::fabs(ensemble_pred - actual))) {
    ++drift_count_;
    Recluster();
  }
  RefreshCommittee();
}

math::Vec DemscCombiner::Weights() const {
  EADRL_CHECK(tracker_ != nullptr);
  return tracker_->InverseErrorWeights(committee_);
}

}  // namespace eadrl::baselines
