#ifndef EADRL_SERVE_SERVICE_H_
#define EADRL_SERVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "common/status.h"
#include "core/eadrl.h"
#include "math/vec.h"
#include "obs/cardinality.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/window.h"
#include "par/thread_pool.h"
#include "serve/batching_queue.h"
#include "serve/session_table.h"
#include "ts/scaler.h"

namespace eadrl::serve {

/// Serving-layer configuration. Defaults are sized for a test-scale
/// deployment; the load driver (tools/eadrl_serve.cc) overrides most of
/// them from flags.
struct ServeConfig {
  size_t shards = 16;            ///< session-table lock stripes.
  size_t max_sessions = 0;       ///< resident-session cap (0 = unbounded).
  double session_ttl_seconds = 0.0;  ///< idle eviction (0 = off).
  size_t max_batch = 64;         ///< requests per processed wave.
  size_t max_queue = 4096;       ///< admission bound on queued requests.
  /// Admission bound on admitted-but-incomplete requests (0 = 2 * max_queue).
  /// Approximate under concurrency: racing admits may briefly overshoot.
  size_t max_inflight = 0;
  size_t linger_us = 0;          ///< batching window (see BatchingQueue).
  bool manual_drain = false;     ///< tests: pump via DrainOnce().
  double drift_delta = 0.005;    ///< per-session Page-Hinkley tolerance.
  double drift_lambda = 3.0;     ///< per-session Page-Hinkley threshold.
  par::ThreadPool* pool = nullptr;  ///< nullptr = par::DefaultPool().

  /// Sub-window layout + clock for the service's live windowed stats
  /// (windowed QPS / p99 / shed rate, queue delay, drill-down families).
  /// Tests inject a fake clock here; it propagates everywhere.
  obs::WindowOptions window;
  /// Opt-in: maintain the live windowed stats (windowed QPS/p99/shed rate
  /// in Stats(), queue-delay estimator). Off by default — the enabled path
  /// costs a handful of atomic RMWs per predict (priced in
  /// bench/window_bench.cc and BM_BatchingQueueEnqueueDrainTracked), which
  /// the lean serving path does not pay unless asked. tools/eadrl_serve
  /// turns this on.
  bool windowed_stats = false;
  /// Cardinality caps for the per-tenant / per-policy latency drill-down
  /// (see obs::LabeledWindowedFamily); 0 (the default) disables that
  /// drill-down. Opt-in because each enabled family adds a mutex-serialized
  /// label lookup per predict on the completion path; tools/eadrl_serve
  /// turns both on.
  size_t tenant_drilldown = 0;
  size_t policy_drilldown = 0;

  /// SLO tracking (obs::SloTracker); when enabled the service maintains two
  /// objectives — predict latency (threshold below) and availability
  /// (admitted vs shed) — evaluated after every drained batch.
  struct Slo {
    bool enabled = false;
    double latency_threshold_seconds = 0.05;
    double latency_target = 0.99;
    double availability_target = 0.999;
    double burn_threshold = 2.0;
  };
  Slo slo;
};

/// Service-wide counters (monotone since construction, except gauges).
struct ServeStats {
  uint64_t sessions = 0;          ///< resident right now.
  uint64_t sessions_created = 0;
  uint64_t evictions_lru = 0;
  uint64_t evictions_ttl = 0;
  uint64_t evictions_explicit = 0;
  uint64_t predicts = 0;          ///< completed predict requests.
  uint64_t observes = 0;          ///< completed observe requests.
  uint64_t shed = 0;              ///< admission rejections.
  uint64_t batches = 0;           ///< processed waves.
  uint64_t act_batches = 0;       ///< batched actor passes.
  uint64_t act_batch_rows = 0;    ///< total rows across actor passes.
  uint64_t drift_events = 0;
  uint64_t inflight = 0;          ///< admitted, not yet completed.
  uint64_t queue_depth = 0;

  // Windowed view (last ServeConfig::window span; see obs/window.h). All
  // rates are per second over window_seconds.
  double window_seconds = 0.0;
  double window_predict_qps = 0.0;
  double window_shed_rate = 0.0;
  double window_predict_p50_s = 0.0;
  double window_predict_p99_s = 0.0;
  /// Windowed admission-to-drain backlog residence (BatchingQueue).
  uint64_t queue_delay_count = 0;
  double queue_delay_mean_s = 0.0;
  double queue_delay_p50_s = 0.0;
  double queue_delay_p99_s = 0.0;
  double queue_delay_max_s = 0.0;

  /// Mean rows per batched actor pass — the cross-tenant batching win; > 1
  /// means concurrent tenants actually shared actor passes.
  double MeanActBatchRows() const {
    return act_batches == 0
               ? 0.0
               : static_cast<double>(act_batch_rows) /
                     static_cast<double>(act_batches);
  }
};

/// Per-session diagnostics snapshot (GetSessionInfo).
struct SessionInfo {
  uint64_t generation = 0;
  uint64_t predicts = 0;
  uint64_t observes = 0;
  uint64_t drift_events = 0;
  size_t window_size = 0;
  double last_prediction = 0.0;   ///< policy units; 0 before first predict.
  bool has_last_prediction = false;
  size_t drift_observations = 0;  ///< detector observations since reset.
  double drift_cumulative = 0.0;
};

/// Multi-tenant online forecast serving for trained EA-DRL policies.
///
/// Tenants register once (CreateSession) against a shared trained policy and
/// then stream Predict / ObserveActual requests. Requests from concurrent
/// tenants funnel through one BatchingQueue and are drained in waves: each
/// wave takes at most one request per session (preserving per-session FIFO
/// order), groups the predicts by policy, and runs ONE batched actor pass
/// (rl::DdpgAgent::ActBatch) per policy group — the cross-tenant batching
/// that amortizes actor inference. Because ActBatch row b is bit-identical
/// to Act on row b (the PR-7 batched-kernel guarantee) and the state/reduce/
/// combine steps share code with EadrlCombiner::Predict, a batched serving
/// replay is bit-identical to per-session serial evaluation
/// (tests/serve_parity_test.cc).
///
/// Admission control: a request is shed with Status::ResourceExhausted when
/// the queue is at max_queue or admitted-but-incomplete requests reach
/// max_inflight. Shedding is the backpressure signal of an open-loop load
/// driver (tools/eadrl_serve.cc --expect-shed).
///
/// Threading: all public entry points are thread-safe. Per-session state is
/// guarded by the session mutex, sessions are striped across the table's
/// shard locks, and each policy's agent workspace is serialized by the
/// policy mutex.
class ForecastService {
 public:
  /// SLO objective indices within slo_tracker().
  static constexpr size_t kSloLatencyObjective = 0;
  static constexpr size_t kSloAvailabilityObjective = 1;

  explicit ForecastService(const ServeConfig& config);

  /// Drains in-flight work, then tears down. The configured pool must
  /// outlive the service.
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Takes ownership of a trained (Initialize or LoadPolicy succeeded)
  /// combiner and returns its policy id. The combiner's online state is
  /// snapshotted now as the fresh-session template.
  size_t RegisterPolicy(std::unique_ptr<core::EadrlCombiner> trained);

  /// Creates a resident session for `tenant` against `policy_id`.
  /// `scaler` (optional, copied) is the tenant-units <-> policy-units affine
  /// map. FailedPrecondition when the tenant already has a session;
  /// OutOfRange for an unknown policy id.
  Status CreateSession(const std::string& tenant, size_t policy_id,
                       const ts::StandardScaler* scaler = nullptr);

  /// Removes the tenant's session. NotFound when absent.
  Status EvictSession(const std::string& tenant);

  /// Restores the tenant's session to fresh-construction state (window
  /// re-cloned from the policy snapshot, drift detector and counters
  /// zeroed). NotFound when absent.
  Status ResetSession(const std::string& tenant);

  /// Admits a predict request: `preds` are the member forecasts in tenant
  /// units; `done` receives the combined forecast (tenant units) on the
  /// drainer thread. Returns the admission decision: NotFound (no session)
  /// or ResourceExhausted (shed); once Ok is returned, `done` will be
  /// called. `done` must not throw.
  Status PredictAsync(const std::string& tenant, math::Vec preds,
                      std::function<void(StatusOr<double>)> done);

  /// Admits an observe request feeding the tenant's realized value (tenant
  /// units) to its drift detector. `done` (optional) runs on the drainer
  /// thread; same admission semantics as PredictAsync.
  Status ObserveActualAsync(const std::string& tenant, double actual,
                            std::function<void(Status)> done = {});

  /// Blocking conveniences over the async entry points (admission errors
  /// propagate). Not legal in manual_drain mode on a parallel pool (nothing
  /// would pump the queue).
  StatusOr<double> Predict(const std::string& tenant, const math::Vec& preds);
  Status ObserveActual(const std::string& tenant, double actual);

  StatusOr<SessionInfo> GetSessionInfo(const std::string& tenant);

  /// Runs one TTL sweep; returns sessions evicted.
  size_t EvictIdleSessions();

  ServeStats Stats() const;

  /// End-to-end predict latency (admission to completion callback), seconds.
  obs::HistogramSnapshot PredictLatencySnapshot() const;

  /// Windowed predict latency over the last ServeConfig::window span.
  obs::WindowedHistogramSnapshot PredictLatencyWindowSnapshot() const;

  /// Windowed backlog residence time (see BatchingQueue::QueueDelaySnapshot).
  obs::WindowedHistogramSnapshot QueueDelaySnapshot() const;

  /// The service's SLO tracker; nullptr when ServeConfig::slo.enabled is
  /// false. Objective 0 is predict latency, objective 1 availability.
  obs::SloTracker* slo_tracker() { return slo_.get(); }
  const obs::SloTracker* slo_tracker() const { return slo_.get(); }

  /// Per-tenant / per-policy windowed predict-latency drill-down; nullptr
  /// when the corresponding cap in ServeConfig is 0.
  const obs::LabeledWindowedFamily* tenant_drilldown() const {
    return tenant_family_.get();
  }
  const obs::LabeledWindowedFamily* policy_drilldown() const {
    return policy_family_.get();
  }

  /// Blocks until all admitted requests completed (see BatchingQueue::Flush).
  void Flush();

  /// Manual-drain pump: processes the current backlog as one batch on the
  /// calling thread. Returns false when the queue was empty.
  bool DrainOnce();

  /// The registered combiner (tests and offline tooling). Callers must not
  /// use it while requests are in flight — it shares the policy's agent
  /// workspace with the serving path.
  core::EadrlCombiner* policy_combiner(size_t policy_id);

  const ServeConfig& config() const { return config_; }

 private:
  void ProcessBatch(std::vector<Request> batch);
  /// One wave: at most one request per session, batched actor passes
  /// grouped by policy, then per-request apply + completion.
  void ProcessWave(std::vector<Request>* batch,
                   const std::vector<size_t>& wave);
  Status Admit(Request request, const std::string& tenant);

  ServeConfig config_;
  size_t effective_max_inflight_;

  chk::OrderedMutex policies_mu_{EADRL_LOCK_RANK(serve_policies),
                                 "serve::ForecastService::policies_mu_"};
  std::vector<std::shared_ptr<Policy>> policies_ EADRL_GUARDED_BY(policies_mu_);

  SessionTable table_;
  std::atomic<uint64_t> next_generation_{0};

  std::atomic<uint64_t> predicts_done_{0};
  std::atomic<uint64_t> observes_done_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> act_batches_{0};
  std::atomic<uint64_t> act_batch_rows_{0};
  std::atomic<uint64_t> drift_events_{0};
  std::atomic<uint64_t> sessions_created_{0};
  std::atomic<uint64_t> evictions_explicit_{0};
  std::atomic<uint64_t> inflight_{0};

  // Cached from the default registry (stable pointers; see DESIGN.md,
  // "Observability").
  obs::Counter* predict_counter_;
  obs::Counter* observe_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* batch_counter_;
  obs::Counter* batch_rows_counter_;
  obs::Gauge* sessions_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* predict_latency_hist_;
  obs::Histogram* observe_latency_hist_;
  obs::Histogram* occupancy_hist_;

  // Service-owned windowed stats (NOT in the default registry: they follow
  // ServeConfig::window's injected clock, and each service instance gets its
  // own window — exporters reach them through sections, see DESIGN.md "Live
  // serving observability"). All internally synchronized.
  obs::WindowedCounter predict_window_ EADRL_UNGUARDED;
  obs::WindowedCounter shed_window_ EADRL_UNGUARDED;
  obs::WindowedHistogram predict_latency_window_ EADRL_UNGUARDED;
  /// Null unless the corresponding config enables them.
  std::unique_ptr<obs::SloTracker> slo_ EADRL_UNGUARDED;
  std::unique_ptr<obs::LabeledWindowedFamily> tenant_family_ EADRL_UNGUARDED;
  std::unique_ptr<obs::LabeledWindowedFamily> policy_family_ EADRL_UNGUARDED;
  /// ServeConfig::windowed_stats: feed the windowed counters above.
  bool windowed_ = false;
  /// Any live-obs sink enabled (windowed stats, SLO, drill-down): the
  /// completion path reads the window clock only when something consumes it.
  bool obs_live_ = false;

  /// Declared last: its destructor drains while every member above is alive
  /// (ProcessBatch touches the table, counters and metrics).
  BatchingQueue queue_;
};

}  // namespace eadrl::serve

#endif  // EADRL_SERVE_SERVICE_H_
