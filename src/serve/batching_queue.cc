#include "serve/batching_queue.h"

#include <iterator>
#include <thread>
#include <utility>

#include "common/check.h"

namespace eadrl::serve {

BatchingQueue::BatchingQueue(const Options& options, DrainFn drain)
    : opt_(options),
      drain_(std::move(drain)),
      pool_(options.pool),
      queue_delay_(options.window, {}) {
  EADRL_CHECK(drain_ != nullptr);
  if (opt_.max_queue == 0) opt_.max_queue = 1;
  if (pool_ == nullptr) pool_ = &par::DefaultPool();
}

BatchingQueue::~BatchingQueue() { Flush(); }

bool BatchingQueue::TryEnqueue(Request request) {
  bool schedule = false;
  {
    std::lock_guard<chk::OrderedMutex> lock(queue_mu_);
    if (queue_.size() >= opt_.max_queue) return false;
    queue_.push_back(std::move(request));
    if (!opt_.manual_drain && !drain_active_) {
      drain_active_ = true;
      schedule = true;
    }
  }
  // Scheduled outside the lock: on a serial pool Submit runs DrainLoop
  // inline, and DrainLoop takes queue_mu_.
  if (schedule) pool_->Submit([this] { DrainLoop(); });
  return true;
}

void BatchingQueue::DrainLoop() {
  for (;;) {
    // The batching window: arrivals during the linger coalesce into this
    // batch instead of each triggering a one-request wave. Pointless on a
    // serial pool — the drain runs inline in the producer, so nothing can
    // arrive during the sleep and it would only serialize a delay onto
    // every enqueue.
    if (opt_.linger_us > 0 && pool_->parallel()) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt_.linger_us));
    }
    std::vector<Request> batch;
    {
      std::unique_lock<chk::OrderedMutex> lock(queue_mu_);
      if (queue_.empty()) {
        // Deactivate under the lock: a producer that enqueued before this
        // point was observed by the emptiness check above; one that enqueues
        // after sees drain_active_ == false and schedules a fresh drainer.
        drain_active_ = false;
        idle_cv_.notify_all();
        return;
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    ObserveQueueDelay(batch);
    drain_(std::move(batch));
  }
}

bool BatchingQueue::DrainOnce() {
  std::vector<Request> batch;
  {
    std::lock_guard<chk::OrderedMutex> lock(queue_mu_);
    // A scheduled drainer owns the backlog: stealing it here would run
    // drain_ concurrently with DrainLoop's, interleaving two batches and
    // breaking the per-session FIFO order the single-drainer discipline
    // guarantees. (drain_active_ is never set in manual_drain mode, so the
    // manual pump path is unaffected.)
    if (drain_active_ || queue_.empty()) return false;
    batch.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  ObserveQueueDelay(batch);
  drain_(std::move(batch));
  return true;
}

void BatchingQueue::ObserveQueueDelay(const std::vector<Request>& batch) {
  if (!opt_.track_queue_delay || batch.empty()) return;
  // Two clock readings (wall + window) cover the whole batch; the window
  // epoch cannot change between rows of one drain.
  const auto now = std::chrono::steady_clock::now();
  const uint64_t obs_now = queue_delay_.NowNs();
  for (const Request& request : batch) {
    queue_delay_.ObserveAt(
        obs_now,
        std::chrono::duration<double>(now - request.enqueue_time).count());
  }
}

obs::WindowedHistogramSnapshot BatchingQueue::QueueDelaySnapshot() const {
  return queue_delay_.Snapshot();
}

void BatchingQueue::Flush() {
  if (opt_.manual_drain) {
    while (DrainOnce()) {
    }
    return;
  }
  std::unique_lock<chk::OrderedMutex> lock(queue_mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !drain_active_; });
}

size_t BatchingQueue::depth() const {
  std::lock_guard<chk::OrderedMutex> lock(queue_mu_);
  return queue_.size();
}

}  // namespace eadrl::serve
