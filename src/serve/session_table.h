#ifndef EADRL_SERVE_SESSION_TABLE_H_
#define EADRL_SERVE_SESSION_TABLE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "common/status.h"
#include "core/eadrl.h"
#include "ts/drift.h"
#include "ts/scaler.h"

namespace eadrl::serve {

/// A trained EA-DRL policy shared by many tenant sessions. The combiner is
/// immutable online (paper default OnlineUpdateMode::kNone) except for the
/// agent's inference workspace, which `mu` serializes — this is what allows
/// one actor network to serve cross-tenant batched passes. `fresh_state`
/// snapshots the combiner's online state right after training; every new (or
/// reset) session starts from a copy of it.
struct Policy {
  /// Immutable after RegisterPolicy publishes the policy (online updates are
  /// off in serving); only the agent's scratch workspace mutates, under
  /// agent_mu.
  std::unique_ptr<core::EadrlCombiner> combiner EADRL_UNGUARDED;
  core::OnlineState fresh_state EADRL_UNGUARDED;  ///< written pre-publication.
  /// Registration index, written pre-publication — the per-policy
  /// drill-down label ("policy=<id>").
  size_t id EADRL_UNGUARDED = 0;
  /// `id` rendered once at registration so the per-request drill-down
  /// observation never allocates a label string on the serving path.
  std::string label EADRL_UNGUARDED;
  /// Serializes access to the combiner's agent workspace (ActBatch reuses
  /// internal buffers; see EadrlCombiner::agent()). Innermost serve lock:
  /// held while session locks are held (ProcessWave), never the reverse.
  chk::OrderedMutex agent_mu{EADRL_LOCK_RANK(serve_policy),
                             "serve::Policy::agent_mu"};
};

/// One resident tenant session: a reference to the shared policy plus
/// everything Predict/ObserveActual mutate per tenant. All fields below
/// `session_mu` are guarded by it; the serving layer's
/// one-request-per-session-per-wave rule means waves never contend on it,
/// but Stats/GetSessionInfo readers do.
struct Session {
  /// Opted out of clang's thread-safety analysis: the constructor calls
  /// Reset() (which requires session_mu) before the session is published,
  /// when no other thread can see it.
  Session(std::string tenant_in, std::shared_ptr<Policy> policy_in,
          uint64_t generation_in, const ts::StandardScaler* scaler_in,
          double drift_delta,
          double drift_lambda) EADRL_NO_THREAD_SAFETY_ANALYSIS;

  /// Restores fresh-construction state: the online window is re-cloned from
  /// the policy snapshot, the drift detector and per-session counters are
  /// zeroed. Called under `session_mu` (ForecastService::ResetSession) or
  /// before the session is published (the constructor). This is the reset
  /// contract of session recreation: no drift or window state may leak
  /// across a session's lifetimes.
  void Reset() EADRL_REQUIRES(session_mu);

  /// The owning tenant's key — carried on the session so the wave processor
  /// can label drill-down metrics without a reverse table lookup.
  const std::string tenant EADRL_UNGUARDED;  ///< const after ctor.
  std::shared_ptr<Policy> policy EADRL_UNGUARDED;  ///< const after ctor.
  /// Monotone id distinguishing a session from any predecessor under the
  /// same tenant key (eviction + recreation bumps it) — regression tests use
  /// it to prove state did not leak across recreation.
  const uint64_t generation;
  /// Affine map between the tenant's series units and the policy's training
  /// units (absent: the tenant already speaks policy units).
  const bool has_scaler;
  const ts::StandardScaler scaler;
  const double drift_delta;
  const double drift_lambda;

  chk::OrderedMutex session_mu{EADRL_LOCK_RANK(serve_session),
                               "serve::Session::session_mu"};
  core::OnlineState state EADRL_GUARDED_BY(session_mu);
  ts::PageHinkley drift EADRL_GUARDED_BY(session_mu);
  /// Policy units.
  double last_prediction EADRL_GUARDED_BY(session_mu) = 0.0;
  bool has_last_prediction EADRL_GUARDED_BY(session_mu) = false;
  uint64_t predicts EADRL_GUARDED_BY(session_mu) = 0;
  uint64_t observes EADRL_GUARDED_BY(session_mu) = 0;
  uint64_t drift_events EADRL_GUARDED_BY(session_mu) = 0;
};

/// Sharded, mutex-striped map of resident sessions with LRU capacity
/// eviction and TTL idle eviction. Keys hash to one of `shards` stripes;
/// operations on different stripes never contend, which is what keeps a
/// multi-tenant admission path scalable (tests/serve_race_test.cc exercises
/// this under TSan).
///
/// Capacity is enforced per stripe (max_sessions / shards, at least 1), so a
/// pathological key distribution can evict slightly before the global cap —
/// the standard striped-LRU trade-off.
class SessionTable {
 public:
  struct Options {
    size_t shards = 16;
    size_t max_sessions = 0;     ///< 0 = unbounded.
    double ttl_seconds = 0.0;    ///< 0 = no idle eviction.
  };

  explicit SessionTable(const Options& options);

  /// Publishes a session under `tenant`. FailedPrecondition when the tenant
  /// already has one. May LRU-evict the stripe's least-recently-used session
  /// when the stripe is at capacity.
  Status Insert(const std::string& tenant, std::shared_ptr<Session> session);

  /// Returns the session and marks it most-recently-used; nullptr when the
  /// tenant is not resident.
  std::shared_ptr<Session> Lookup(const std::string& tenant);

  /// Removes the tenant's session. False when not resident.
  bool Erase(const std::string& tenant);

  /// Sweeps every stripe, evicting sessions idle longer than ttl_seconds.
  /// Returns the number evicted (always 0 without a TTL).
  size_t EvictIdle();

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t lru_evictions() const {
    return lru_evictions_.load(std::memory_order_relaxed);
  }
  uint64_t ttl_evictions() const {
    return ttl_evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    /// Position in the stripe's recency list (front = most recent).
    std::list<std::string>::iterator lru_it;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct Shard {
    mutable chk::OrderedMutex stripe_mu{
        EADRL_LOCK_RANK(serve_table_shard),
        "serve::SessionTable::Shard::stripe_mu"};
    std::unordered_map<std::string, Entry> map EADRL_GUARDED_BY(stripe_mu);
    std::list<std::string> lru EADRL_GUARDED_BY(stripe_mu);
  };

  /// What EraseLocked removed; the caller emits the serve_evict telemetry
  /// from these records AFTER releasing the stripe lock (the telemetry sink
  /// has its own mutex and does file I/O — neither belongs under a stripe).
  struct Eviction {
    std::string tenant;
    uint64_t generation = 0;
    const char* reason = "";
  };

  Shard& ShardFor(const std::string& tenant);

  /// Emits serve_evict telemetry for each record. Callers hold no locks.
  static void EmitEvictions(const std::vector<Eviction>& evicted);

  /// Removes `it` from `shard` (caller holds the stripe lock) and appends
  /// the eviction record to `evicted` for post-unlock telemetry.
  void EraseLocked(Shard* shard,
                   std::unordered_map<std::string, Entry>::iterator it,
                   const char* reason, std::vector<Eviction>* evicted)
      EADRL_REQUIRES(shard->stripe_mu);

  Options opt_;
  size_t per_shard_cap_;  ///< 0 = unbounded.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> lru_evictions_{0};
  std::atomic<uint64_t> ttl_evictions_{0};
};

}  // namespace eadrl::serve

#endif  // EADRL_SERVE_SESSION_TABLE_H_
