#include "serve/replay.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "ts/scaler.h"

namespace eadrl::serve {
namespace {

/// Arrival-rate for a virtual time under the bursty schedule: alternating
/// hot/cold windows whose rates straddle the target.
double BurstyRate(double virtual_seconds, const ReplayOptions& options) {
  const double period = options.burst_seconds + options.idle_seconds;
  const double phase = std::fmod(virtual_seconds, period);
  if (phase < options.burst_seconds) {
    return options.target_qps * options.burst_factor;
  }
  return options.target_qps / options.burst_factor;
}

}  // namespace

StatusOr<ReplayReport> RunOpenLoopReplay(ForecastService* service,
                                         const math::Matrix& preds,
                                         const math::Vec& actuals,
                                         const ReplayOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("replay requires a service");
  }
  if (preds.rows() == 0 || preds.cols() == 0) {
    return Status::InvalidArgument("replay requires a non-empty stream");
  }
  if (actuals.size() != preds.rows()) {
    return Status::InvalidArgument("actuals/preds row mismatch");
  }
  if (options.tenants == 0 || options.requests == 0) {
    return Status::InvalidArgument("replay requires tenants and requests");
  }
  if (options.target_qps <= 0.0) {
    return Status::InvalidArgument("target_qps must be positive");
  }
  if (options.schedule == ReplayOptions::Schedule::kBursty &&
      (options.burst_factor < 1.0 || options.burst_seconds <= 0.0 ||
       options.idle_seconds <= 0.0)) {
    return Status::InvalidArgument("invalid bursty schedule parameters");
  }

  Rng rng(options.seed);

  // Per-tenant identity: a name, an affine unit map, and a stream cursor.
  std::vector<std::string> names;
  std::vector<ts::StandardScaler> scalers;
  std::vector<size_t> next_step(options.tenants, 0);
  names.reserve(options.tenants);
  scalers.reserve(options.tenants);
  for (size_t t = 0; t < options.tenants; ++t) {
    names.push_back("tenant-" + std::to_string(t));
    scalers.push_back(ts::StandardScaler::FromMoments(
        rng.Uniform(-10.0, 10.0), rng.Uniform(0.5, 2.0)));
    if (options.create_sessions) {
      EADRL_RETURN_IF_ERROR(
          service->CreateSession(names[t], options.policy_id, &scalers[t]));
    }
  }

  const ServeStats before = service->Stats();

  std::atomic<uint64_t> observe_shed{0};

  const auto start = std::chrono::steady_clock::now();
  double arrival = 0.0;  // virtual seconds since start.
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t predict_shed = 0;

  for (size_t i = 0; i < options.requests; ++i) {
    const double rate = options.schedule == ReplayOptions::Schedule::kPoisson
                            ? options.target_qps
                            : BurstyRate(arrival, options);
    arrival += rng.Exponential(rate);
    const auto release =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(arrival));
    // Open loop: sleep until the scheduled release, never past it — when the
    // service falls behind, requests fire back-to-back and queueing shows up
    // as latency/shedding instead of being absorbed by the driver.
    if (release > std::chrono::steady_clock::now()) {
      std::this_thread::sleep_until(release);
    }

    const size_t tenant = rng.Index(options.tenants);
    const size_t row = next_step[tenant] % preds.rows();
    ++next_step[tenant];
    math::Vec member_preds = scalers[tenant].Inverse(preds.Row(row));
    const double actual_raw = scalers[tenant].Inverse(actuals[row]);

    ++submitted;
    const std::string& name = names[tenant];
    const bool observe = options.observe;
    std::atomic<uint64_t>* observe_shed_ptr = &observe_shed;
    Status admitted = service->PredictAsync(
        name, std::move(member_preds),
        [service, name, actual_raw, observe,
         observe_shed_ptr](StatusOr<double> result) {
          if (!result.ok() || !observe) return;
          // Feed the realized value back; runs on the drainer thread, so
          // this is the re-entrant enqueue path BatchingQueue covers.
          Status st = service->ObserveActualAsync(name, actual_raw);
          if (st.code() == StatusCode::kResourceExhausted) {
            observe_shed_ptr->fetch_add(1, std::memory_order_relaxed);
          }
        });
    if (admitted.ok()) {
      ++accepted;
    } else if (admitted.code() == StatusCode::kResourceExhausted) {
      ++predict_shed;
    } else {
      return admitted;  // NotFound etc. — a driver bug, not load shedding.
    }
  }

  // Wait for every admitted request (and the observes their callbacks
  // spawned) to complete before measuring.
  if (service->config().manual_drain) {
    while (service->DrainOnce()) {
    }
  }
  service->Flush();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const ServeStats after = service->Stats();
  const obs::HistogramSnapshot lat = service->PredictLatencySnapshot();

  ReplayReport report;
  report.submitted = submitted;
  report.accepted = accepted;
  report.predict_shed = predict_shed;
  report.observe_shed = observe_shed.load(std::memory_order_relaxed);
  report.wall_seconds = wall;
  report.offered_qps =
      arrival > 0.0 ? static_cast<double>(submitted) / arrival : 0.0;
  report.achieved_qps =
      wall > 0.0 ? static_cast<double>(accepted) / wall : 0.0;
  // The histogram accumulates across replays in one process; quantiles are
  // reported over the cumulative distribution (exact for a fresh service),
  // max/percentiles still bound this replay from above.
  report.predict_p50_ms = lat.Quantile(0.5) * 1e3;
  report.predict_p99_ms = lat.Quantile(0.99) * 1e3;
  report.predict_max_ms = lat.max * 1e3;
  report.waves = after.batches - before.batches;
  report.act_batches = after.act_batches - before.act_batches;
  report.act_batch_rows = after.act_batch_rows - before.act_batch_rows;
  report.drift_events = after.drift_events - before.drift_events;
  report.sessions = after.sessions;
  return report;
}

}  // namespace eadrl::serve
