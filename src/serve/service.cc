#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <unordered_set>
#include <utility>

#include "chk/chk.h"
#include "common/check.h"
#include "core/combiner.h"
#include "math/matrix.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace eadrl::serve {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ForecastService::ForecastService(const ServeConfig& config)
    : config_(config),
      effective_max_inflight_(config.max_inflight > 0
                                  ? config.max_inflight
                                  : 2 * std::max<size_t>(config.max_queue, 1)),
      table_(SessionTable::Options{config.shards, config.max_sessions,
                                   config.session_ttl_seconds}),
      predict_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_serve_requests_total", {{"kind", "predict"}})),
      observe_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_serve_requests_total", {{"kind", "observe"}})),
      shed_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_serve_shed_total")),
      batch_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_serve_waves_total")),
      batch_rows_counter_(obs::MetricRegistry::Default().GetCounter(
          "eadrl_serve_act_batch_rows_total")),
      sessions_gauge_(
          obs::MetricRegistry::Default().GetGauge("eadrl_serve_sessions")),
      queue_depth_gauge_(
          obs::MetricRegistry::Default().GetGauge("eadrl_serve_queue_depth")),
      predict_latency_hist_(obs::MetricRegistry::Default().GetHistogram(
          "eadrl_serve_request_seconds", {}, {{"kind", "predict"}})),
      observe_latency_hist_(obs::MetricRegistry::Default().GetHistogram(
          "eadrl_serve_request_seconds", {}, {{"kind", "observe"}})),
      occupancy_hist_(obs::MetricRegistry::Default().GetHistogram(
          "eadrl_serve_batch_occupancy",
          obs::Histogram::LinearBounds(1.0, 1.0, 64))),
      predict_window_(config.window),
      shed_window_(config.window),
      predict_latency_window_(config.window, {}),
      windowed_(config.windowed_stats),
      queue_(
          BatchingQueue::Options{config.max_queue, config.linger_us,
                                 config.manual_drain, config.pool,
                                 config.window,
                                 /*track_queue_delay=*/config.windowed_stats},
          [this](std::vector<Request> batch) { ProcessBatch(std::move(batch)); }) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.slo.enabled) {
    obs::SloTrackerOptions slo;
    slo.objectives.push_back(
        {"predict_latency", config_.slo.latency_threshold_seconds,
         config_.slo.latency_target});
    slo.objectives.push_back(
        {"availability", 0.0, config_.slo.availability_target});
    slo.burn_threshold = config_.slo.burn_threshold;
    // Both burn windows follow the configured clock so fake-clock tests
    // drive SLO edges deterministically; the long window reuses the
    // configured layout, the short one a quarter of it (at least one tick).
    slo.long_window = config_.window;
    slo.short_window = config_.window;
    slo.short_window.buckets = std::max<size_t>(config_.window.buckets / 4, 1);
    slo_ = std::make_unique<obs::SloTracker>(slo);
  }
  if (config_.tenant_drilldown > 0) {
    obs::LabeledWindowedFamilyOptions family;
    family.name = "eadrl_serve_tenant_predict_seconds";
    family.label_key = "tenant";
    family.max_labels = config_.tenant_drilldown;
    family.window = config_.window;
    tenant_family_ = std::make_unique<obs::LabeledWindowedFamily>(family);
  }
  if (config_.policy_drilldown > 0) {
    obs::LabeledWindowedFamilyOptions family;
    family.name = "eadrl_serve_policy_predict_seconds";
    family.label_key = "policy";
    family.max_labels = config_.policy_drilldown;
    family.window = config_.window;
    policy_family_ = std::make_unique<obs::LabeledWindowedFamily>(family);
  }
  obs_live_ = windowed_ || slo_ != nullptr || tenant_family_ != nullptr ||
              policy_family_ != nullptr;
}

ForecastService::~ForecastService() { Flush(); }

size_t ForecastService::RegisterPolicy(
    std::unique_ptr<core::EadrlCombiner> trained) {
  EADRL_CHECK(trained != nullptr);
  auto policy = std::make_shared<Policy>();
  policy->fresh_state = trained->ExportOnlineState();
  policy->combiner = std::move(trained);
  std::lock_guard<chk::OrderedMutex> lock(policies_mu_);
  policy->id = policies_.size();  // pre-publication, like fresh_state.
  policy->label = std::to_string(policy->id);
  policies_.push_back(std::move(policy));
  return policies_.size() - 1;
}

Status ForecastService::CreateSession(const std::string& tenant,
                                      size_t policy_id,
                                      const ts::StandardScaler* scaler) {
  std::shared_ptr<Policy> policy;
  {
    std::lock_guard<chk::OrderedMutex> lock(policies_mu_);
    if (policy_id >= policies_.size()) {
      return Status::OutOfRange("unknown policy id " +
                                std::to_string(policy_id));
    }
    policy = policies_[policy_id];
  }
  const uint64_t generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto session =
      std::make_shared<Session>(tenant, std::move(policy), generation, scaler,
                                config_.drift_delta, config_.drift_lambda);
  EADRL_RETURN_IF_ERROR(table_.Insert(tenant, std::move(session)));
  sessions_created_.fetch_add(1, std::memory_order_relaxed);
  sessions_gauge_->Set(static_cast<double>(table_.size()));
  EADRL_TELEMETRY("serve_session", {"tenant", tenant},
                  {"generation", generation}, {"policy_id", policy_id},
                  {"reset", false});
  return Status::Ok();
}

Status ForecastService::EvictSession(const std::string& tenant) {
  if (!table_.Erase(tenant)) {
    return Status::NotFound("no session for tenant '" + tenant + "'");
  }
  evictions_explicit_.fetch_add(1, std::memory_order_relaxed);
  sessions_gauge_->Set(static_cast<double>(table_.size()));
  return Status::Ok();
}

Status ForecastService::ResetSession(const std::string& tenant) {
  std::shared_ptr<Session> session = table_.Lookup(tenant);
  if (session == nullptr) {
    return Status::NotFound("no session for tenant '" + tenant + "'");
  }
  {
    std::lock_guard<chk::OrderedMutex> lock(session->session_mu);
    session->Reset();
  }
  EADRL_TELEMETRY("serve_session", {"tenant", tenant},
                  {"generation", session->generation}, {"reset", true});
  return Status::Ok();
}

Status ForecastService::Admit(Request request, const std::string& tenant) {
  obs::Span span("serve_admission");
  const char* kind =
      request.kind == Request::Kind::kPredict ? "predict" : "observe";
  span.SetAttr("kind", kind);
  const uint64_t inflight = inflight_.load(std::memory_order_relaxed);
  if (inflight >= effective_max_inflight_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_counter_->Inc();
    if (windowed_) shed_window_.Inc();
    if (slo_ != nullptr) slo_->Record(kSloAvailabilityObjective, false);
    span.SetAttr("shed", true);
    EADRL_TELEMETRY("serve_shed", {"tenant", tenant}, {"kind", kind},
                    {"reason", "inflight"}, {"inflight", inflight});
    return Status::ResourceExhausted(
        "serving overloaded: " + std::to_string(inflight) +
        " requests in flight (limit " +
        std::to_string(effective_max_inflight_) + ")");
  }
  request.session = table_.Lookup(tenant);
  if (request.session == nullptr) {
    return Status::NotFound("no session for tenant '" + tenant + "'");
  }
  request.enqueue_time = std::chrono::steady_clock::now();
  // The in-flight slot is taken BEFORE the enqueue: on a serial pool the
  // enqueue drains (and completes the request, releasing the slot) inline,
  // so counting afterwards would release before acquire and underflow.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.TryEnqueue(std::move(request))) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_counter_->Inc();
    if (windowed_) shed_window_.Inc();
    if (slo_ != nullptr) slo_->Record(kSloAvailabilityObjective, false);
    span.SetAttr("shed", true);
    EADRL_TELEMETRY("serve_shed", {"tenant", tenant}, {"kind", kind},
                    {"reason", "queue_full"},
                    {"queue_depth", queue_.depth()});
    return Status::ResourceExhausted(
        "serving queue full (" + std::to_string(config_.max_queue) +
        " requests)");
  }
  if (slo_ != nullptr) slo_->Record(kSloAvailabilityObjective, true);
  return Status::Ok();
}

Status ForecastService::PredictAsync(
    const std::string& tenant, math::Vec preds,
    std::function<void(StatusOr<double>)> done) {
  EADRL_CHECK(done != nullptr);
  Request request;
  request.kind = Request::Kind::kPredict;
  request.preds = std::move(preds);
  request.on_predict = std::move(done);
  return Admit(std::move(request), tenant);
}

Status ForecastService::ObserveActualAsync(const std::string& tenant,
                                           double actual,
                                           std::function<void(Status)> done) {
  Request request;
  request.kind = Request::Kind::kObserve;
  request.actual = actual;
  request.on_observe = std::move(done);
  return Admit(std::move(request), tenant);
}

StatusOr<double> ForecastService::Predict(const std::string& tenant,
                                          const math::Vec& preds) {
  std::promise<StatusOr<double>> promise;
  std::future<StatusOr<double>> future = promise.get_future();
  Status admitted = PredictAsync(tenant, preds, [&promise](StatusOr<double> r) {
    promise.set_value(std::move(r));
  });
  if (!admitted.ok()) return admitted;
  if (config_.manual_drain) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      EADRL_CHECK(DrainOnce());
    }
  }
  return future.get();
}

Status ForecastService::ObserveActual(const std::string& tenant,
                                      double actual) {
  std::promise<Status> promise;
  std::future<Status> future = promise.get_future();
  Status admitted = ObserveActualAsync(
      tenant, actual, [&promise](Status s) { promise.set_value(std::move(s)); });
  if (!admitted.ok()) return admitted;
  if (config_.manual_drain) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      EADRL_CHECK(DrainOnce());
    }
  }
  return future.get();
}

StatusOr<SessionInfo> ForecastService::GetSessionInfo(
    const std::string& tenant) {
  std::shared_ptr<Session> session = table_.Lookup(tenant);
  if (session == nullptr) {
    return Status::NotFound("no session for tenant '" + tenant + "'");
  }
  std::lock_guard<chk::OrderedMutex> lock(session->session_mu);
  SessionInfo info;
  info.generation = session->generation;
  info.predicts = session->predicts;
  info.observes = session->observes;
  info.drift_events = session->drift_events;
  info.window_size = session->state.window.size();
  info.last_prediction = session->last_prediction;
  info.has_last_prediction = session->has_last_prediction;
  info.drift_observations = session->drift.num_observations();
  info.drift_cumulative = session->drift.cumulative();
  return info;
}

size_t ForecastService::EvictIdleSessions() {
  size_t evicted = table_.EvictIdle();
  sessions_gauge_->Set(static_cast<double>(table_.size()));
  return evicted;
}

ServeStats ForecastService::Stats() const {
  ServeStats stats;
  stats.sessions = table_.size();
  stats.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  stats.evictions_lru = table_.lru_evictions();
  stats.evictions_ttl = table_.ttl_evictions();
  stats.evictions_explicit =
      evictions_explicit_.load(std::memory_order_relaxed);
  stats.predicts = predicts_done_.load(std::memory_order_relaxed);
  stats.observes = observes_done_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.act_batches = act_batches_.load(std::memory_order_relaxed);
  stats.act_batch_rows = act_batch_rows_.load(std::memory_order_relaxed);
  stats.drift_events = drift_events_.load(std::memory_order_relaxed);
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.depth();

  const obs::WindowedCounterSnapshot predicts = predict_window_.Snapshot();
  const obs::WindowedCounterSnapshot sheds = shed_window_.Snapshot();
  const obs::WindowedHistogramSnapshot latency =
      predict_latency_window_.Snapshot();
  stats.window_seconds = predicts.window_seconds;
  stats.window_predict_qps = predicts.Rate();
  stats.window_shed_rate = sheds.Rate();
  stats.window_predict_p50_s = latency.values.Quantile(0.5);
  stats.window_predict_p99_s = latency.values.Quantile(0.99);

  const obs::WindowedHistogramSnapshot delay = queue_.QueueDelaySnapshot();
  stats.queue_delay_count = delay.values.count;
  stats.queue_delay_mean_s = delay.values.Mean();
  stats.queue_delay_p50_s = delay.values.Quantile(0.5);
  stats.queue_delay_p99_s = delay.values.Quantile(0.99);
  stats.queue_delay_max_s = delay.values.max;
  return stats;
}

obs::HistogramSnapshot ForecastService::PredictLatencySnapshot() const {
  return predict_latency_hist_->Snapshot();
}

obs::WindowedHistogramSnapshot ForecastService::PredictLatencyWindowSnapshot()
    const {
  return predict_latency_window_.Snapshot();
}

obs::WindowedHistogramSnapshot ForecastService::QueueDelaySnapshot() const {
  return queue_.QueueDelaySnapshot();
}

void ForecastService::Flush() { queue_.Flush(); }

bool ForecastService::DrainOnce() { return queue_.DrainOnce(); }

core::EadrlCombiner* ForecastService::policy_combiner(size_t policy_id) {
  std::lock_guard<chk::OrderedMutex> lock(policies_mu_);
  EADRL_CHECK_LT(policy_id, policies_.size());
  return policies_[policy_id]->combiner.get();
}

void ForecastService::ProcessBatch(std::vector<Request> batch) {
  // Waves: each takes at most one request per session (per-session FIFO
  // order is the queue order restricted to that session) and at most
  // max_batch requests total.
  std::vector<char> done(batch.size(), 0);
  size_t processed = 0;
  std::vector<size_t> wave;
  std::unordered_set<const Session*> wave_sessions;
  while (processed < batch.size()) {
    wave.clear();
    wave_sessions.clear();
    for (size_t i = 0; i < batch.size() && wave.size() < config_.max_batch;
         ++i) {
      if (done[i] != 0) continue;
      const Session* session = batch[i].session.get();
      if (wave_sessions.count(session) != 0) continue;
      wave_sessions.insert(session);
      wave.push_back(i);
    }
    ProcessWave(&batch, wave);
    for (size_t i : wave) done[i] = 1;
    processed += wave.size();
  }
  queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
  // Per-batch evaluation gives breach/recover edges drain-rate resolution
  // without a dedicated evaluator thread (the exporter also evaluates on
  // its own tick, covering idle gaps).
  if (slo_ != nullptr) slo_->Evaluate();
}

void ForecastService::ProcessWave(std::vector<Request>* batch,
                                  const std::vector<size_t>& wave) {
  obs::Span span("serve_batch");
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_counter_->Inc();

  // A predict awaiting its policy group's batched actor pass. The session
  // lock is held from state capture through apply: every session appears at
  // most once per wave, so these locks never deadlock against each other.
  struct Pending {
    size_t index = 0;
    std::unique_lock<chk::OrderedMutex> lock;
    math::Vec state;
    math::Vec reduced;
  };
  std::vector<Pending> pending;
  pending.reserve(wave.size());
  size_t observes_in_wave = 0;

  // Session locks are acquired in one canonical order (session address),
  // never the wave's arrival order: predict locks stay held from capture
  // through apply, so arrival order would rank any given session pair
  // differently from wave to wave — a lock-order inversion. Pending rows
  // are sorted back to wave order below, so batching, apply, and callback
  // order (and thus parity) are untouched.
  std::vector<size_t> lock_order(wave.begin(), wave.end());
  std::sort(lock_order.begin(), lock_order.end(), [batch](size_t a, size_t b) {
    return std::less<const Session*>()((*batch)[a].session.get(),
                                       (*batch)[b].session.get());
  });

  for (size_t i : lock_order) {
    Request& request = (*batch)[i];
    Session& session = *request.session;
    if (request.kind == Request::Kind::kObserve) {
      obs::Span rspan("serve_request");
      bool drifted = false;
      {
        std::lock_guard<chk::OrderedMutex> lock(session.session_mu);
        const double actual = session.has_scaler
                                  ? session.scaler.Transform(request.actual)
                                  : request.actual;
        ++session.observes;
        if (session.has_last_prediction) {
          // Scale-free one-step absolute error feeds the per-tenant
          // Page-Hinkley detector (same signal family as the combiner's
          // online drift mode).
          const double sd =
              session.state.state_std > 0.0 ? session.state.state_std : 1.0;
          const double err =
              std::fabs(session.last_prediction - actual) / sd;
          if (session.drift.Update(err)) {
            ++session.drift_events;
            drifted = true;
          }
        }
      }
      if (drifted) {
        drift_events_.fetch_add(1, std::memory_order_relaxed);
        EADRL_TELEMETRY("drift", {"source", "serve"},
                        {"generation", session.generation});
      }
      ++observes_in_wave;
      observes_done_.fetch_add(1, std::memory_order_relaxed);
      observe_counter_->Inc();
      const double latency = SecondsSince(request.enqueue_time);
      observe_latency_hist_->Observe(latency);
      if (rspan.armed()) {
        rspan.SetAttr("kind", "observe");
        rspan.SetAttr("queue_wait_seconds", latency);
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      if (request.on_observe) request.on_observe(Status::Ok());
    } else {
      Pending p;
      p.index = i;
      p.lock = std::unique_lock<chk::OrderedMutex>(session.session_mu);
      const math::Vec scaled = session.has_scaler
                                   ? session.scaler.Transform(request.preds)
                                   : request.preds;
      EADRL_CHK_FINITE(scaled, "serve predict member predictions");
      p.reduced = session.policy->combiner->ReduceToActive(scaled);
      p.state = core::OnlineStateVec(session.state.window,
                                     session.state.state_std);
      pending.push_back(std::move(p));
    }
  }

  // Restore wave (arrival) order for grouping and dispatch: ActBatch row
  // assembly and callbacks see exactly what they would under arrival-order
  // locking, keeping batched-vs-serial parity byte-for-byte.
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.index < b.index; });

  // Group the wave's predicts by policy (first-appearance order) and run one
  // batched actor pass per group — the cross-tenant batching step.
  std::vector<char> dispatched(pending.size(), 0);
  for (size_t lead = 0; lead < pending.size(); ++lead) {
    if (dispatched[lead] != 0) continue;
    Policy* policy = (*batch)[pending[lead].index].session->policy.get();
    std::vector<size_t> group;
    for (size_t j = lead; j < pending.size(); ++j) {
      if (dispatched[j] == 0 &&
          (*batch)[pending[j].index].session->policy.get() == policy) {
        group.push_back(j);
      }
    }
    math::Matrix states(group.size(), pending[group[0]].state.size());
    for (size_t g = 0; g < group.size(); ++g) {
      states.SetRow(g, pending[group[g]].state);
    }
    math::Matrix actions;
    {
      // The agent's inference workspace is shared across every session of
      // this policy; the policy mutex serializes batched passes.
      std::lock_guard<chk::OrderedMutex> lock(policy->agent_mu);
      actions = policy->combiner->agent()->ActBatch(states);
    }
    act_batches_.fetch_add(1, std::memory_order_relaxed);
    act_batch_rows_.fetch_add(group.size(), std::memory_order_relaxed);
    batch_rows_counter_->Inc(static_cast<double>(group.size()));
    occupancy_hist_->Observe(static_cast<double>(group.size()));

    // One wall-clock and one window-clock reading cover the whole group:
    // every row completes "now", so per-row re-reads would only add ~8
    // clock_gettime calls per request without changing any observation. The
    // window clock is read only when a live-obs sink will consume it.
    const auto completion = std::chrono::steady_clock::now();
    const uint64_t obs_now = obs_live_ ? predict_window_.NowNs() : 0;

    for (size_t g = 0; g < group.size(); ++g) {
      Pending& p = pending[group[g]];
      Request& request = (*batch)[p.index];
      Session& session = *request.session;
      obs::Span rspan("serve_request");
      const math::Vec action = actions.Row(g);
      EADRL_CHK_SIMPLEX(action, 1e-6, "serve batched action");
      const double pred = core::Combine(action, p.reduced);
      EADRL_CHK_FINITE_VALUE(pred, "serve batched prediction");
      // Algorithm 1's window roll, on the session's extracted state.
      session.state.window.push_back(pred);
      session.state.window.pop_front();
      session.last_prediction = pred;
      session.has_last_prediction = true;
      ++session.predicts;
      const double out =
          session.has_scaler ? session.scaler.Inverse(pred) : pred;
      p.lock.unlock();
      predicts_done_.fetch_add(1, std::memory_order_relaxed);
      predict_counter_->Inc();
      const double latency =
          std::chrono::duration<double>(completion - request.enqueue_time)
              .count();
      predict_latency_hist_->Observe(latency);
      // Windowed stats, SLO and drill-down are observed with the session
      // lock released: the metric locks (obs_family/obs_window) are leaves
      // and never nest under serve locks on this path.
      if (windowed_) {
        predict_window_.IncAt(obs_now);
        predict_latency_window_.ObserveAt(obs_now, latency);
      }
      if (slo_ != nullptr) {
        slo_->RecordLatencyAt(obs_now, kSloLatencyObjective, latency);
      }
      if (tenant_family_ != nullptr) {
        tenant_family_->ObserveAt(obs_now, session.tenant, latency);
      }
      if (policy_family_ != nullptr) {
        policy_family_->ObserveAt(obs_now, session.policy->label, latency);
      }
      if (rspan.armed()) {
        rspan.SetAttr("kind", "predict");
        rspan.SetAttr("queue_wait_seconds", latency);
        rspan.SetAttr("batch_rows", group.size());
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      request.on_predict(out);
    }
    for (size_t j : group) dispatched[j] = 1;
  }

  if (span.armed()) {
    span.SetAttr("wave_size", wave.size());
    span.SetAttr("observes", observes_in_wave);
  }
  EADRL_TELEMETRY("serve_batch", {"wave_size", wave.size()},
                  {"observes", observes_in_wave});
}

}  // namespace eadrl::serve
