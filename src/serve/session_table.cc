#include "serve/session_table.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "obs/telemetry.h"

namespace eadrl::serve {

Session::Session(std::string tenant_in, std::shared_ptr<Policy> policy_in,
                 uint64_t generation_in, const ts::StandardScaler* scaler_in,
                 double drift_delta_in, double drift_lambda_in)
    : tenant(std::move(tenant_in)),
      policy(std::move(policy_in)),
      generation(generation_in),
      has_scaler(scaler_in != nullptr),
      scaler(scaler_in != nullptr ? *scaler_in : ts::StandardScaler()),
      drift_delta(drift_delta_in),
      drift_lambda(drift_lambda_in),
      drift(drift_delta_in, drift_lambda_in) {
  EADRL_CHECK(policy != nullptr);
  Reset();
}

void Session::Reset() {
  state = policy->fresh_state;
  drift.Reset();
  last_prediction = 0.0;
  has_last_prediction = false;
  predicts = 0;
  observes = 0;
  drift_events = 0;
}

SessionTable::SessionTable(const Options& options) : opt_(options) {
  if (opt_.shards == 0) opt_.shards = 1;
  per_shard_cap_ = 0;
  if (opt_.max_sessions > 0) {
    per_shard_cap_ = opt_.max_sessions / opt_.shards;
    if (per_shard_cap_ == 0) per_shard_cap_ = 1;
  }
  shards_.reserve(opt_.shards);
  for (size_t i = 0; i < opt_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionTable::Shard& SessionTable::ShardFor(const std::string& tenant) {
  return *shards_[std::hash<std::string>{}(tenant) % shards_.size()];
}

void SessionTable::EmitEvictions(const std::vector<Eviction>& evicted) {
  for (const Eviction& e : evicted) {
    EADRL_TELEMETRY("serve_evict", {"tenant", e.tenant}, {"reason", e.reason},
                    {"generation", e.generation});
  }
}

void SessionTable::EraseLocked(
    Shard* shard, std::unordered_map<std::string, Entry>::iterator it,
    const char* reason, std::vector<Eviction>* evicted) {
  // Telemetry is NOT emitted here: the JSON-lines sink takes its own mutex
  // and writes to a file, and doing that under a stripe lock would both
  // stall every operation hashing to this stripe behind I/O and create a
  // stripe -> sink lock edge no other path needs. The record is queued and
  // the caller emits after unlocking.
  evicted->push_back(
      Eviction{it->first, it->second.session->generation, reason});
  shard->lru.erase(it->second.lru_it);
  shard->map.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
}

Status SessionTable::Insert(const std::string& tenant,
                            std::shared_ptr<Session> session) {
  EADRL_CHECK(session != nullptr);
  Shard& shard = ShardFor(tenant);
  std::vector<Eviction> evicted;
  {
    std::lock_guard<chk::OrderedMutex> lock(shard.stripe_mu);
    if (shard.map.count(tenant) != 0) {
      return Status::FailedPrecondition("session already exists for tenant '" +
                                        tenant + "'");
    }
    if (per_shard_cap_ > 0 && shard.map.size() >= per_shard_cap_) {
      // Stripe at capacity: evict its least-recently-used session.
      auto victim = shard.map.find(shard.lru.back());
      EADRL_CHECK(victim != shard.map.end());
      EraseLocked(&shard, victim, "lru", &evicted);
      lru_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(tenant);
    Entry entry;
    entry.session = std::move(session);
    entry.lru_it = shard.lru.begin();
    entry.last_activity = std::chrono::steady_clock::now();
    shard.map.emplace(tenant, std::move(entry));
    size_.fetch_add(1, std::memory_order_relaxed);
  }
  EmitEvictions(evicted);
  return Status::Ok();
}

std::shared_ptr<Session> SessionTable::Lookup(const std::string& tenant) {
  Shard& shard = ShardFor(tenant);
  std::lock_guard<chk::OrderedMutex> lock(shard.stripe_mu);
  auto it = shard.map.find(tenant);
  if (it == shard.map.end()) return nullptr;
  // Mark most-recently-used: splice the key to the recency-list front.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  it->second.lru_it = shard.lru.begin();
  it->second.last_activity = std::chrono::steady_clock::now();
  return it->second.session;
}

bool SessionTable::Erase(const std::string& tenant) {
  Shard& shard = ShardFor(tenant);
  std::vector<Eviction> evicted;
  {
    std::lock_guard<chk::OrderedMutex> lock(shard.stripe_mu);
    auto it = shard.map.find(tenant);
    if (it == shard.map.end()) return false;
    EraseLocked(&shard, it, "explicit", &evicted);
  }
  EmitEvictions(evicted);
  return true;
}

size_t SessionTable::EvictIdle() {
  if (opt_.ttl_seconds <= 0.0) return 0;
  const auto now = std::chrono::steady_clock::now();
  const auto ttl = std::chrono::duration<double>(opt_.ttl_seconds);
  std::vector<Eviction> evicted;
  for (auto& shard : shards_) {
    std::lock_guard<chk::OrderedMutex> lock(shard->stripe_mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      auto next = std::next(it);
      if (now - it->second.last_activity > ttl) {
        EraseLocked(shard.get(), it, "ttl", &evicted);
        ttl_evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      it = next;
    }
  }
  EmitEvictions(evicted);
  return evicted.size();
}

}  // namespace eadrl::serve
