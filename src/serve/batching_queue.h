#ifndef EADRL_SERVE_BATCHING_QUEUE_H_
#define EADRL_SERVE_BATCHING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "common/status.h"
#include "math/vec.h"
#include "obs/window.h"
#include "par/thread_pool.h"
#include "serve/session_table.h"

namespace eadrl::serve {

/// One queued serving request. Completion callbacks run on the drainer
/// thread and must not throw (the queue drains on par::ThreadPool tasks,
/// which lose exceptions); they may re-enter the service's async entry
/// points (the driver's predict-then-observe chain does).
struct Request {
  enum class Kind { kPredict, kObserve };

  Kind kind = Kind::kPredict;
  std::shared_ptr<Session> session;
  math::Vec preds;     ///< predict: member forecasts, tenant units.
  double actual = 0.0; ///< observe: realized value, tenant units.
  std::chrono::steady_clock::time_point enqueue_time{};
  std::function<void(StatusOr<double>)> on_predict;  ///< tenant-unit forecast.
  std::function<void(Status)> on_observe;            ///< may be empty.
};

/// Bounded MPSC coalescing queue: concurrent producers TryEnqueue requests;
/// at most one drainer at a time (scheduled onto the pool) moves the entire
/// backlog out and hands it to the drain function as one batch. The
/// single-drainer discipline is what preserves per-session FIFO order and
/// makes the batched pipeline deterministic on a serial pool (Submit runs
/// the drain inline before TryEnqueue returns).
///
/// `max_queue` is the admission bound: TryEnqueue refuses (returns false)
/// rather than growing without limit — the caller turns that into a typed
/// backpressure Status. `linger_us` optionally holds the drainer back before
/// each batch so concurrent arrivals coalesce into larger waves (higher
/// batch occupancy at the cost of added latency). `manual_drain` disables
/// scheduling entirely; tests pump the queue deterministically via
/// DrainOnce.
class BatchingQueue {
 public:
  struct Options {
    size_t max_queue = 1024;
    size_t linger_us = 0;
    bool manual_drain = false;
    par::ThreadPool* pool = nullptr;  ///< nullptr = par::DefaultPool().
    /// Layout/clock for the queue-delay window (QueueDelaySnapshot).
    obs::WindowOptions window;
    /// Opt-in: record each drained request's backlog residence time into the
    /// queue-delay window (two clock reads plus one windowed observation per
    /// request). Off by default so a raw queue costs nothing extra;
    /// ForecastService forwards `ServeConfig::windowed_stats` here, and its
    /// Stats surface the estimate when it is on.
    bool track_queue_delay = false;
  };

  using DrainFn = std::function<void(std::vector<Request>)>;

  /// `drain` receives each batch on the drainer thread; it must not throw.
  BatchingQueue(const Options& options, DrainFn drain);

  /// Drains any remaining backlog (see Flush).
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues a request, scheduling a drainer if none is active. False when
  /// the queue is at max_queue (the request is NOT consumed; the caller owns
  /// the rejection path).
  bool TryEnqueue(Request request) EADRL_EXCLUDES(queue_mu_);

  /// Manually drains the current backlog as one batch on the calling thread
  /// (the drain function runs with no queue lock held). Returns false when
  /// the queue was empty, or when a scheduled drainer is active — the
  /// backlog is that drainer's to take, and running drain_ concurrently
  /// with it would break the single-drainer FIFO discipline.
  bool DrainOnce() EADRL_EXCLUDES(queue_mu_);

  /// Blocks until the queue is empty and no drainer is active. In
  /// manual_drain mode, pumps DrainOnce instead of blocking. Callers must
  /// stop producing (except drain-callback re-entrancy, which is covered:
  /// requests enqueued by completion callbacks are drained before the
  /// drainer deactivates) for this to terminate.
  void Flush() EADRL_EXCLUDES(queue_mu_);

  size_t depth() const EADRL_EXCLUDES(queue_mu_);

  /// Windowed admission-to-drain delay, seconds: how long requests sat in
  /// the backlog before a drainer took them. The SLO-aware-admission signal
  /// (ROADMAP): a rising windowed queue delay is the leading indicator that
  /// admitted requests will miss their latency objective.
  obs::WindowedHistogramSnapshot QueueDelaySnapshot() const;

 private:
  /// Observes each taken request's backlog residence time. Called with no
  /// lock held, on the batch just moved out of the queue.
  void ObserveQueueDelay(const std::vector<Request>& batch);
  /// Body of the scheduled drainer task: repeatedly lingers, snapshots the
  /// backlog, and feeds it to drain_ (without the lock) until the queue is
  /// observed empty, then deactivates under the lock (so a racing
  /// TryEnqueue either lands in a batch this drainer will take or schedules
  /// a fresh drainer).
  void DrainLoop() EADRL_EXCLUDES(queue_mu_);

  Options opt_;
  DrainFn drain_;
  par::ThreadPool* pool_;

  mutable chk::OrderedMutex queue_mu_{EADRL_LOCK_RANK(serve_queue),
                                      "serve::BatchingQueue::queue_mu_"};
  /// _any variant: std::condition_variable only waits on std::mutex.
  std::condition_variable_any idle_cv_;
  std::deque<Request> queue_ EADRL_GUARDED_BY(queue_mu_);
  bool drain_active_ EADRL_GUARDED_BY(queue_mu_) = false;
  /// Internally synchronized (obs_window rank, below serve_queue; observed
  /// with queue_mu_ released anyway).
  obs::WindowedHistogram queue_delay_ EADRL_UNGUARDED;
};

}  // namespace eadrl::serve

#endif  // EADRL_SERVE_BATCHING_QUEUE_H_
