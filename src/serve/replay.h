#ifndef EADRL_SERVE_REPLAY_H_
#define EADRL_SERVE_REPLAY_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "serve/service.h"

namespace eadrl::serve {

/// Synthetic open-loop traffic replayed against a ForecastService: requests
/// are released on a fixed arrival schedule regardless of completion (the
/// load-testing discipline that surfaces queueing delay instead of hiding it
/// behind closed-loop self-throttling). Each of `tenants` sessions gets its
/// own affine unit map (a per-tenant StandardScaler) and streams the shared
/// validation prediction matrix mapped into its units; arrivals pick a
/// uniform-random tenant per request.
struct ReplayOptions {
  enum class Schedule {
    kPoisson,  ///< exponential inter-arrivals at target_qps.
    kBursty,   ///< alternating burst/idle windows around target_qps.
  };

  size_t tenants = 1000;
  size_t requests = 20000;
  double target_qps = 20000.0;
  Schedule schedule = Schedule::kPoisson;
  /// Bursty: arrival rate is target_qps * burst_factor inside a burst window
  /// and target_qps / burst_factor between bursts.
  double burst_factor = 4.0;
  double burst_seconds = 0.05;
  double idle_seconds = 0.05;
  uint64_t seed = 42;
  size_t policy_id = 0;
  /// Feed each successful prediction's realized value back via
  /// ObserveActual (exercises the drift path and doubles the offered load).
  bool observe = true;
  /// Create sessions tenant-0..tenant-N-1 before replaying (off when the
  /// caller pre-created them).
  bool create_sessions = true;
};

/// What one replay did and measured. Latencies come from the service's
/// end-to-end predict histogram; batching/shedding counters are deltas of
/// ForecastService::Stats across the replay.
struct ReplayReport {
  uint64_t submitted = 0;      ///< predict admissions attempted.
  uint64_t accepted = 0;       ///< predicts admitted.
  uint64_t predict_shed = 0;   ///< predicts refused with ResourceExhausted.
  uint64_t observe_shed = 0;   ///< observes refused with ResourceExhausted.
  double wall_seconds = 0.0;
  double offered_qps = 0.0;    ///< submitted / scheduled arrival horizon.
  double achieved_qps = 0.0;   ///< accepted / wall_seconds.
  double predict_p50_ms = 0.0;
  double predict_p99_ms = 0.0;
  double predict_max_ms = 0.0;
  uint64_t waves = 0;
  uint64_t act_batches = 0;
  uint64_t act_batch_rows = 0;
  uint64_t drift_events = 0;
  uint64_t sessions = 0;       ///< resident after the replay.

  /// Mean rows per batched actor pass during the replay (> 1 means
  /// cross-tenant batching actually happened).
  double MeanBatchOccupancy() const {
    return act_batches == 0 ? 0.0
                            : static_cast<double>(act_batch_rows) /
                                  static_cast<double>(act_batches);
  }
};

/// Replays `options.requests` predict (plus optional observe) requests of
/// the validation stream `preds`/`actuals` (policy units; rows cycle) against
/// `service`. Blocks until every admitted request completed. InvalidArgument
/// on inconsistent inputs; session-creation failures propagate.
StatusOr<ReplayReport> RunOpenLoopReplay(ForecastService* service,
                                         const math::Matrix& preds,
                                         const math::Vec& actuals,
                                         const ReplayOptions& options);

}  // namespace eadrl::serve

#endif  // EADRL_SERVE_REPLAY_H_
