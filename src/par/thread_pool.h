#ifndef EADRL_PAR_THREAD_POOL_H_
#define EADRL_PAR_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chk/lockdep.h"
#include "chk/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace eadrl::par {

/// Work-stealing thread pool: one deque per worker, owners pop LIFO from the
/// back, thieves steal FIFO from the front (the sharded-queue equivalent of a
/// Chase-Lev deque — per-queue mutexes instead of lock-free buffers, which
/// keeps the implementation dependency-free and trivially TSan-clean while
/// preserving the locality properties of the classic design).
///
/// Concurrency model:
///  * `ThreadPool(n)` with n >= 2 spawns n workers; `ThreadPool(1)` (or 0)
///    spawns none and `parallel()` is false — every Submit runs inline on the
///    caller, which is the deterministic serial path.
///  * Tasks may submit further tasks (nested parallelism). Blocking waiters
///    should call `TryRunOneTask` in their wait loop (TaskGroup::Wait does)
///    so that a worker waiting on subtasks keeps executing queued work
///    instead of deadlocking the pool.
///  * Destruction is graceful: no new work is accepted, every already-queued
///    task still runs, then workers are joined. Submitting from outside the
///    pool while the destructor runs is undefined.
///  * Exceptions: tasks submitted directly via `Submit` must not throw — a
///    throwing task is caught and logged, the exception is lost. Use
///    TaskGroup / ParallelFor (parallel.h) to propagate exceptions to the
///    waiting caller.
///
/// Observability (default MetricRegistry): eadrl_par_tasks_submitted_total
/// and eadrl_par_steals_total counters, eadrl_par_queue_depth and
/// eadrl_par_active_workers gauges, eadrl_par_task_seconds latency histogram.
/// With tracing enabled (obs/trace.h) every task additionally runs inside a
/// `par_task` span parented to the submitter's active span, carrying
/// queue_wait_seconds, stolen (steal vs. own-pop), worker id and depth
/// attributes — the scheduler-internal half of the causal trace.
class ThreadPool {
 public:
  /// `threads` is the target concurrency, *including* the submitting thread's
  /// helping capacity; values <= 1 create a serial (no-worker) pool.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for a serial pool).
  size_t num_workers() const { return workers_.size(); }

  /// Effective concurrency: max(1, num_workers()).
  size_t concurrency() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// True when the pool actually runs tasks on worker threads.
  bool parallel() const { return !workers_.empty(); }

  /// Enqueues a task. On a serial pool the task runs inline before Submit
  /// returns. Worker threads push to their own deque; external threads
  /// round-robin across the deques.
  void Submit(std::function<void()> task);

  /// Pops one queued task (own queue first when called from a worker, then
  /// steals) and runs it on the calling thread. Returns false when no task
  /// was available. This is the cooperation hook that makes nested waits
  /// deadlock-free. Helping is depth-restricted: only tasks at least as
  /// deeply nested as the caller's own children are eligible, so a
  /// fine-grained nested wait (a DDPG gradient chunk group) never inlines a
  /// coarse task (a whole restart or dataset run) and inflates its latency
  /// by that task's full runtime. A waiter's own children always qualify,
  /// which is what keeps nested waits deadlock-free.
  bool TryRunOneTask();

  /// Number of queued (not yet started) tasks — approximate, for telemetry.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  /// A queued unit of work. `depth` is 1 + the nesting depth of the task
  /// that submitted it (external submissions get depth 1); see
  /// TryRunOneTask for how helping waiters use it. `telemetry_ctx` is the
  /// submitter's ambient obs::TelemetryScope fields, installed around the
  /// task so events emitted on workers keep their run identity (e.g. which
  /// dataset of a concurrent suite run they belong to). When tracing is
  /// enabled at submission, `trace_parent` snapshots the submitter's span
  /// identity (the tracing analogue of `telemetry_ctx`) and `enqueue_time`
  /// feeds the per-task queue-wait attribute; `stolen` is set by PopTask
  /// when the task ran on a thread other than the deque it was pushed to.
  struct Task {
    std::function<void()> fn;
    size_t depth = 1;
    std::vector<obs::TelemetryField> telemetry_ctx;
    obs::TraceParent trace_parent{};
    std::chrono::steady_clock::time_point enqueue_time{};
    bool traced = false;
    bool stolen = false;
  };

  struct WorkerQueue {
    /// Held only around a single pop/push/scan; nothing is acquired under
    /// it. Two deque locks never nest (PopTask visits queues one at a
    /// time), which same-rank tracking would enforce by address order.
    chk::OrderedMutex deque_mu{EADRL_LOCK_RANK(par_queue),
                               "par::ThreadPool::WorkerQueue::deque_mu"};
    std::deque<Task> tasks EADRL_GUARDED_BY(deque_mu);
  };

  void WorkerLoop(size_t worker_index);
  /// Pops the deepest-first match from `self`'s back, else steals the
  /// oldest match from another queue's front; only tasks with
  /// depth >= `min_depth` are eligible.
  bool PopTask(size_t self, bool is_worker, size_t min_depth, Task* task);
  void RunTask(Task task);

  /// Both vectors are filled in the constructor and immutable afterwards;
  /// workers synchronize through the per-queue and sleep locks, never on
  /// the vectors themselves.
  std::vector<std::unique_ptr<WorkerQueue>> queues_ EADRL_UNGUARDED;
  std::vector<std::thread> workers_ EADRL_UNGUARDED;

  /// Guards no data — it orders Submit's notify against a worker parked
  /// between a failed pop and its wait (see Submit). Declared after
  /// par_queue in lock_order.def because Submit holds them sequentially,
  /// never nested.
  chk::OrderedMutex sleep_mu_{EADRL_LOCK_RANK(par_sleep),
                              "par::ThreadPool::sleep_mu_"};
  /// _any variant: std::condition_variable only waits on std::mutex.
  std::condition_variable_any sleep_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_queue_{0};

  // Cached from the default registry (stable pointers).
  obs::Counter* submitted_counter_;
  obs::Counter* steals_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* active_workers_gauge_;
  obs::Histogram* task_latency_hist_;
};

/// Parses a thread-count string (the EADRL_THREADS format): returns
/// `fallback` with a warning unless `text` is a whole positive decimal
/// integer (trailing garbage like "8x" is rejected, not truncated), and
/// clamps values above 4x hardware_concurrency() to that ceiling so a typo
/// cannot spawn an unbounded number of threads.
size_t ParseThreadCount(const char* text, size_t fallback);

/// Concurrency of the process-wide default pool: EADRL_THREADS when set to a
/// positive integer (validated and clamped by ParseThreadCount), otherwise
/// std::thread::hardware_concurrency(). This is what DefaultPool() is built
/// with unless SetDefaultThreads overrode it.
size_t DefaultThreads();

/// Lazily-initialized process-wide pool used by every parallelized library
/// path (FitPool, PreparePool, RunSuite, DdpgAgent::Update, the CLI predict
/// fan-out) when no explicit pool is passed.
ThreadPool& DefaultPool();

/// Overrides the default pool's concurrency (the CLI's --threads flag, and
/// tests that compare serial vs parallel runs in one process). If the default
/// pool already exists it is drained, destroyed and lazily rebuilt on next
/// use. Call only from quiescent points — never while other threads are using
/// DefaultPool().
void SetDefaultThreads(size_t threads);

}  // namespace eadrl::par

#endif  // EADRL_PAR_THREAD_POOL_H_
