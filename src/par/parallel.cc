#include "par/parallel.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

#include "chk/thread_annotations.h"

namespace eadrl::par {

// Heap-allocated and co-owned (shared_ptr) by the group and by every
// submitted task lambda: the last task's completion signal may race the
// waiter returning from Wait and destroying the stack-allocated group, so
// the mutex/cv/count must outlive the group itself.
struct TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv;
  size_t outstanding EADRL_GUARDED_BY(mu) = 0;
  std::exception_ptr error EADRL_GUARDED_BY(mu);
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &DefaultPool()),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { WaitNoThrow(); }

void TaskGroup::Run(std::function<void()> fn) {
  if (!pool_->parallel()) {
    // Serial pool: run inline with the same capture-and-rethrow-at-Wait
    // semantics as the parallel path (later tasks still run after a throw).
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->error == nullptr) state_->error = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->outstanding;
  }
  pool_->Submit([state = state_, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    // Decrement and notify under the lock: the waiter either re-checks the
    // count before sleeping (and sees zero) or is already asleep and gets
    // the notify — no decrement can slip between its check and its wait.
    // The co-owned State keeps mu/cv alive even when the waiter returns and
    // destroys the group the instant the count hits zero.
    std::lock_guard<std::mutex> lock(state->mu);
    if (err != nullptr && state->error == nullptr) state->error = err;
    if (--state->outstanding == 0) state->cv.notify_all();
  });
}

void TaskGroup::WaitNoThrow() {
  State& state = *state_;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.outstanding == 0) return;
    }
    // Help: run queued tasks at least as deep as our own children (see
    // ThreadPool::TryRunOneTask) instead of blocking; fall back to a timed
    // wait when nothing eligible is queued but our tasks are still running
    // on other workers. The timeout lets us resume helping when a running
    // child fans out again.
    if (!pool_->TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(state.mu);
      state.cv.wait_for(lock, std::chrono::milliseconds(1),
                        [&state] { return state.outstanding == 0; });
      if (state.outstanding == 0) return;
    }
  }
}

void TaskGroup::Wait() {
  WaitNoThrow();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    error = std::exchange(state_->error, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace eadrl::par
