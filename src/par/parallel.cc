#include "par/parallel.h"

#include <chrono>
#include <utility>

namespace eadrl::par {

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &DefaultPool()) {}

TaskGroup::~TaskGroup() { WaitNoThrow(); }

void TaskGroup::Run(std::function<void()> fn) {
  if (!pool_->parallel()) {
    // Serial pool: run inline with the same capture-and-rethrow-at-Wait
    // semantics as the parallel path (later tasks still run after a throw).
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: take the lock so the waiter is either fully asleep
      // (and gets the notify) or re-checks the count before sleeping.
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  });
}

void TaskGroup::WaitNoThrow() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    // Help: run queued tasks (ours or anyone's) instead of blocking; fall
    // back to a timed wait when the queues are empty but our tasks are still
    // running on other workers. The timeout covers the benign race where the
    // last task finishes between the helping attempt and the wait.
    if (!pool_->TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
    }
  }
}

void TaskGroup::Wait() {
  WaitNoThrow();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = std::exchange(error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace eadrl::par
