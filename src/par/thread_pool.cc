#include "par/thread_pool.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "chk/chk.h"
#include "common/logging.h"

namespace eadrl::par {
namespace {

// Worker identity, set inside WorkerLoop. Used so worker submissions land on
// the submitting worker's own deque (LIFO locality) and so TryRunOneTask
// checks the own queue before stealing.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;
// Nesting depth of the task currently executing on this thread (0 when idle
// or external). A submission's depth is tl_depth + 1; a helping waiter only
// runs tasks at depth >= tl_depth + 1 (as deep as its own children).
thread_local size_t tl_depth = 0;

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  submitted_counter_ = registry.GetCounter("eadrl_par_tasks_submitted_total");
  steals_counter_ = registry.GetCounter("eadrl_par_steals_total");
  queue_depth_gauge_ = registry.GetGauge("eadrl_par_queue_depth");
  active_workers_gauge_ = registry.GetGauge("eadrl_par_active_workers");
  task_latency_hist_ = registry.GetHistogram("eadrl_par_task_seconds");

  if (threads <= 1) return;  // serial pool: no workers, Submit runs inline.
  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<chk::OrderedMutex> lock(sleep_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Task item;
  item.fn = std::move(task);
  item.depth = tl_depth + 1;
  item.telemetry_ctx = obs::TelemetryContext();
  if (obs::TracingEnabled()) {
    item.traced = true;
    item.trace_parent = obs::CurrentTraceParent();
    item.enqueue_time = std::chrono::steady_clock::now();
  }
  if (workers_.empty()) {
    // Serial pool: the caller is the worker.
    RunTask(std::move(item));
    return;
  }
  submitted_counter_->Inc();
  const size_t q =
      tl_pool == this
          ? tl_worker
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<chk::OrderedMutex> lock(queues_[q]->deque_mu);
    queues_[q]->tasks.push_back(std::move(item));
  }
  const size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  queue_depth_gauge_->Set(static_cast<double>(depth));
  {
    // Taking the sleep mutex orders this submission against a worker that is
    // between its failed pop and its wait — without it the notify could fire
    // in that window and be lost.
    std::lock_guard<chk::OrderedMutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::PopTask(size_t self, bool is_worker, size_t min_depth,
                         Task* task) {
  const size_t n = queues_.size();
  EADRL_CHK_BOUND(self, n, "ThreadPool::PopTask queue slot");
  if (is_worker) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<chk::OrderedMutex> lock(own.deque_mu);
    // LIFO from the back; newest tasks are the deepest, so scanning
    // backwards finds an eligible (deep enough) task first.
    for (auto it = own.tasks.rbegin(); it != own.tasks.rend(); ++it) {
      if (it->depth < min_depth) continue;
      *task = std::move(*it);
      own.tasks.erase(std::next(it).base());
      const size_t depth =
          pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      queue_depth_gauge_->Set(static_cast<double>(depth));
      return true;
    }
  }
  for (size_t offset = is_worker ? 1 : 0; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard<chk::OrderedMutex> lock(victim.deque_mu);
    // FIFO from the front: steal the oldest eligible task.
    for (auto it = victim.tasks.begin(); it != victim.tasks.end(); ++it) {
      if (it->depth < min_depth) continue;
      *task = std::move(*it);
      victim.tasks.erase(it);
      // "Stolen" matches eadrl_par_steals_total: a worker draining another
      // worker's deque. An external waiter scanning queues is helping, not
      // stealing.
      task->stolen = is_worker;
      const size_t depth =
          pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      queue_depth_gauge_->Set(static_cast<double>(depth));
      if (is_worker) steals_counter_->Inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task task) {
  obs::ScopedTelemetryContext telemetry_ctx(std::move(task.telemetry_ctx));
  // Mask this thread's span stack with the submitter's span identity: spans
  // the task opens parent to the submitter, not to whatever this thread was
  // doing (and a helping waiter's own span is credited child time for the
  // detour — see ScopedTraceParent).
  obs::ScopedTraceParent trace_parent(task.trace_parent);
  obs::Span span("par_task");
  if (span.armed() && task.traced) {
    span.SetAttr(
        "queue_wait_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueue_time)
            .count());
    span.SetAttr("stolen", task.stolen);
    span.SetAttr("worker",
                 tl_pool == this ? static_cast<long>(tl_worker) : -1L);
    span.SetAttr("depth", task.depth);
  }
  const size_t parent_depth = tl_depth;
  tl_depth = task.depth;
  active_workers_gauge_->Add(1.0);
  obs::ScopedTimer timer(task_latency_hist_);
  try {
    task.fn();
  } catch (const std::exception& e) {
    EADRL_LOG(Error) << "thread pool task threw: " << e.what()
                     << " (use TaskGroup/ParallelFor to propagate "
                        "exceptions to the caller)";
  } catch (...) {
    EADRL_LOG(Error) << "thread pool task threw a non-std exception";
  }
  timer.Stop();
  active_workers_gauge_->Add(-1.0);
  tl_depth = parent_depth;
}

bool ThreadPool::TryRunOneTask() {
  if (workers_.empty()) return false;
  Task task;
  const bool is_worker = tl_pool == this;
  const size_t self =
      is_worker ? tl_worker
                : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                      queues_.size();
  // Only tasks at least as deep as this caller's own children are eligible
  // (tl_depth is 0 for external threads, which may therefore help with
  // anything). The caller's own children always qualify, so a nested wait
  // can always make progress.
  if (!PopTask(self, is_worker, tl_depth + 1, &task)) return false;
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  EADRL_CHK_BOUND(worker_index, queues_.size(), "ThreadPool worker index");
  tl_pool = this;
  tl_worker = worker_index;
  obs::SetCurrentThreadTraceName("worker-" + std::to_string(worker_index));
  Task task;
  for (;;) {
    // An idle worker takes anything (every task has depth >= 1).
    if (PopTask(worker_index, /*is_worker=*/true, /*min_depth=*/1, &task)) {
      RunTask(std::move(task));
      task = Task{};
      continue;
    }
    std::unique_lock<chk::OrderedMutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    // Graceful shutdown: exit only once every queued task has been drained
    // (tasks already running may still enqueue more — those are drained too,
    // because the enqueue bumps `pending_` while this worker is awake).
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Default pool.
// ---------------------------------------------------------------------------

namespace {

std::mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_pool;  // guarded by g_default_mu.
size_t g_default_threads = 0;                // 0 = not yet resolved.

size_t ResolveDefaultThreads() {
  return ParseThreadCount(std::getenv("EADRL_THREADS"), HardwareThreads());
}

}  // namespace

size_t ParseThreadCount(const char* text, size_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || parsed < 1) {
    EADRL_LOG(Warning) << "ignoring invalid EADRL_THREADS value: " << text;
    return fallback;
  }
  const size_t ceiling = 4 * HardwareThreads();
  if (static_cast<size_t>(parsed) > ceiling) {
    EADRL_LOG(Warning) << "EADRL_THREADS=" << parsed << " clamped to "
                       << ceiling << " (4x hardware concurrency)";
    return ceiling;
  }
  return static_cast<size_t>(parsed);
}

size_t DefaultThreads() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_threads == 0) g_default_threads = ResolveDefaultThreads();
  return g_default_threads;
}

ThreadPool& DefaultPool() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (g_default_pool == nullptr) {
    if (g_default_threads == 0) g_default_threads = ResolveDefaultThreads();
    g_default_pool = std::make_unique<ThreadPool>(g_default_threads);
  }
  return *g_default_pool;
}

void SetDefaultThreads(size_t threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  g_default_threads = threads == 0 ? 1 : threads;
  g_default_pool.reset();  // drained + joined here; rebuilt on next use.
}

}  // namespace eadrl::par
