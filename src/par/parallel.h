#ifndef EADRL_PAR_PARALLEL_H_
#define EADRL_PAR_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chk/chk.h"
#include "par/thread_pool.h"

namespace eadrl::par {

/// Heterogeneous fan-out: submit any number of tasks, then Wait for all of
/// them. The first exception thrown by a task (by submission order is NOT
/// guaranteed — first to *fail*) is captured and rethrown from Wait; the
/// remaining tasks still run to completion either way.
///
/// Wait is cooperative: while tasks are outstanding the waiting thread runs
/// other queued pool tasks, so nested TaskGroups (a pool task that fans out
/// and waits) cannot deadlock the pool.
class TaskGroup {
 public:
  /// `pool` defaults to DefaultPool(). On a serial pool tasks run inline in
  /// Run (same exception semantics: captured, rethrown from Wait).
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Waits for outstanding tasks; exceptions captured by then are dropped.
  /// Call Wait() explicitly to observe them.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);

  /// Blocks (cooperatively) until every task has finished, then rethrows the
  /// first captured exception, if any. The group is reusable afterwards.
  void Wait();

 private:
  // Completion state (count, mutex, cv, first error) lives on the heap and is
  // co-owned by every in-flight task, so a task that finishes just as the
  // waiter returns from Wait and destroys the group still touches live
  // memory. See parallel.cc.
  struct State;

  void WaitNoThrow();

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// Grain-size / pool selection for ParallelFor and ParallelMap.
struct ForOptions {
  /// Indices are processed in contiguous chunks of (at most) this many; one
  /// pool task per chunk. Pick a grain that makes a chunk's work comfortably
  /// exceed ~10 us of scheduling overhead (see DESIGN.md, "Parallel
  /// runtime"). Model fits and dataset runs use grain 1.
  size_t grain = 1;
  /// Pool to run on; nullptr means DefaultPool().
  ThreadPool* pool = nullptr;
};

/// Calls `body(i)` for every i in [begin, end). Chunk boundaries depend only
/// on the range and the grain — never on the thread count — so any
/// index-addressed output is filled identically no matter how chunks are
/// scheduled; a serial pool (or a range no larger than one grain) degenerates
/// to the plain ascending loop. Rethrows the first exception a body threw.
template <typename Body>
void ParallelFor(size_t begin, size_t end, const Body& body,
                 const ForOptions& options = {}) {
  if (end <= begin) return;
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : DefaultPool();
  const size_t grain = options.grain == 0 ? 1 : options.grain;
  if (!pool.parallel() || end - begin <= grain) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  TaskGroup group(&pool);
  for (size_t lo = begin; lo < end; lo += grain) {
    const size_t hi = lo + grain < end ? lo + grain : end;
    // Chunking must tile [begin, end) exactly — a bad grain computation
    // would silently skip or double-run indices on some thread counts.
    EADRL_CHK(lo < hi && hi <= end, "ParallelFor chunk bounds");
    group.Run([&body, lo, hi] {
      for (size_t i = lo; i < hi; ++i) body(i);
    });
  }
  group.Wait();
}

/// Maps i -> fn(i) over [0, n) and returns the results in index order (the
/// fan-out primitive behind the per-step ensemble prediction). R must be
/// default-constructible.
template <typename R, typename Fn>
std::vector<R> ParallelMap(size_t n, const Fn& fn,
                           const ForOptions& options = {}) {
  std::vector<R> out(n);
  ParallelFor(
      0, n,
      [&](size_t i) {
        EADRL_CHK_BOUND(i, out.size(), "ParallelMap slot index");
        out[i] = fn(i);
      },
      options);
  return out;
}

/// Deterministic per-task seed derivation (splitmix64 of base and index):
/// unlike forking a shared Rng, the seed of task i does not depend on how
/// many tasks ran before it or on which thread, so stochastic parallel tasks
/// reproduce bit-identically across thread counts and across runs.
inline uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index) {
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace eadrl::par

#endif  // EADRL_PAR_PARALLEL_H_
