// eadrl_serve: open-loop load driver for the multi-tenant serving layer.
//
// Trains one small EA-DRL policy, registers it with a serve::ForecastService,
// creates N tenant sessions (each with its own unit scaler), and replays
// synthetic open-loop traffic (Poisson or bursty arrivals at a target QPS)
// through the cross-tenant batching path. Reports admission/shedding counts,
// achieved throughput, end-to-end predict p50/p99, and mean batched-actor
// occupancy; optionally exports a Chrome trace and the span-profiler report
// (serve_request / serve_batch / serve_admission rows).
//
// Usage:
//   eadrl_serve [--tenants N] [--requests N] [--qps Q]
//               [--schedule poisson|bursty] [--burst-factor F]
//               [--max-batch N] [--max-queue N] [--max-inflight N]
//               [--linger-us U] [--shards N] [--max-sessions N] [--ttl SEC]
//               [--episodes N] [--threads N] [--seed S] [--no-observe]
//               [--trace FILE] [--profile-report]
//               [--expect-shed] [--min-occupancy X]
//
// Exit status: 0 on success, 1 when an --expect-shed / --min-occupancy
// expectation failed, 2 on usage or setup errors — so check.sh can gate on
// both the happy path and the overload path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "ts/datasets.h"

namespace {

using eadrl::Status;
using eadrl::StatusOr;

struct Args {
  size_t tenants = 1000;
  size_t requests = 20000;
  double qps = 20000.0;
  eadrl::serve::ReplayOptions::Schedule schedule =
      eadrl::serve::ReplayOptions::Schedule::kPoisson;
  double burst_factor = 4.0;
  size_t max_batch = 64;
  size_t max_queue = 4096;
  size_t max_inflight = 0;
  size_t linger_us = 200;
  size_t shards = 16;
  size_t max_sessions = 0;
  double ttl_seconds = 0.0;
  size_t episodes = 4;
  size_t threads = 0;
  uint64_t seed = 42;
  bool observe = true;
  std::string trace;
  bool profile_report = false;
  bool expect_shed = false;
  double min_occupancy = 0.0;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: eadrl_serve [--tenants N] [--requests N] [--qps Q]\n"
      "                   [--schedule poisson|bursty] [--burst-factor F]\n"
      "                   [--max-batch N] [--max-queue N] [--max-inflight N]\n"
      "                   [--linger-us U] [--shards N] [--max-sessions N]\n"
      "                   [--ttl SEC] [--episodes N] [--threads N] [--seed S]\n"
      "                   [--no-observe] [--trace FILE] [--profile-report]\n"
      "                   [--expect-shed] [--min-occupancy X]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--tenants") {
      if ((v = next("--tenants")) == nullptr) return false;
      args->tenants = std::strtoul(v, nullptr, 10);
    } else if (flag == "--requests") {
      if ((v = next("--requests")) == nullptr) return false;
      args->requests = std::strtoul(v, nullptr, 10);
    } else if (flag == "--qps") {
      if ((v = next("--qps")) == nullptr) return false;
      args->qps = std::atof(v);
    } else if (flag == "--schedule") {
      if ((v = next("--schedule")) == nullptr) return false;
      if (std::strcmp(v, "poisson") == 0) {
        args->schedule = eadrl::serve::ReplayOptions::Schedule::kPoisson;
      } else if (std::strcmp(v, "bursty") == 0) {
        args->schedule = eadrl::serve::ReplayOptions::Schedule::kBursty;
      } else {
        std::fprintf(stderr, "--schedule must be poisson or bursty\n");
        return false;
      }
    } else if (flag == "--burst-factor") {
      if ((v = next("--burst-factor")) == nullptr) return false;
      args->burst_factor = std::atof(v);
    } else if (flag == "--max-batch") {
      if ((v = next("--max-batch")) == nullptr) return false;
      args->max_batch = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-queue") {
      if ((v = next("--max-queue")) == nullptr) return false;
      args->max_queue = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-inflight") {
      if ((v = next("--max-inflight")) == nullptr) return false;
      args->max_inflight = std::strtoul(v, nullptr, 10);
    } else if (flag == "--linger-us") {
      if ((v = next("--linger-us")) == nullptr) return false;
      args->linger_us = std::strtoul(v, nullptr, 10);
    } else if (flag == "--shards") {
      if ((v = next("--shards")) == nullptr) return false;
      args->shards = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-sessions") {
      if ((v = next("--max-sessions")) == nullptr) return false;
      args->max_sessions = std::strtoul(v, nullptr, 10);
    } else if (flag == "--ttl") {
      if ((v = next("--ttl")) == nullptr) return false;
      args->ttl_seconds = std::atof(v);
    } else if (flag == "--episodes") {
      if ((v = next("--episodes")) == nullptr) return false;
      args->episodes = std::strtoul(v, nullptr, 10);
    } else if (flag == "--threads") {
      if ((v = next("--threads")) == nullptr) return false;
      args->threads = std::strtoul(v, nullptr, 10);
    } else if (flag == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--no-observe") {
      args->observe = false;
    } else if (flag == "--trace") {
      if ((v = next("--trace")) == nullptr) return false;
      args->trace = v;
    } else if (flag == "--profile-report") {
      args->profile_report = true;
    } else if (flag == "--expect-shed") {
      args->expect_shed = true;
    } else if (flag == "--min-occupancy") {
      if ((v = next("--min-occupancy")) == nullptr) return false;
      args->min_occupancy = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

int Run(const Args& args) {
  // Train one small policy on a synthetic dataset (same recipe as the
  // eadrl_bench predict-loop macro workload).
  std::printf("training policy (%zu episodes, fast pool)...\n", args.episodes);
  auto series = eadrl::ts::MakeDataset(2, static_cast<int>(args.seed), 240);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 2;
  }
  eadrl::exp::ExperimentOptions opt;
  opt.seed = args.seed;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.max_episodes = args.episodes;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);
  auto combiner = std::make_unique<eadrl::core::EadrlCombiner>(opt.eadrl);
  Status st = combiner->Initialize(pool.val_preds, pool.val_actuals);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  // The service gets its own pool (not the process-wide default): its
  // destructor joins the drainer workers before Run returns, so the trace
  // export in main can never race a drain task's final span records.
  eadrl::par::ThreadPool serve_pool(args.threads > 0
                                        ? args.threads
                                        : eadrl::par::DefaultPool().concurrency());
  eadrl::serve::ServeConfig config;
  config.shards = args.shards;
  config.max_sessions = args.max_sessions;
  config.session_ttl_seconds = args.ttl_seconds;
  config.max_batch = args.max_batch;
  config.max_queue = args.max_queue;
  config.max_inflight = args.max_inflight;
  config.linger_us = args.linger_us;
  config.pool = &serve_pool;
  eadrl::serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(std::move(combiner));

  eadrl::serve::ReplayOptions replay;
  replay.tenants = args.tenants;
  replay.requests = args.requests;
  replay.target_qps = args.qps;
  replay.schedule = args.schedule;
  replay.burst_factor = args.burst_factor;
  replay.seed = args.seed;
  replay.policy_id = policy_id;
  replay.observe = args.observe;

  std::printf(
      "replaying %zu requests over %zu tenants at %.0f qps (%s)...\n",
      args.requests, args.tenants, args.qps,
      args.schedule == eadrl::serve::ReplayOptions::Schedule::kPoisson
          ? "poisson"
          : "bursty");
  StatusOr<eadrl::serve::ReplayReport> report = eadrl::serve::RunOpenLoopReplay(
      &service, pool.test_preds, pool.test_actuals, replay);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }

  const eadrl::serve::ServeStats stats = service.Stats();
  std::printf("\n--- replay report ---\n");
  std::printf("submitted            %llu\n",
              static_cast<unsigned long long>(report->submitted));
  std::printf("accepted             %llu\n",
              static_cast<unsigned long long>(report->accepted));
  std::printf("shed (predict)       %llu\n",
              static_cast<unsigned long long>(report->predict_shed));
  std::printf("shed (observe)       %llu\n",
              static_cast<unsigned long long>(report->observe_shed));
  std::printf("wall                 %.3f s\n", report->wall_seconds);
  std::printf("offered qps          %.0f\n", report->offered_qps);
  std::printf("achieved qps         %.0f\n", report->achieved_qps);
  std::printf("predict p50          %.3f ms\n", report->predict_p50_ms);
  std::printf("predict p99          %.3f ms\n", report->predict_p99_ms);
  std::printf("predict max          %.3f ms\n", report->predict_max_ms);
  std::printf("waves                %llu\n",
              static_cast<unsigned long long>(report->waves));
  std::printf("actor batches        %llu (%llu rows, occupancy %.2f)\n",
              static_cast<unsigned long long>(report->act_batches),
              static_cast<unsigned long long>(report->act_batch_rows),
              report->MeanBatchOccupancy());
  std::printf("drift events         %llu\n",
              static_cast<unsigned long long>(report->drift_events));
  std::printf("resident sessions    %llu (created %llu, lru %llu, ttl %llu)\n",
              static_cast<unsigned long long>(stats.sessions),
              static_cast<unsigned long long>(stats.sessions_created),
              static_cast<unsigned long long>(stats.evictions_lru),
              static_cast<unsigned long long>(stats.evictions_ttl));

  if (args.ttl_seconds > 0.0) {
    const size_t evicted = service.EvictIdleSessions();
    std::printf("ttl sweep            evicted %zu\n", evicted);
  }

  int rc = 0;
  const uint64_t total_shed = report->predict_shed + report->observe_shed;
  if (args.expect_shed && total_shed == 0) {
    std::fprintf(stderr,
                 "FAIL: --expect-shed but admission control never shed\n");
    rc = 1;
  }
  if (args.min_occupancy > 0.0 &&
      report->MeanBatchOccupancy() < args.min_occupancy) {
    std::fprintf(stderr, "FAIL: mean occupancy %.2f < required %.2f\n",
                 report->MeanBatchOccupancy(), args.min_occupancy);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.threads > 0) eadrl::par::SetDefaultThreads(args.threads);

  // Tracing (and the span profiler that rides on it) is armed for the whole
  // run when either export was requested.
  std::unique_ptr<eadrl::obs::TraceBuffer> trace_buffer;
  if (!args.trace.empty() || args.profile_report) {
    eadrl::obs::SetCurrentThreadTraceName("main");
    trace_buffer = std::make_unique<eadrl::obs::TraceBuffer>();
    eadrl::obs::SetTraceBuffer(trace_buffer.get());
  }

  const int rc = Run(args);

  if (trace_buffer != nullptr) {
    eadrl::obs::SetTraceBuffer(nullptr);
    if (!args.trace.empty()) {
      eadrl::Status st = trace_buffer->WriteChromeTrace(args.trace);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      std::printf("trace written to %s (%zu spans)\n", args.trace.c_str(),
                  trace_buffer->size());
    }
    if (args.profile_report) {
      std::printf("\n%s\n", eadrl::obs::FormatSpanProfileReport().c_str());
    }
  }
  return rc;
}
