// eadrl_serve: open-loop load driver for the multi-tenant serving layer.
//
// Trains one small EA-DRL policy, registers it with a serve::ForecastService,
// creates N tenant sessions (each with its own unit scaler), and replays
// synthetic open-loop traffic (Poisson or bursty arrivals at a target QPS)
// through the cross-tenant batching path. Reports admission/shedding counts,
// achieved throughput, end-to-end predict p50/p99, and mean batched-actor
// occupancy; optionally exports a Chrome trace and the span-profiler report
// (serve_request / serve_batch / serve_admission rows).
//
// Live observability (PR 10): --report-interval prints a windowed stats
// line (QPS, p99, shed rate, queue delay) every interval while the replay
// runs; --export-metrics starts a background obs::MetricsExporter writing
// atomic Prometheus/JSON snapshots; --slo-latency-ms enables the service's
// SLO tracker (predict-latency + availability objectives with burn-rate
// alerting) and --expect-slo-breach gates the overload path on it;
// --tenant-top prints the per-tenant latency drill-down; --telemetry streams
// every registered event (slo_breach, serve_shed, ...) as JSON lines.
//
// Usage:
//   eadrl_serve [--tenants N] [--requests N] [--qps Q]
//               [--schedule poisson|bursty] [--burst-factor F]
//               [--max-batch N] [--max-queue N] [--max-inflight N]
//               [--linger-us U] [--shards N] [--max-sessions N] [--ttl SEC]
//               [--episodes N] [--threads N] [--seed S] [--no-observe]
//               [--trace FILE] [--profile-report]
//               [--expect-shed] [--min-occupancy X]
//               [--report-interval SEC] [--export-metrics FILE]
//               [--export-interval SEC] [--slo-latency-ms MS]
//               [--slo-target T] [--expect-slo-breach] [--tenant-top N]
//               [--telemetry FILE]
//
// Exit status: 0 on success, 1 when an --expect-shed / --min-occupancy /
// --expect-slo-breach expectation failed, 2 on usage or setup errors — so
// check.sh can gate on both the happy path and the overload path.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "ts/datasets.h"

namespace {

using eadrl::Status;
using eadrl::StatusOr;

struct Args {
  size_t tenants = 1000;
  size_t requests = 20000;
  double qps = 20000.0;
  eadrl::serve::ReplayOptions::Schedule schedule =
      eadrl::serve::ReplayOptions::Schedule::kPoisson;
  double burst_factor = 4.0;
  size_t max_batch = 64;
  size_t max_queue = 4096;
  size_t max_inflight = 0;
  size_t linger_us = 200;
  size_t shards = 16;
  size_t max_sessions = 0;
  double ttl_seconds = 0.0;
  size_t episodes = 4;
  size_t threads = 0;
  uint64_t seed = 42;
  bool observe = true;
  std::string trace;
  bool profile_report = false;
  bool expect_shed = false;
  double min_occupancy = 0.0;
  double report_interval = 0.0;  ///< 0 = no live interval lines.
  std::string export_metrics;    ///< exporter output path ("" = off).
  double export_interval = 1.0;
  double slo_latency_ms = 0.0;   ///< > 0 enables the SLO tracker.
  double slo_target = 0.99;
  bool expect_slo_breach = false;
  size_t tenant_top = 0;         ///< top-K drill-down rows to print.
  std::string telemetry;         ///< JSON-lines event sink path ("" = off).
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: eadrl_serve [--tenants N] [--requests N] [--qps Q]\n"
      "                   [--schedule poisson|bursty] [--burst-factor F]\n"
      "                   [--max-batch N] [--max-queue N] [--max-inflight N]\n"
      "                   [--linger-us U] [--shards N] [--max-sessions N]\n"
      "                   [--ttl SEC] [--episodes N] [--threads N] [--seed S]\n"
      "                   [--no-observe] [--trace FILE] [--profile-report]\n"
      "                   [--expect-shed] [--min-occupancy X]\n"
      "                   [--report-interval SEC] [--export-metrics FILE]\n"
      "                   [--export-interval SEC] [--slo-latency-ms MS]\n"
      "                   [--slo-target T] [--expect-slo-breach]\n"
      "                   [--tenant-top N] [--telemetry FILE]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--tenants") {
      if ((v = next("--tenants")) == nullptr) return false;
      args->tenants = std::strtoul(v, nullptr, 10);
    } else if (flag == "--requests") {
      if ((v = next("--requests")) == nullptr) return false;
      args->requests = std::strtoul(v, nullptr, 10);
    } else if (flag == "--qps") {
      if ((v = next("--qps")) == nullptr) return false;
      args->qps = std::atof(v);
    } else if (flag == "--schedule") {
      if ((v = next("--schedule")) == nullptr) return false;
      if (std::strcmp(v, "poisson") == 0) {
        args->schedule = eadrl::serve::ReplayOptions::Schedule::kPoisson;
      } else if (std::strcmp(v, "bursty") == 0) {
        args->schedule = eadrl::serve::ReplayOptions::Schedule::kBursty;
      } else {
        std::fprintf(stderr, "--schedule must be poisson or bursty\n");
        return false;
      }
    } else if (flag == "--burst-factor") {
      if ((v = next("--burst-factor")) == nullptr) return false;
      args->burst_factor = std::atof(v);
    } else if (flag == "--max-batch") {
      if ((v = next("--max-batch")) == nullptr) return false;
      args->max_batch = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-queue") {
      if ((v = next("--max-queue")) == nullptr) return false;
      args->max_queue = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-inflight") {
      if ((v = next("--max-inflight")) == nullptr) return false;
      args->max_inflight = std::strtoul(v, nullptr, 10);
    } else if (flag == "--linger-us") {
      if ((v = next("--linger-us")) == nullptr) return false;
      args->linger_us = std::strtoul(v, nullptr, 10);
    } else if (flag == "--shards") {
      if ((v = next("--shards")) == nullptr) return false;
      args->shards = std::strtoul(v, nullptr, 10);
    } else if (flag == "--max-sessions") {
      if ((v = next("--max-sessions")) == nullptr) return false;
      args->max_sessions = std::strtoul(v, nullptr, 10);
    } else if (flag == "--ttl") {
      if ((v = next("--ttl")) == nullptr) return false;
      args->ttl_seconds = std::atof(v);
    } else if (flag == "--episodes") {
      if ((v = next("--episodes")) == nullptr) return false;
      args->episodes = std::strtoul(v, nullptr, 10);
    } else if (flag == "--threads") {
      if ((v = next("--threads")) == nullptr) return false;
      args->threads = std::strtoul(v, nullptr, 10);
    } else if (flag == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--no-observe") {
      args->observe = false;
    } else if (flag == "--trace") {
      if ((v = next("--trace")) == nullptr) return false;
      args->trace = v;
    } else if (flag == "--profile-report") {
      args->profile_report = true;
    } else if (flag == "--expect-shed") {
      args->expect_shed = true;
    } else if (flag == "--min-occupancy") {
      if ((v = next("--min-occupancy")) == nullptr) return false;
      args->min_occupancy = std::atof(v);
    } else if (flag == "--report-interval") {
      if ((v = next("--report-interval")) == nullptr) return false;
      args->report_interval = std::atof(v);
    } else if (flag == "--export-metrics") {
      if ((v = next("--export-metrics")) == nullptr) return false;
      args->export_metrics = v;
    } else if (flag == "--export-interval") {
      if ((v = next("--export-interval")) == nullptr) return false;
      args->export_interval = std::atof(v);
    } else if (flag == "--slo-latency-ms") {
      if ((v = next("--slo-latency-ms")) == nullptr) return false;
      args->slo_latency_ms = std::atof(v);
    } else if (flag == "--slo-target") {
      if ((v = next("--slo-target")) == nullptr) return false;
      args->slo_target = std::atof(v);
    } else if (flag == "--expect-slo-breach") {
      args->expect_slo_breach = true;
    } else if (flag == "--tenant-top") {
      if ((v = next("--tenant-top")) == nullptr) return false;
      args->tenant_top = std::strtoul(v, nullptr, 10);
    } else if (flag == "--telemetry") {
      if ((v = next("--telemetry")) == nullptr) return false;
      args->telemetry = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

/// "serve" exporter section: one JSON object of live service stats.
std::string ServeStatsJson(const eadrl::serve::ForecastService& service) {
  const eadrl::serve::ServeStats s = service.Stats();
  std::ostringstream out;
  out << "{\"sessions\":" << s.sessions << ",\"predicts\":" << s.predicts
      << ",\"observes\":" << s.observes << ",\"shed\":" << s.shed
      << ",\"inflight\":" << s.inflight << ",\"queue_depth\":" << s.queue_depth
      << ",\"window_seconds\":" << s.window_seconds
      << ",\"window_predict_qps\":" << s.window_predict_qps
      << ",\"window_shed_rate\":" << s.window_shed_rate
      << ",\"window_predict_p50_s\":" << s.window_predict_p50_s
      << ",\"window_predict_p99_s\":" << s.window_predict_p99_s
      << ",\"queue_delay_count\":" << s.queue_delay_count
      << ",\"queue_delay_mean_s\":" << s.queue_delay_mean_s
      << ",\"queue_delay_p50_s\":" << s.queue_delay_p50_s
      << ",\"queue_delay_p99_s\":" << s.queue_delay_p99_s
      << ",\"queue_delay_max_s\":" << s.queue_delay_max_s << "}";
  return out.str();
}

/// "serve" exporter section, Prometheus flavour: the windowed gauges that a
/// scraper cannot derive from the cumulative registry metrics.
void AppendServeStatsProm(const eadrl::serve::ForecastService& service,
                          std::string* out) {
  const eadrl::serve::ServeStats s = service.Stats();
  char line[192];
  auto emit = [out, &line](const char* name, double value) {
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %.9g\n", name, name,
                  value);
    out->append(line);
  };
  emit("eadrl_serve_window_predict_qps", s.window_predict_qps);
  emit("eadrl_serve_window_shed_rate", s.window_shed_rate);
  emit("eadrl_serve_window_predict_p50_seconds", s.window_predict_p50_s);
  emit("eadrl_serve_window_predict_p99_seconds", s.window_predict_p99_s);
  emit("eadrl_serve_queue_delay_p50_seconds", s.queue_delay_p50_s);
  emit("eadrl_serve_queue_delay_p99_seconds", s.queue_delay_p99_s);
  emit("eadrl_serve_queue_delay_max_seconds", s.queue_delay_max_s);
}

int Run(const Args& args) {
  // Train one small policy on a synthetic dataset (same recipe as the
  // eadrl_bench predict-loop macro workload).
  std::printf("training policy (%zu episodes, fast pool)...\n", args.episodes);
  auto series = eadrl::ts::MakeDataset(2, static_cast<int>(args.seed), 240);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 2;
  }
  eadrl::exp::ExperimentOptions opt;
  opt.seed = args.seed;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.max_episodes = args.episodes;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);
  auto combiner = std::make_unique<eadrl::core::EadrlCombiner>(opt.eadrl);
  Status st = combiner->Initialize(pool.val_preds, pool.val_actuals);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  // The service gets its own pool (not the process-wide default): its
  // destructor joins the drainer workers before Run returns, so the trace
  // export in main can never race a drain task's final span records.
  eadrl::par::ThreadPool serve_pool(args.threads > 0
                                        ? args.threads
                                        : eadrl::par::DefaultPool().concurrency());
  eadrl::serve::ServeConfig config;
  config.shards = args.shards;
  config.max_sessions = args.max_sessions;
  config.session_ttl_seconds = args.ttl_seconds;
  config.max_batch = args.max_batch;
  config.max_queue = args.max_queue;
  config.max_inflight = args.max_inflight;
  config.linger_us = args.linger_us;
  config.pool = &serve_pool;
  // Windowed stats and drill-down are opt-in in ServeConfig (hot-path
  // cost); the load driver is exactly where the live view pays for itself.
  config.windowed_stats = true;
  config.tenant_drilldown = 64;
  config.policy_drilldown = 16;
  if (args.slo_latency_ms > 0.0) {
    config.slo.enabled = true;
    config.slo.latency_threshold_seconds = args.slo_latency_ms / 1000.0;
    config.slo.latency_target = args.slo_target;
  }
  eadrl::serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(std::move(combiner));

  // Background exporter: atomic snapshots of the default registry plus the
  // service-owned sections (windowed stats, SLO, drill-down families).
  std::unique_ptr<eadrl::obs::MetricsExporter> exporter;
  if (!args.export_metrics.empty()) {
    eadrl::obs::MetricsExporter::Options eopt;
    eopt.path = args.export_metrics;
    eopt.interval_seconds = args.export_interval;
    eopt.registry = &eadrl::obs::MetricRegistry::Default();
    exporter = std::make_unique<eadrl::obs::MetricsExporter>(eopt);
    exporter->AddSection(
        {"serve", [&service] { return ServeStatsJson(service); },
         [&service](std::string* out) { AppendServeStatsProm(service, out); }});
    if (service.slo_tracker() != nullptr) {
      exporter->AddSection(
          {"slo", [&service] { return service.slo_tracker()->ToJsonValue(); },
           [&service](std::string* out) {
             service.slo_tracker()->AppendPrometheus(out);
           }});
      // Evaluate on every export tick so breach/recover edges fire even when
      // the drain path goes idle (nothing drained = nobody else evaluates).
      exporter->SetOnExport([&service] { service.slo_tracker()->Evaluate(); });
    }
    const size_t top = args.tenant_top > 0 ? args.tenant_top : 10;
    if (service.tenant_drilldown() != nullptr) {
      exporter->AddSection(
          {"tenants",
           [&service, top] {
             return service.tenant_drilldown()->ToJsonValue(top);
           },
           [&service, top](std::string* out) {
             service.tenant_drilldown()->AppendPrometheus(out, top);
           }});
    }
    if (service.policy_drilldown() != nullptr) {
      exporter->AddSection(
          {"policies",
           [&service, top] {
             return service.policy_drilldown()->ToJsonValue(top);
           },
           [&service, top](std::string* out) {
             service.policy_drilldown()->AppendPrometheus(out, top);
           }});
    }
    exporter->Start();
  }

  // Live interval reporter: one windowed-stats line per interval while the
  // replay runs. Off by default so replay gates stay line-deterministic.
  std::atomic<bool> reporter_stop{false};
  std::thread reporter;
  if (args.report_interval > 0.0) {
    reporter = std::thread([&service, &reporter_stop, &args] {
      const auto interval = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(args.report_interval));
      const auto start = std::chrono::steady_clock::now();
      auto next_tick = start + interval;
      while (!reporter_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto now = std::chrono::steady_clock::now();
        if (now < next_tick) continue;
        next_tick += interval;
        const eadrl::serve::ServeStats s = service.Stats();
        std::printf(
            "[t+%5.1fs] qps %7.0f shed/s %6.1f p50 %7.3f ms p99 %7.3f ms "
            "qdelay p99 %7.3f ms depth %llu inflight %llu\n",
            std::chrono::duration<double>(now - start).count(),
            s.window_predict_qps, s.window_shed_rate,
            s.window_predict_p50_s * 1e3, s.window_predict_p99_s * 1e3,
            s.queue_delay_p99_s * 1e3,
            static_cast<unsigned long long>(s.queue_depth),
            static_cast<unsigned long long>(s.inflight));
        std::fflush(stdout);
      }
    });
  }

  eadrl::serve::ReplayOptions replay;
  replay.tenants = args.tenants;
  replay.requests = args.requests;
  replay.target_qps = args.qps;
  replay.schedule = args.schedule;
  replay.burst_factor = args.burst_factor;
  replay.seed = args.seed;
  replay.policy_id = policy_id;
  replay.observe = args.observe;

  std::printf(
      "replaying %zu requests over %zu tenants at %.0f qps (%s)...\n",
      args.requests, args.tenants, args.qps,
      args.schedule == eadrl::serve::ReplayOptions::Schedule::kPoisson
          ? "poisson"
          : "bursty");
  StatusOr<eadrl::serve::ReplayReport> report = eadrl::serve::RunOpenLoopReplay(
      &service, pool.test_preds, pool.test_actuals, replay);

  // Quiesce the observers before reporting (or bailing): the reporter thread
  // must be joined on every path, and Stop flushes one final export so the
  // snapshot file reflects final totals.
  reporter_stop.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();
  if (exporter != nullptr) {
    exporter->Stop();
    std::printf("metrics exported to %s (%llu snapshots, %llu failures)\n",
                args.export_metrics.c_str(),
                static_cast<unsigned long long>(exporter->exports()),
                static_cast<unsigned long long>(exporter->failures()));
  }

  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }

  const eadrl::serve::ServeStats stats = service.Stats();
  std::printf("\n--- replay report ---\n");
  std::printf("submitted            %llu\n",
              static_cast<unsigned long long>(report->submitted));
  std::printf("accepted             %llu\n",
              static_cast<unsigned long long>(report->accepted));
  std::printf("shed (predict)       %llu\n",
              static_cast<unsigned long long>(report->predict_shed));
  std::printf("shed (observe)       %llu\n",
              static_cast<unsigned long long>(report->observe_shed));
  std::printf("wall                 %.3f s\n", report->wall_seconds);
  std::printf("offered qps          %.0f\n", report->offered_qps);
  std::printf("achieved qps         %.0f\n", report->achieved_qps);
  std::printf("predict p50          %.3f ms\n", report->predict_p50_ms);
  std::printf("predict p99          %.3f ms\n", report->predict_p99_ms);
  std::printf("predict max          %.3f ms\n", report->predict_max_ms);
  std::printf("waves                %llu\n",
              static_cast<unsigned long long>(report->waves));
  std::printf("actor batches        %llu (%llu rows, occupancy %.2f)\n",
              static_cast<unsigned long long>(report->act_batches),
              static_cast<unsigned long long>(report->act_batch_rows),
              report->MeanBatchOccupancy());
  std::printf("drift events         %llu\n",
              static_cast<unsigned long long>(report->drift_events));
  std::printf("resident sessions    %llu (created %llu, lru %llu, ttl %llu)\n",
              static_cast<unsigned long long>(stats.sessions),
              static_cast<unsigned long long>(stats.sessions_created),
              static_cast<unsigned long long>(stats.evictions_lru),
              static_cast<unsigned long long>(stats.evictions_ttl));

  std::printf("\n--- windowed (last %.1f s) ---\n", stats.window_seconds);
  std::printf("window predict qps   %.0f\n", stats.window_predict_qps);
  std::printf("window shed rate     %.1f /s\n", stats.window_shed_rate);
  std::printf("window predict p50   %.3f ms\n", stats.window_predict_p50_s * 1e3);
  std::printf("window predict p99   %.3f ms\n", stats.window_predict_p99_s * 1e3);
  std::printf("queue delay          n=%llu mean %.3f ms p50 %.3f ms "
              "p99 %.3f ms max %.3f ms\n",
              static_cast<unsigned long long>(stats.queue_delay_count),
              stats.queue_delay_mean_s * 1e3, stats.queue_delay_p50_s * 1e3,
              stats.queue_delay_p99_s * 1e3, stats.queue_delay_max_s * 1e3);

  if (service.slo_tracker() != nullptr) {
    service.slo_tracker()->Evaluate();  // final edge check before reporting.
    const eadrl::obs::SloReport slo = service.slo_tracker()->Report();
    std::printf("\n--- slo report ---\n");
    for (const eadrl::obs::SloObjectiveReport& o : slo.objectives) {
      std::printf(
          "%-16s good %llu bad %llu budget %.2fx burn long %.2f short %.2f "
          "%s (breaches %llu, recoveries %llu)\n",
          o.name.c_str(), static_cast<unsigned long long>(o.good),
          static_cast<unsigned long long>(o.bad), o.budget_consumed,
          o.burn_rate_long, o.burn_rate_short,
          o.breached ? "BREACHED" : "ok",
          static_cast<unsigned long long>(o.breaches),
          static_cast<unsigned long long>(o.recoveries));
    }
  }

  if (args.tenant_top > 0 && service.tenant_drilldown() != nullptr) {
    const eadrl::obs::LabeledWindowedFamilySnapshot fam =
        service.tenant_drilldown()->Snapshot(args.tenant_top);
    std::printf(
        "\n--- tenant drill-down (top %zu of %zu tracked, overflow %llu, "
        "evictions %llu) ---\n",
        args.tenant_top, fam.tracked_labels,
        static_cast<unsigned long long>(fam.overflow),
        static_cast<unsigned long long>(fam.evictions));
    for (const eadrl::obs::LabeledWindowSnapshot& row : fam.top) {
      std::printf("%-16s n=%-6llu rate %6.1f/s p50 %7.3f ms p99 %7.3f ms\n",
                  row.label.c_str(),
                  static_cast<unsigned long long>(row.window.values.count),
                  row.window.Rate(), row.window.values.Quantile(0.5) * 1e3,
                  row.window.values.Quantile(0.99) * 1e3);
    }
  }

  if (args.ttl_seconds > 0.0) {
    const size_t evicted = service.EvictIdleSessions();
    std::printf("ttl sweep            evicted %zu\n", evicted);
  }

  int rc = 0;
  const uint64_t total_shed = report->predict_shed + report->observe_shed;
  if (args.expect_shed && total_shed == 0) {
    std::fprintf(stderr,
                 "FAIL: --expect-shed but admission control never shed\n");
    rc = 1;
  }
  if (args.min_occupancy > 0.0 &&
      report->MeanBatchOccupancy() < args.min_occupancy) {
    std::fprintf(stderr, "FAIL: mean occupancy %.2f < required %.2f\n",
                 report->MeanBatchOccupancy(), args.min_occupancy);
    rc = 1;
  }
  if (args.expect_slo_breach) {
    const eadrl::obs::SloTracker* slo = service.slo_tracker();
    if (slo == nullptr) {
      std::fprintf(stderr,
                   "FAIL: --expect-slo-breach requires --slo-latency-ms\n");
      rc = 1;
    } else if (slo->Report().TotalBreaches() == 0) {
      std::fprintf(stderr,
                   "FAIL: --expect-slo-breach but no slo_breach edge fired\n");
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.threads > 0) eadrl::par::SetDefaultThreads(args.threads);

  // Telemetry streaming: every registered event (serve_shed, slo_breach,
  // serve_evict, ...) becomes one JSON line. The sink outlives Run — the
  // service destructor can still emit eviction events while tearing down.
  std::unique_ptr<eadrl::obs::JsonLinesSink> telemetry_sink;
  if (!args.telemetry.empty()) {
    telemetry_sink = std::make_unique<eadrl::obs::JsonLinesSink>(args.telemetry);
    if (!telemetry_sink->ok()) {
      std::fprintf(stderr, "cannot open telemetry file %s\n",
                   args.telemetry.c_str());
      return 2;
    }
    eadrl::obs::SetTelemetrySink(telemetry_sink.get());
  }

  // Tracing (and the span profiler that rides on it) is armed for the whole
  // run when either export was requested.
  std::unique_ptr<eadrl::obs::TraceBuffer> trace_buffer;
  if (!args.trace.empty() || args.profile_report) {
    eadrl::obs::SetCurrentThreadTraceName("main");
    trace_buffer = std::make_unique<eadrl::obs::TraceBuffer>();
    eadrl::obs::SetTraceBuffer(trace_buffer.get());
  }

  const int rc = Run(args);

  if (telemetry_sink != nullptr) {
    eadrl::obs::SetTelemetrySink(nullptr);
    telemetry_sink->Flush();
    std::printf("telemetry written to %s\n", args.telemetry.c_str());
  }

  if (trace_buffer != nullptr) {
    eadrl::obs::SetTraceBuffer(nullptr);
    if (!args.trace.empty()) {
      eadrl::Status st = trace_buffer->WriteChromeTrace(args.trace);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      std::printf("trace written to %s (%zu spans)\n", args.trace.c_str(),
                  trace_buffer->size());
    }
    if (args.profile_report) {
      std::printf("\n%s\n", eadrl::obs::FormatSpanProfileReport().c_str());
    }
  }
  return rc;
}
