// eadrl_trace_check: validates a Chrome trace-event JSON file produced by
// eadrl::obs::TraceBuffer (the --trace flag of eadrl_forecast /
// example_quickstart). Checks that the file is well-formed JSON of the
// expected shape, that every duration event carries the required fields,
// that every span name is declared in src/obs/spans.def, and that every
// parent_id refers to a span present in the file (no dangling parents).
//
// Usage:
//   eadrl_trace_check trace.json
//
// Exit status: 0 clean, 1 validation failure, 2 usage/IO error. Used by
// tools/check.sh's trace-smoke stage.

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/json.h"
#include "obs/trace.h"

namespace {

using eadrl::json::Value;

int Fail(const std::string& what) {
  std::fprintf(stderr, "eadrl_trace_check: %s\n", what.c_str());
  return 1;
}

// args values are numbers, bools or strings; parent/span ids are numbers.
double NumberField(const Value& obj, const char* key, bool* ok) {
  const Value* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    *ok = false;
    return 0.0;
  }
  return v->AsNumber();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: eadrl_trace_check trace.json\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "eadrl_trace_check: cannot read %s\n", argv[1]);
    return 2;
  }
  std::ostringstream os;
  os << in.rdbuf();

  auto parsed = eadrl::json::Parse(os.str());
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const Value& root = parsed.value();
  if (!root.is_object()) return Fail("top level is not an object");
  const Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("missing traceEvents array");
  }

  std::set<double> span_ids;
  size_t duration_events = 0;
  size_t metadata_events = 0;
  for (const Value& event : events->AsArray()) {
    if (!event.is_object()) return Fail("trace event is not an object");
    const Value* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return Fail("trace event without a ph field");
    }
    if (ph->AsString() == "M") {
      ++metadata_events;
      continue;
    }
    if (ph->AsString() != "X") {
      return Fail("unexpected event phase '" + ph->AsString() + "'");
    }
    ++duration_events;
    const Value* name = event.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Fail("duration event without a name");
    }
    if (!eadrl::obs::IsRegisteredSpan(name->AsString().c_str())) {
      return Fail("span '" + name->AsString() +
                  "' is not registered in src/obs/spans.def");
    }
    bool ok = true;
    NumberField(event, "ts", &ok);
    NumberField(event, "dur", &ok);
    NumberField(event, "pid", &ok);
    NumberField(event, "tid", &ok);
    if (!ok) {
      return Fail("span '" + name->AsString() +
                  "' is missing a numeric ts/dur/pid/tid field");
    }
    const Value* args = event.Find("args");
    if (args == nullptr || !args->is_object()) {
      return Fail("span '" + name->AsString() + "' has no args object");
    }
    span_ids.insert(NumberField(*args, "span_id", &ok));
    NumberField(*args, "trace_id", &ok);
    if (!ok) {
      return Fail("span '" + name->AsString() +
                  "' args are missing span_id/trace_id");
    }
  }

  // Second pass: every parent_id must name a span exported in this file
  // (SetTraceBuffer(nullptr) drains in-flight records before export, so a
  // dangling parent would mean the causal chain is broken).
  for (const Value& event : events->AsArray()) {
    const Value* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || ph->AsString() != "X") continue;
    const Value* args = event.Find("args");
    const Value* parent = args == nullptr ? nullptr : args->Find("parent_id");
    if (parent == nullptr) continue;  // trace root
    if (!parent->is_number() || span_ids.count(parent->AsNumber()) == 0) {
      const Value* name = event.Find("name");
      return Fail("span '" +
                  (name != nullptr && name->is_string() ? name->AsString()
                                                        : "?") +
                  "' has a dangling parent_id");
    }
  }

  if (duration_events == 0) return Fail("no duration events in trace");
  std::printf("eadrl_trace_check: ok (%zu spans, %zu metadata events)\n",
              duration_events, metadata_events);
  return 0;
}
