// eadrl_forecast: command-line forecasting with the EA-DRL ensemble.
//
// Reads a univariate series from a CSV file (or generates one of the
// built-in benchmark datasets), fits the base-model pool, learns the
// combination policy offline, and prints an N-step forecast with empirical
// prediction intervals.
//
// Usage:
//   eadrl_forecast --csv data.csv [--column 0] [--skip-rows 1]
//   eadrl_forecast --dataset 9 [--length 400]
// Common options:
//   --horizon N       forecast steps (default 12)
//   --coverage C      interval coverage in (0,1) (default 0.9)
//   --full-pool       use all 43 base models (default: fast 10-model pool)
//   --episodes N      offline training episodes (default 30)
//   --save-policy F   write the trained policy to F
//   --seed S          RNG seed (default 42)
//   --threads N       worker threads for pool fitting / prediction fan-out
//                     (default: EADRL_THREADS env var, else hardware
//                     concurrency; 1 = fully serial)
// Observability:
//   --telemetry F     append JSON-lines training/inference events to F
//   --trace F         write a Chrome trace-event JSON file on exit (load it
//                     in Perfetto / chrome://tracing); EADRL_TRACE=F is the
//                     environment equivalent
//   --metrics-summary print a snapshot of all metrics on exit (includes
//                     process resource gauges: peak RSS, faults, context
//                     switches, scratch-allocation totals)
//   --metrics-format  snapshot format: json (default), csv, or prom
//                     (Prometheus text exposition)
//   --profile-report  print the span profiler's top self-time table on exit
//                     (wall time + attributed scratch allocations per span)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/eadrl.h"
#include "core/intervals.h"
#include "exp/experiment.h"
#include "models/forecaster.h"
#include "models/pool.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "ts/datasets.h"
#include "ts/diagnostics.h"
#include "ts/io.h"

namespace {

struct Args {
  std::string csv;
  int dataset = 0;
  size_t length = 400;
  size_t column = 0;
  size_t skip_rows = 0;
  size_t horizon = 12;
  double coverage = 0.9;
  bool full_pool = false;
  size_t episodes = 30;
  std::string save_policy;
  uint64_t seed = 42;
  size_t threads = 0;  // 0 = keep the EADRL_THREADS/hardware default.
  std::string telemetry;
  std::string trace;
  bool metrics_summary = false;
  std::string metrics_format = "json";
  bool profile_report = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args->csv = v;
    } else if (flag == "--dataset") {
      const char* v = next("--dataset");
      if (v == nullptr) return false;
      args->dataset = std::atoi(v);
    } else if (flag == "--length") {
      const char* v = next("--length");
      if (v == nullptr) return false;
      args->length = std::strtoul(v, nullptr, 10);
    } else if (flag == "--column") {
      const char* v = next("--column");
      if (v == nullptr) return false;
      args->column = std::strtoul(v, nullptr, 10);
    } else if (flag == "--skip-rows") {
      const char* v = next("--skip-rows");
      if (v == nullptr) return false;
      args->skip_rows = std::strtoul(v, nullptr, 10);
    } else if (flag == "--horizon") {
      const char* v = next("--horizon");
      if (v == nullptr) return false;
      args->horizon = std::strtoul(v, nullptr, 10);
    } else if (flag == "--coverage") {
      const char* v = next("--coverage");
      if (v == nullptr) return false;
      args->coverage = std::atof(v);
    } else if (flag == "--full-pool") {
      args->full_pool = true;
    } else if (flag == "--episodes") {
      const char* v = next("--episodes");
      if (v == nullptr) return false;
      args->episodes = std::strtoul(v, nullptr, 10);
    } else if (flag == "--save-policy") {
      const char* v = next("--save-policy");
      if (v == nullptr) return false;
      args->save_policy = v;
    } else if (flag == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      args->threads = std::strtoul(v, nullptr, 10);
      if (args->threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return false;
      }
    } else if (flag == "--telemetry") {
      const char* v = next("--telemetry");
      if (v == nullptr) return false;
      args->telemetry = v;
    } else if (flag == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      args->trace = v;
    } else if (flag == "--metrics-summary") {
      args->metrics_summary = true;
    } else if (flag == "--profile-report") {
      args->profile_report = true;
    } else if (flag == "--metrics-format") {
      const char* v = next("--metrics-format");
      if (v == nullptr) return false;
      args->metrics_format = v;
      if (args->metrics_format != "json" && args->metrics_format != "csv" &&
          args->metrics_format != "prom") {
        std::fprintf(stderr, "--metrics-format must be json, csv or prom\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->csv.empty() && args->dataset == 0) {
    std::fprintf(stderr,
                 "usage: eadrl_forecast --csv FILE | --dataset ID "
                 "[--horizon N] [--coverage C] [--full-pool]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.threads > 0) eadrl::par::SetDefaultThreads(args.threads);
  std::printf("threads: %zu\n", eadrl::par::DefaultThreads());

  // --- Observability. ------------------------------------------------------
  // The sinks outlive every instrumented call below. The guard uninstalls
  // and flushes them on *every* return path — early errors included — so a
  // telemetry file never ends mid-line and the trace file is always written.
  std::unique_ptr<eadrl::obs::JsonLinesSink> telemetry_sink;
  if (!args.telemetry.empty()) {
    telemetry_sink =
        std::make_unique<eadrl::obs::JsonLinesSink>(args.telemetry);
    if (!telemetry_sink->ok()) {
      std::fprintf(stderr, "cannot open telemetry file %s\n",
                   args.telemetry.c_str());
      return 1;
    }
    eadrl::obs::SetTelemetrySink(telemetry_sink.get());
  }
  if (args.trace.empty()) {
    const char* env_trace = std::getenv("EADRL_TRACE");
    if (env_trace != nullptr && *env_trace != '\0') args.trace = env_trace;
  }
  std::unique_ptr<eadrl::obs::TraceBuffer> trace_buffer;
  // The span profiler only sees armed spans, so --profile-report needs a
  // buffer installed even when no trace file was requested.
  if (!args.trace.empty() || args.profile_report) {
    eadrl::obs::SetCurrentThreadTraceName("main");
    trace_buffer = std::make_unique<eadrl::obs::TraceBuffer>();
    eadrl::obs::SetTraceBuffer(trace_buffer.get());
  }
  struct ObsGuard {
    eadrl::obs::JsonLinesSink* telemetry;
    eadrl::obs::TraceBuffer* trace;
    const std::string* trace_path;
    ~ObsGuard() {
      eadrl::obs::SetTelemetrySink(nullptr);
      if (telemetry != nullptr) telemetry->Flush();
      if (trace != nullptr) {
        // Unset drains in-flight Record calls before returning, so the
        // export below sees every finished span.
        eadrl::obs::SetTraceBuffer(nullptr);
        if (!trace_path->empty()) {
          eadrl::Status st = trace->WriteChromeTrace(*trace_path);
          if (!st.ok()) {
            std::fprintf(stderr, "%s\n", st.ToString().c_str());
          } else {
            std::printf("trace written to %s (%zu spans)\n",
                        trace_path->c_str(), trace->size());
          }
        }
      }
    }
  } obs_guard{telemetry_sink.get(), trace_buffer.get(), &args.trace};

  // --- Load the series. ----------------------------------------------------
  eadrl::ts::Series series;
  if (!args.csv.empty()) {
    eadrl::ts::CsvOptions csv;
    csv.value_column = args.column;
    csv.skip_rows = args.skip_rows;
    auto loaded = eadrl::ts::LoadCsv(args.csv, csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    series = std::move(loaded).value();
  } else {
    auto generated =
        eadrl::ts::MakeDataset(args.dataset, args.seed, args.length);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    series = std::move(generated).value();
  }
  std::printf("series: %s, %zu points\n", series.name().c_str(),
              series.size());

  // Seasonal-period detection helps the Holt-Winters pool member.
  if (series.seasonal_period() == 0) {
    size_t period = eadrl::ts::EstimateSeasonalPeriod(series.values());
    if (period > 0) {
      std::printf("detected seasonal period: %zu\n", period);
      series = eadrl::ts::Series(series.name(), series.values(),
                                 series.frequency(), period);
    }
  }

  // --- Fit pool + policy. --------------------------------------------------
  eadrl::exp::ExperimentOptions opt;
  opt.seed = args.seed;
  opt.pool.fast_mode = !args.full_pool;
  opt.pool.nn_epochs = 6;
  opt.eadrl.max_episodes = args.episodes;
  eadrl::exp::PoolRun pool_run = eadrl::exp::PreparePool(series, opt);
  std::printf("pool: %zu base models fitted\n",
              pool_run.model_names.size());

  eadrl::core::EadrlCombiner combiner(opt.eadrl);
  eadrl::Status st =
      combiner.Initialize(pool_run.val_preds, pool_run.val_actuals);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("policy trained (%zu episodes)\n",
              combiner.episode_rewards().size());

  // Calibrate intervals on the held-out test segment (one-step residuals).
  eadrl::math::Vec residuals;
  for (size_t t = 0; t < pool_run.test_actuals.size(); ++t) {
    eadrl::math::Vec preds = pool_run.test_preds.Row(t);
    double p = combiner.Predict(preds);
    combiner.Update(preds, pool_run.test_actuals[t]);
    residuals.push_back(pool_run.test_actuals[t] - p);
  }
  eadrl::core::EmpiricalIntervals intervals;
  st = intervals.Calibrate(residuals);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  if (!args.save_policy.empty()) {
    st = combiner.SavePolicy(args.save_policy);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("policy saved to %s\n", args.save_policy.c_str());
  }

  // --- Multi-step forecast (Algorithm 1): refit pool on the full series. ---
  auto models =
      eadrl::models::FitPool(eadrl::models::BuildPaperPool(opt.pool), series);
  std::printf("\n%4s %12s %12s %12s  (%.0f%% interval)\n", "step",
              "forecast", "lower", "upper", args.coverage * 100.0);
  for (size_t j = 0; j < args.horizon; ++j) {
    // Per-step ensemble fan-out (Algorithm 1's online prediction): every
    // base model predicts — then observes the ensemble output — in parallel;
    // ParallelMap keeps the predictions in pool order.
    eadrl::math::Vec base_preds = eadrl::par::ParallelMap<double>(
        models.size(), [&](size_t m) { return models[m]->PredictNext(); });
    double point = combiner.Predict(base_preds);
    auto interval = intervals.Interval(point, args.coverage);
    if (!interval.ok()) return 1;
    std::printf("%4zu %12.4f %12.4f %12.4f\n", j + 1, interval->point,
                interval->lower, interval->upper);
    eadrl::par::ParallelFor(0, models.size(),
                            [&](size_t m) { models[m]->Observe(point); });
  }

  if (telemetry_sink != nullptr) {
    telemetry_sink->Flush();
    std::printf("\ntelemetry written to %s\n", args.telemetry.c_str());
  }
  if (args.profile_report) {
    std::printf("\n%s", eadrl::obs::FormatSpanProfileReport().c_str());
  }
  if (args.metrics_summary) {
    // Fold the process resource view (peak RSS, faults, context switches,
    // scratch-allocation totals) into the registry before exporting it.
    eadrl::obs::UpdateResourceMetrics();
    const eadrl::obs::MetricRegistry& registry =
        eadrl::obs::MetricRegistry::Default();
    const std::string snapshot = args.metrics_format == "csv"
                                     ? registry.ToCsv()
                                     : args.metrics_format == "prom"
                                           ? registry.ToPrometheus()
                                           : registry.ToJson();
    std::printf("\nmetrics summary:\n%s\n", snapshot.c_str());
  }
  return 0;
}
