#!/usr/bin/env bash
# Full correctness gate (see DESIGN.md, "Correctness tooling"):
#
#   stage 1  lint    eadrl_lint over src/ tests/ bench/ tools/ examples/
#   stage 2  werror  zero-warning build of the whole tree (-Werror is the
#                    default; EADRL_WERROR=OFF is the escape hatch)
#   stage 3  trace   smoke: example_quickstart --trace, then eadrl_trace_check
#                    validates the exported Chrome trace (shape + span names)
#   stage 4  bench   smoke: eadrl_bench records a macro-workload snapshot,
#                    self-compares it (must pass), then proves the comparator
#                    catches an injected 2x synthetic regression (must fail)
#   stage 5  serve   smoke: eadrl_serve replays Poisson traffic against the
#                    serving layer (clean run + validated trace), then an
#                    oversubscribed run that must shed (--expect-shed)
#   stage 6  slo     smoke: a deliberately overloaded eadrl_serve run with a
#                    sub-millisecond SLO must fire slo_breach telemetry
#                    (--expect-slo-breach), and its exported Prometheus/JSON
#                    metric snapshots must validate under eadrl_metrics_check
#   stage 7  wthread clang -Wthread-safety analysis over the EADRL_GUARDED_BY
#                    annotations (skipped with a note when clang++ is not
#                    installed; eadrl_lint's guarded-by rules still gate)
#   stage 8  tsan    tier-1 suite under ThreadSanitizer, EADRL_THREADS=N,
#                    with the runtime lock-order tracker forced on
#                    (EADRL_LOCKDEP=1) so lockdep sees sanitizer-grade
#                    interleavings
#   stage 9  asan    tier-1 suite under AddressSanitizer
#   stage 10 ubsan   tier-1 suite under UndefinedBehaviorSanitizer
#                    (-fno-sanitize-recover=all: any UB aborts the test)
#
# Each stage reports wall-clock seconds; the summary at the end shows all of
# them. Exit is nonzero on the first failing stage.
#
# Usage: tools/check.sh [threads]
#   threads: EADRL_THREADS for the sanitizer test runs (default 4).
set -euo pipefail

THREADS="${1:-4}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

STAGE_NAMES=()
STAGE_SECONDS=()

run_stage() {
  local name="$1"
  shift
  echo
  echo "==== stage: $name ===="
  local start
  start=$(date +%s)
  "$@"
  local end
  end=$(date +%s)
  STAGE_NAMES+=("$name")
  STAGE_SECONDS+=("$((end - start))")
  echo "==== stage $name passed in $((end - start))s ===="
}

stage_lint() {
  cmake -B "$SRC_DIR/build-gate" -S "$SRC_DIR"
  cmake --build "$SRC_DIR/build-gate" -j "$JOBS" --target eadrl_lint
  "$SRC_DIR/build-gate/tools/lint/eadrl_lint" --root "$SRC_DIR"
}

stage_werror() {
  # EADRL_WERROR defaults ON, so this is simply "the tree builds".
  cmake --build "$SRC_DIR/build-gate" -j "$JOBS"
}

stage_trace_smoke() {
  # End-to-end tracing smoke: run the quickstart with --trace and validate
  # the export with eadrl_trace_check (well-formed Chrome trace JSON, every
  # span name registered in src/obs/spans.def, no dangling parent ids).
  local trace_dir
  trace_dir="$(mktemp -d)"
  "$SRC_DIR/build-gate/examples/example_quickstart" \
    --trace "$trace_dir/trace.json"
  "$SRC_DIR/build-gate/tools/eadrl_trace_check" "$trace_dir/trace.json"
  # set -e aborts the script on failure above, so only a clean pass needs
  # the cleanup (a failing run leaves the trace behind for inspection).
  rm -rf "$trace_dir"
}

stage_bench_smoke() {
  # Perf-trajectory smoke (see DESIGN.md, "Perf trajectory & resource
  # observability"): record a quick snapshot from the macro workloads only
  # (the google-benchmark suites are too slow for a gate), check that a
  # snapshot compares clean against itself, and self-test the comparator by
  # injecting a synthetic 2x slowdown — --compare must exit nonzero on it.
  local bench_dir
  bench_dir="$(mktemp -d)"
  "$SRC_DIR/build-gate/tools/eadrl_bench" \
    --skip-suites --episodes 2 --label smoke --out "$bench_dir/a.json"
  "$SRC_DIR/build-gate/tools/eadrl_bench" \
    --compare "$bench_dir/a.json" "$bench_dir/a.json"
  "$SRC_DIR/build-gate/tools/eadrl_bench" \
    --inject-regression "$bench_dir/a.json" "$bench_dir/slow.json" \
    --factor 2.0
  if "$SRC_DIR/build-gate/tools/eadrl_bench" \
    --compare "$bench_dir/a.json" "$bench_dir/slow.json"; then
    echo "bench comparator MISSED an injected 2x regression" >&2
    exit 1
  fi
  # Advisory drift check against the latest committed snapshot: macro
  # workloads on a developer box are too noisy for a hard gate, so a
  # regression verdict here warns instead of failing (the committed
  # BENCH_<n>.json lineage is the authoritative record).
  local latest
  latest="$(ls "$SRC_DIR"/BENCH_*.json 2>/dev/null | sort -V | tail -n 1)"
  if [[ -n "$latest" ]]; then
    if ! "$SRC_DIR/build-gate/tools/eadrl_bench" \
      --compare "$latest" "$bench_dir/a.json"; then
      echo "ADVISORY: smoke snapshot drifted from $(basename "$latest")" \
        "(not a gate failure; see README on interpreting BENCH compares)" >&2
    fi
  fi
  rm -rf "$bench_dir"
}

stage_serve_smoke() {
  # Serving-layer smoke (see DESIGN.md, "Serving layer"). Run 1: a short
  # Poisson replay must complete with zero failed requests and its Chrome
  # trace must validate (serve_* spans are registered in spans.def). Run 2:
  # an oversubscribed replay against tiny queue/in-flight bounds must
  # exercise admission control — --expect-shed makes a shed-free run the
  # failure.
  local serve_dir
  serve_dir="$(mktemp -d)"
  "$SRC_DIR/build-gate/tools/eadrl_serve" \
    --tenants 64 --requests 1500 --qps 30000 --episodes 2 \
    --threads "$THREADS" --trace "$serve_dir/serve_trace.json"
  "$SRC_DIR/build-gate/tools/eadrl_trace_check" "$serve_dir/serve_trace.json"
  "$SRC_DIR/build-gate/tools/eadrl_serve" \
    --tenants 64 --requests 1500 --qps 300000 --episodes 2 \
    --threads "$THREADS" --max-queue 32 --max-inflight 48 --expect-shed
  rm -rf "$serve_dir"
}

stage_slo_smoke() {
  # Live-observability smoke (see DESIGN.md, "Live serving observability").
  # An oversubscribed replay with a 10 us latency SLO must breach: the run
  # exits nonzero unless an slo_breach edge fired (--expect-slo-breach), the
  # telemetry stream must contain the registered slo_breach event, and both
  # exporter formats must validate — the Prometheus snapshot against the
  # exposition grammar (with the SLO series present) and a JSON snapshot
  # against the eadrl-metrics schema (with the windowed serve stats present).
  local slo_dir
  slo_dir="$(mktemp -d)"
  "$SRC_DIR/build-gate/tools/eadrl_serve" \
    --tenants 64 --requests 1500 --qps 300000 --episodes 2 \
    --threads "$THREADS" --max-queue 32 --max-inflight 48 \
    --slo-latency-ms 0.01 --slo-target 0.999 --expect-slo-breach \
    --telemetry "$slo_dir/events.jsonl" \
    --export-metrics "$slo_dir/metrics.prom" --export-interval 0.2 \
    --tenant-top 5
  grep -q '"kind":"slo_breach"' "$slo_dir/events.jsonl"
  "$SRC_DIR/build-gate/tools/eadrl_metrics_check" \
    --require eadrl_slo_burn_rate --require eadrl_serve_window_predict_qps \
    "$slo_dir/metrics.prom"
  "$SRC_DIR/build-gate/tools/eadrl_serve" \
    --tenants 16 --requests 400 --qps 50000 --episodes 2 \
    --threads "$THREADS" --slo-latency-ms 50 \
    --export-metrics "$slo_dir/metrics.json" --export-interval 0.2
  "$SRC_DIR/build-gate/tools/eadrl_metrics_check" \
    --require window_predict_qps --require slo "$slo_dir/metrics.json"
  rm -rf "$slo_dir"
}

stage_thread_safety() {
  # Static lock analysis, compiler half: build libeadrl under clang with
  # -Wthread-safety, which checks the EADRL_GUARDED_BY/REQUIRES annotations
  # structurally (the gcc tier-1 build compiles them to nothing). Optional
  # because the baked toolchain is gcc; skipping is a note, not a failure —
  # eadrl_lint's guarded-by/lock-order rules gate in stage 1 regardless.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed; skipping -Wthread-safety analysis" \
      "(eadrl_lint covers the guarded-by rules)"
    return 0
  fi
  local dir="$SRC_DIR/build-wthread"
  cmake -B "$dir" -S "$SRC_DIR" \
    -DCMAKE_CXX_COMPILER=clang++ -DEADRL_THREAD_SAFETY=ON
  cmake --build "$dir" -j "$JOBS" --target eadrl
}

stage_sanitizer() {
  local mode="$1"
  local dir="$SRC_DIR/build-$mode"
  cmake -B "$dir" -S "$SRC_DIR" \
    -DEADRL_SANITIZE="$mode" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$JOBS"
  # EADRL_LOCKDEP=1 forces the runtime lock-order tracker on (its default,
  # but explicit here so a developer's EADRL_LOCKDEP=0 environment cannot
  # silently weaken the gate) — under TSan this pairs lockdep's cycle
  # detection with sanitizer-grade interleavings.
  (cd "$dir" && EADRL_THREADS="$THREADS" EADRL_LOCKDEP=1 \
    ctest --output-on-failure -j 4)
}

run_stage lint stage_lint
run_stage werror stage_werror
run_stage trace stage_trace_smoke
run_stage bench stage_bench_smoke
run_stage serve stage_serve_smoke
run_stage slo stage_slo_smoke
run_stage wthread stage_thread_safety
run_stage tsan stage_sanitizer thread
run_stage asan stage_sanitizer address
run_stage ubsan stage_sanitizer undefined

echo
echo "==== all stages passed ===="
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-8s %ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECONDS[$i]}"
done
echo "tier-1 suite is clean under TSan, ASan and UBSan (EADRL_THREADS=$THREADS)"
