#!/usr/bin/env bash
# Tier-1 test suite under ThreadSanitizer with the parallel runtime enabled.
#
# Builds the whole tree with EADRL_SANITIZE=thread into build-tsan/ and runs
# ctest with EADRL_THREADS=4, so every parallelized path (FitPool,
# PreparePool, RunSuite, the restart fan-out, DdpgAgent::Update and the obs
# hot paths) executes on real pool workers under TSan.
#
# Usage: tools/check.sh [threads] [build-dir]
set -euo pipefail

THREADS="${1:-4}"
BUILD_DIR="${2:-build-tsan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DEADRL_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
EADRL_THREADS="$THREADS" ctest --output-on-failure
echo "tier-1 suite passed under TSan with EADRL_THREADS=$THREADS"
