// eadrl_bench: the perf-trajectory harness.
//
// Record mode runs every google-benchmark suite in a build's bench/
// directory (via --benchmark_format=json) plus three in-process macro
// workloads (an experiment-suite run, a predict/online-update loop, and a
// multi-tenant serving replay, all span-profiled), and writes a
// schema-versioned BENCH_<n>.json
// snapshot: per-benchmark wall/cpu time and iterations, process resource
// stats, per-span self-time/allocation rows, and the host configuration
// that produced it.
//
// Usage:
//   eadrl_bench --out BENCH_6.json [--label PR6] [--bench-dir build/bench]
//               [--min-time 0.05] [--skip-suites] [--skip-macro]
//               [--episodes N] [--threads N] [--trace F] [--profile-report]
//   eadrl_bench --compare BENCH_a.json BENCH_b.json
//               [--threshold 0.10] [--json]
//   eadrl_bench --inject-regression in.json out.json [--factor 2.0]
//
// --compare exits 0 when no matched benchmark regressed past the noise
// threshold, 1 otherwise (2 = usage / IO error) — so CI can gate on it.
// --inject-regression multiplies every timing in a snapshot by --factor;
// tools/check.sh uses it to prove the comparator actually detects a
// synthetic 2x regression (a self-test, not a perf claim).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/eadrl.h"
#include "exp/experiment.h"
#include "obs/bench_compare.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "par/parallel.h"
#include "serve/replay.h"
#include "serve/service.h"
#include "ts/datasets.h"

namespace {

using eadrl::Status;
using eadrl::StatusOr;
using eadrl::obs::BenchCompareOptions;
using eadrl::obs::BenchComparison;
using eadrl::obs::BenchEntry;
using eadrl::obs::BenchSnapshot;

// The google-benchmark suites a snapshot covers, in bench/ of the build dir.
constexpr const char* kGbmSuites[] = {"batched_kernels", "chk_bench",
                                      "micro_benchmarks", "parallel_bench",
                                      "serve_bench", "trace_bench",
                                      "window_bench"};

struct Args {
  std::string out;
  std::string label;
  std::string bench_dir = "build/bench";
  std::string min_time;  // empty = suite default.
  bool skip_suites = false;
  bool skip_macro = false;
  size_t episodes = 4;
  size_t threads = 0;
  std::string trace;
  bool profile_report = false;

  bool compare = false;
  std::string compare_baseline;
  std::string compare_current;
  double threshold = 0.10;
  bool json_output = false;

  bool inject = false;
  std::string inject_in;
  std::string inject_out;
  double inject_factor = 2.0;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: eadrl_bench --out FILE [--label L] [--bench-dir DIR]\n"
      "                   [--min-time SEC] [--skip-suites] [--skip-macro]\n"
      "                   [--episodes N] [--threads N] [--trace F]\n"
      "                   [--profile-report]\n"
      "       eadrl_bench --compare BASELINE CURRENT [--threshold T] "
      "[--json]\n"
      "       eadrl_bench --inject-regression IN OUT [--factor F]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      args->out = v;
    } else if (flag == "--label") {
      const char* v = next("--label");
      if (v == nullptr) return false;
      args->label = v;
    } else if (flag == "--bench-dir") {
      const char* v = next("--bench-dir");
      if (v == nullptr) return false;
      args->bench_dir = v;
    } else if (flag == "--min-time") {
      const char* v = next("--min-time");
      if (v == nullptr) return false;
      args->min_time = v;
    } else if (flag == "--skip-suites") {
      args->skip_suites = true;
    } else if (flag == "--skip-macro") {
      args->skip_macro = true;
    } else if (flag == "--episodes") {
      const char* v = next("--episodes");
      if (v == nullptr) return false;
      args->episodes = std::strtoul(v, nullptr, 10);
    } else if (flag == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      args->threads = std::strtoul(v, nullptr, 10);
      if (args->threads == 0) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return false;
      }
    } else if (flag == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return false;
      args->trace = v;
    } else if (flag == "--profile-report") {
      args->profile_report = true;
    } else if (flag == "--compare") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--compare needs BASELINE and CURRENT\n");
        return false;
      }
      args->compare = true;
      args->compare_baseline = argv[++i];
      args->compare_current = argv[++i];
    } else if (flag == "--threshold") {
      const char* v = next("--threshold");
      if (v == nullptr) return false;
      args->threshold = std::atof(v);
      if (args->threshold < 0.0) {
        std::fprintf(stderr, "--threshold must be >= 0\n");
        return false;
      }
    } else if (flag == "--json") {
      args->json_output = true;
    } else if (flag == "--inject-regression") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--inject-regression needs IN and OUT\n");
        return false;
      }
      args->inject = true;
      args->inject_in = argv[++i];
      args->inject_out = argv[++i];
    } else if (flag == "--factor") {
      const char* v = next("--factor");
      if (v == nullptr) return false;
      args->inject_factor = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->compare && !args->inject && args->out.empty()) {
    Usage();
    return false;
  }
  return true;
}

/// Runs one google-benchmark binary with JSON output and returns its parsed
/// entries, names prefixed "<suite>/".
StatusOr<std::vector<BenchEntry>> RunGbmSuite(const std::string& bench_dir,
                                              const std::string& suite,
                                              const std::string& min_time) {
  std::string cmd = bench_dir + "/" + suite + " --benchmark_format=json";
  if (!min_time.empty()) cmd += " --benchmark_min_time=" + min_time;
  cmd += " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return Status::Internal("popen failed for " + cmd);
  }
  std::string output;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) output.append(buf, n);
  const int rc = pclose(pipe);
  if (rc != 0) {
    return Status::Internal(suite + " exited with status " +
                            std::to_string(rc));
  }
  return eadrl::obs::ParseGoogleBenchmarkJson(output, suite + "/");
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Macro workload 1: the experiment grid on two small synthetic datasets —
/// pool fitting, every combiner, online evaluation, all under the
/// work-stealing pool. Exercises the same spans a real suite run emits.
Status RunSuiteWorkload(size_t episodes, std::vector<BenchEntry>* entries) {
  std::vector<eadrl::ts::Series> datasets;
  for (int id : {2, 3}) {
    auto series = eadrl::ts::MakeDataset(id, 42, 160);
    if (!series.ok()) return series.status();
    datasets.push_back(std::move(series).value());
  }
  eadrl::exp::ExperimentOptions opt;
  opt.seed = 42;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.max_episodes = episodes;
  opt.include_standalone = false;

  const auto start = std::chrono::steady_clock::now();
  size_t method_runs = 0;
  {
    eadrl::obs::Span span("bench_suite_workload");
    std::vector<eadrl::exp::DatasetResult> results =
        eadrl::exp::RunSuite(datasets, opt);
    for (const auto& r : results) method_runs += r.methods.size();
    span.SetAttr("method_runs", static_cast<int64_t>(method_runs));
  }
  BenchEntry entry;
  entry.name = "macro/suite_workload";
  entry.real_time_ns = ElapsedNs(start);
  entry.cpu_time_ns = entry.real_time_ns;  // single in-process run.
  entry.iterations = 1;
  entries->push_back(std::move(entry));
  std::printf("macro/suite_workload: %zu method runs, %.1f ms\n", method_runs,
              entries->back().real_time_ns / 1e6);
  return Status::Ok();
}

/// Macro workload 2: the online serving path — a trained combiner predicting
/// and fine-tuning step by step over a held-out segment, repeated to get a
/// per-step figure.
Status RunPredictLoopWorkload(size_t episodes,
                              std::vector<BenchEntry>* entries) {
  auto series = eadrl::ts::MakeDataset(2, 42, 240);
  if (!series.ok()) return series.status();
  eadrl::exp::ExperimentOptions opt;
  opt.seed = 42;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.max_episodes = episodes;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);
  eadrl::core::EadrlCombiner combiner(opt.eadrl);
  Status st = combiner.Initialize(pool.val_preds, pool.val_actuals);
  if (!st.ok()) return st;

  constexpr size_t kReps = 5;
  const size_t steps = pool.test_actuals.size();
  const auto start = std::chrono::steady_clock::now();
  double checksum = 0.0;
  {
    eadrl::obs::Span span("bench_predict_loop");
    for (size_t rep = 0; rep < kReps; ++rep) {
      for (size_t t = 0; t < steps; ++t) {
        eadrl::math::Vec preds = pool.test_preds.Row(t);
        checksum += combiner.Predict(preds);
        combiner.Update(preds, pool.test_actuals[t]);
      }
    }
    span.SetAttr("steps", static_cast<int64_t>(kReps * steps));
  }
  const double total_ns = ElapsedNs(start);
  BenchEntry entry;
  entry.name = "macro/predict_loop";
  entry.iterations = kReps * steps;
  entry.real_time_ns =
      total_ns / static_cast<double>(entry.iterations == 0 ? 1
                                                           : entry.iterations);
  entry.cpu_time_ns = entry.real_time_ns;
  entries->push_back(std::move(entry));
  std::printf("macro/predict_loop: %zu steps, %.1f us/step (checksum %.3f)\n",
              kReps * steps, entries->back().real_time_ns / 1e3, checksum);
  return Status::Ok();
}

/// Macro workload 3: the multi-tenant serving path — a trained policy behind
/// a ForecastService taking an open-loop Poisson replay across 200 tenants
/// through the cross-tenant batching queue. Records the end-to-end predict
/// p50/p99 and the per-accepted-request wall cost.
Status RunServeWorkload(size_t episodes, std::vector<BenchEntry>* entries) {
  auto series = eadrl::ts::MakeDataset(2, 42, 240);
  if (!series.ok()) return series.status();
  eadrl::exp::ExperimentOptions opt;
  opt.seed = 42;
  opt.pool.fast_mode = true;
  opt.pool.nn_epochs = 2;
  opt.eadrl.max_episodes = episodes;
  eadrl::exp::PoolRun pool = eadrl::exp::PreparePool(*series, opt);
  auto combiner = std::make_unique<eadrl::core::EadrlCombiner>(opt.eadrl);
  Status st = combiner->Initialize(pool.val_preds, pool.val_actuals);
  if (!st.ok()) return st;

  eadrl::serve::ServeConfig config;
  config.max_batch = 32;
  config.max_queue = 8192;
  config.linger_us = 200;
  eadrl::serve::ForecastService service(config);
  const size_t policy_id = service.RegisterPolicy(std::move(combiner));

  eadrl::serve::ReplayOptions replay;
  replay.tenants = 200;
  replay.requests = 4000;
  replay.target_qps = 20000.0;
  replay.seed = 42;
  replay.policy_id = policy_id;
  StatusOr<eadrl::serve::ReplayReport> report =
      eadrl::serve::RunOpenLoopReplay(&service, pool.test_preds,
                                      pool.test_actuals, replay);
  if (!report.ok()) return report.status();

  auto add = [entries](const char* name, double ns, size_t iterations) {
    BenchEntry entry;
    entry.name = name;
    entry.real_time_ns = ns;
    entry.cpu_time_ns = ns;
    entry.iterations = iterations;
    entries->push_back(std::move(entry));
  };
  const size_t accepted =
      report->accepted == 0 ? 1 : static_cast<size_t>(report->accepted);
  add("macro/serve_replay_per_request",
      report->wall_seconds * 1e9 / static_cast<double>(accepted), accepted);
  add("macro/serve_predict_p50", report->predict_p50_ms * 1e6, accepted);
  add("macro/serve_predict_p99", report->predict_p99_ms * 1e6, accepted);
  std::printf(
      "macro/serve_replay: %llu accepted, %llu shed, p50 %.3f ms, p99 %.3f "
      "ms, occupancy %.2f\n",
      static_cast<unsigned long long>(report->accepted),
      static_cast<unsigned long long>(report->predict_shed +
                                      report->observe_shed),
      report->predict_p50_ms, report->predict_p99_ms,
      report->MeanBatchOccupancy());
  return Status::Ok();
}

int RunRecord(const Args& args) {
  BenchSnapshot snapshot;
  snapshot.label = args.label;
  snapshot.host.hardware_threads = std::thread::hardware_concurrency();
  snapshot.host.default_threads =
      static_cast<uint32_t>(eadrl::par::DefaultThreads());
#ifdef EADRL_BUILD_TYPE
  snapshot.host.build_type = EADRL_BUILD_TYPE;
#endif
#ifdef EADRL_SANITIZE_MODE
  snapshot.host.sanitizer = EADRL_SANITIZE_MODE;
#endif
#if EADRL_CHECKS
  snapshot.host.checks = true;
#endif
  snapshot.host.compiler = __VERSION__;

  if (!args.skip_suites) {
    for (const char* suite : kGbmSuites) {
      std::printf("running %s ...\n", suite);
      StatusOr<std::vector<BenchEntry>> entries =
          RunGbmSuite(args.bench_dir, suite, args.min_time);
      if (!entries.ok()) {
        std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
        return 2;
      }
      std::printf("  %zu benchmarks\n", entries->size());
      for (BenchEntry& entry : *entries) {
        snapshot.entries.push_back(std::move(entry));
      }
    }
  }

  if (!args.skip_macro) {
    // The span profiler only feeds on armed spans, so install a trace buffer
    // even when no --trace path was asked for; profiling rides on tracing.
    eadrl::obs::SetCurrentThreadTraceName("main");
    auto trace_buffer = std::make_unique<eadrl::obs::TraceBuffer>();
    eadrl::obs::SetTraceBuffer(trace_buffer.get());
    eadrl::obs::ResetSpanProfileForTest();

    Status st = RunSuiteWorkload(args.episodes, &snapshot.entries);
    if (st.ok()) st = RunPredictLoopWorkload(args.episodes, &snapshot.entries);
    if (st.ok()) st = RunServeWorkload(args.episodes, &snapshot.entries);
    eadrl::obs::SetTraceBuffer(nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    snapshot.spans = eadrl::obs::SpanProfileSnapshot();
    if (!args.trace.empty()) {
      st = trace_buffer->WriteChromeTrace(args.trace);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
      std::printf("trace written to %s (%zu spans)\n", args.trace.c_str(),
                  trace_buffer->size());
    }
    if (args.profile_report) {
      std::printf("\n%s\n", eadrl::obs::FormatSpanProfileReport().c_str());
    }
  }

  snapshot.resources = eadrl::obs::SampleResources();
  snapshot.allocs = eadrl::obs::TotalAllocStats();
  eadrl::obs::UpdateResourceMetrics();

  Status st = eadrl::obs::WriteBenchSnapshot(snapshot, args.out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s: %zu benchmarks, %zu span rows, peak RSS %.1f MB\n",
              args.out.c_str(), snapshot.entries.size(),
              snapshot.spans.size(),
              static_cast<double>(snapshot.resources.peak_rss_bytes) / 1e6);
  return 0;
}

int RunCompare(const Args& args) {
  StatusOr<BenchSnapshot> baseline =
      eadrl::obs::LoadBenchSnapshot(args.compare_baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  StatusOr<BenchSnapshot> current =
      eadrl::obs::LoadBenchSnapshot(args.compare_current);
  if (!current.ok()) {
    std::fprintf(stderr, "%s\n", current.status().ToString().c_str());
    return 2;
  }
  BenchCompareOptions options;
  options.noise_threshold = args.threshold;
  BenchComparison comparison =
      eadrl::obs::CompareBenchSnapshots(*baseline, *current, options);
  const std::string report =
      args.json_output ? eadrl::obs::FormatComparisonJson(comparison, options)
                       : eadrl::obs::FormatComparisonHuman(comparison, options);
  std::printf("%s\n", report.c_str());
  return comparison.HasRegressions() ? 1 : 0;
}

int RunInject(const Args& args) {
  StatusOr<BenchSnapshot> snapshot =
      eadrl::obs::LoadBenchSnapshot(args.inject_in);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 2;
  }
  for (BenchEntry& entry : snapshot->entries) {
    entry.real_time_ns *= args.inject_factor;
    entry.cpu_time_ns *= args.inject_factor;
  }
  Status st = eadrl::obs::WriteBenchSnapshot(*snapshot, args.inject_out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s with all timings scaled by %g\n",
              args.inject_out.c_str(), args.inject_factor);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.compare) return RunCompare(args);
  if (args.inject) return RunInject(args);
  if (args.threads > 0) eadrl::par::SetDefaultThreads(args.threads);
  return RunRecord(args);
}
