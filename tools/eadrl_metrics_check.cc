// eadrl_metrics_check: validates a metrics snapshot written by
// eadrl::obs::MetricsExporter (the --export-metrics flag of eadrl_serve).
//
// JSON snapshots must parse strictly (common/json.h), carry a "schema"
// string starting with "eadrl-metrics-", a numeric "sequence" and
// "unix_seconds", and at least one of "metrics" / "sections" as a non-empty
// object. Prometheus snapshots are checked line by line against the text
// exposition grammar: '#' comment lines ("# TYPE <name> <kind>" must be
// well-formed), blank lines, or samples of the form `name value` /
// `name{label="v",...} value` with a legal metric name and a finite value.
//
// Usage:
//   eadrl_metrics_check [--format json|prom|auto] [--require NAME]... FILE
//
// --require NAME demands that NAME appears in the document (a metric family
// in prom mode, any key/name in JSON mode) — check.sh's slo-smoke stage uses
// it to prove the SLO series actually made it into the export.
//
// Exit status: 0 clean, 1 validation failure, 2 usage/IO error.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

using eadrl::json::Value;

int Fail(const std::string& what) {
  std::fprintf(stderr, "eadrl_metrics_check: %s\n", what.c_str());
  return 1;
}

bool IsMetricNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (!IsMetricNameChar(name[i], i == 0)) return false;
  }
  return true;
}

/// One exposition line that is not a comment or blank:
///   name[{key="value",...}] <float>
bool ValidSampleLine(const std::string& line, std::string* name) {
  size_t i = 0;
  while (i < line.size() && IsMetricNameChar(line[i], i == 0)) ++i;
  *name = line.substr(0, i);
  if (!ValidMetricName(*name)) return false;
  if (i < line.size() && line[i] == '{') {
    // Scan the label block; quotes may contain anything except a raw
    // newline (escapes pass through — we only need the closing brace).
    ++i;
    bool in_quotes = false;
    for (; i < line.size(); ++i) {
      if (in_quotes) {
        if (line[i] == '\\') {
          ++i;  // skip the escaped char
        } else if (line[i] == '"') {
          in_quotes = false;
        }
      } else if (line[i] == '"') {
        in_quotes = true;
      } else if (line[i] == '}') {
        break;
      }
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || (line[i] != ' ' && line[i] != '\t')) return false;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  char* end = nullptr;
  const double v = std::strtod(line.c_str() + i, &end);
  if (end == line.c_str() + i) return false;
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') return false;
  return !std::isnan(v);  // +Inf bucket bounds are legal sample values.
}

int CheckPrometheus(const std::string& text,
                    const std::vector<std::string>& required) {
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  size_t samples = 0;
  std::vector<std::string> names;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" comments must at least name a legal metric.
      std::istringstream c(line);
      std::string hash, kw, name, kind;
      c >> hash >> kw;
      if (kw == "TYPE") {
        if (!(c >> name >> kind) || !ValidMetricName(name)) {
          return Fail("line " + std::to_string(lineno) +
                      ": malformed # TYPE comment");
        }
        names.push_back(name);
      }
      continue;
    }
    std::string name;
    if (!ValidSampleLine(line, &name)) {
      return Fail("line " + std::to_string(lineno) +
                  ": not a valid exposition sample: " + line);
    }
    names.push_back(name);
    ++samples;
  }
  if (samples == 0) return Fail("no samples in exposition");
  for (const std::string& want : required) {
    bool found = false;
    for (const std::string& name : names) {
      if (name == want || name.rfind(want, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) return Fail("required metric missing: " + want);
  }
  std::printf("eadrl_metrics_check: ok (%zu samples)\n", samples);
  return 0;
}

int CheckJson(const std::string& text,
              const std::vector<std::string>& required) {
  auto parsed = eadrl::json::Parse(text);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const Value& root = parsed.value();
  if (!root.is_object()) return Fail("top level is not an object");

  const Value* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString().rfind("eadrl-metrics-", 0) != 0) {
    return Fail("missing or unrecognized \"schema\"");
  }
  const Value* sequence = root.Find("sequence");
  if (sequence == nullptr || !sequence->is_number()) {
    return Fail("missing numeric \"sequence\"");
  }
  const Value* unix_seconds = root.Find("unix_seconds");
  if (unix_seconds == nullptr || !unix_seconds->is_number()) {
    return Fail("missing numeric \"unix_seconds\"");
  }
  const Value* metrics = root.Find("metrics");
  const Value* sections = root.Find("sections");
  const bool has_metrics =
      metrics != nullptr && metrics->is_object() && !metrics->AsObject().empty();
  const bool has_sections = sections != nullptr && sections->is_object() &&
                            !sections->AsObject().empty();
  if (metrics != nullptr && !metrics->is_object()) {
    return Fail("\"metrics\" is not an object");
  }
  if (sections != nullptr && !sections->is_object()) {
    return Fail("\"sections\" is not an object");
  }
  if (!has_metrics && !has_sections) {
    return Fail("neither \"metrics\" nor \"sections\" has content");
  }
  // --require in JSON mode: the name must appear as a key somewhere in the
  // raw document — cheap, and exact enough for family names.
  for (const std::string& want : required) {
    if (text.find("\"" + want + "\"") == std::string::npos &&
        text.find(want) == std::string::npos) {
      return Fail("required name missing: " + want);
    }
  }
  std::printf("eadrl_metrics_check: ok (%s, sequence %.0f)\n",
              schema->AsString().c_str(), sequence->AsNumber());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "auto";
  std::vector<std::string> required;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--format") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --format\n");
        return 2;
      }
      format = argv[++i];
      if (format != "json" && format != "prom" && format != "auto") {
        std::fprintf(stderr, "--format must be json, prom or auto\n");
        return 2;
      }
    } else if (flag == "--require") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --require\n");
        return 2;
      }
      required.push_back(argv[++i]);
    } else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr,
                   "usage: eadrl_metrics_check [--format json|prom|auto] "
                   "[--require NAME]... FILE\n");
      return 2;
    } else if (path.empty()) {
      path = flag;
    } else {
      std::fprintf(stderr, "more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: eadrl_metrics_check [--format json|prom|auto] "
                 "[--require NAME]... FILE\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "eadrl_metrics_check: cannot read %s\n",
                 path.c_str());
    return 2;
  }
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();

  if (format == "auto") {
    format = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0
                 ? "json"
                 : "prom";
  }
  return format == "json" ? CheckJson(text, required)
                          : CheckPrometheus(text, required);
}
