// eadrl_lint driver: walks the tree, runs every rule in tools/lint/lint.cc,
// prints `file:line: rule-id: message` per finding, exits nonzero if any.
//
// Usage:
//   eadrl_lint --root <repo-root> [--events <events.def>]
//              [--spans <spans.def>] [dir...]
//   eadrl_lint --list-rules
//
// Default dirs: src tests bench tools examples. Directories named
// `lint_fixtures` are skipped — they hold intentionally-bad inputs for
// tests/lint_selftest.cc.

#include "tools/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string ReadAll(const fs::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  *ok = true;
  return os.str();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp";
}

std::string RepoRelative(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path events_def;  // default: <root>/src/obs/events.def
  fs::path spans_def;   // default: <root>/src/obs/spans.def
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& [id, what] : eadrl::lint::RuleCatalog()) {
        std::cout << id << ": " << what << "\n";
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_def = argv[++i];
    } else if (arg == "--spans" && i + 1 < argc) {
      spans_def = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "eadrl_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tests", "bench", "tools", "examples"};
  if (events_def.empty()) events_def = root / "src" / "obs" / "events.def";
  if (spans_def.empty()) spans_def = root / "src" / "obs" / "spans.def";

  std::vector<eadrl::lint::Finding> findings;
  eadrl::lint::Config config;
  bool events_ok = false;
  const std::string events_contents = ReadAll(events_def, &events_ok);
  if (events_ok) {
    config.registered_events = eadrl::lint::ParseEventsDef(
        RepoRelative(events_def, root), events_contents, &findings);
    config.have_events_registry = true;
  } else {
    std::cerr << "eadrl_lint: warning: no event registry at " << events_def
              << "; event-registry rules disabled\n";
  }
  bool spans_ok = false;
  const std::string spans_contents = ReadAll(spans_def, &spans_ok);
  if (spans_ok) {
    config.registered_spans = eadrl::lint::ParseSpansDef(
        RepoRelative(spans_def, root), spans_contents, &findings);
    config.have_spans_registry = true;
  } else {
    std::cerr << "eadrl_lint: warning: no span registry at " << spans_def
              << "; span-registry rules disabled\n";
  }

  // Deterministic order: collect, then sort.
  std::vector<fs::path> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::set<std::string> emitted_in_src;
  std::set<std::string> spans_in_scope;
  size_t scanned = 0;
  for (const fs::path& file : files) {
    bool ok = false;
    const std::string contents = ReadAll(file, &ok);
    if (!ok) {
      std::cerr << "eadrl_lint: cannot read " << file << "\n";
      return 2;
    }
    ++scanned;
    const std::string rel = RepoRelative(file, root);
    std::vector<eadrl::lint::Finding> file_findings =
        eadrl::lint::CheckFile(rel, contents, config);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    if (rel.rfind("src/", 0) == 0) {
      const std::set<std::string> kinds = eadrl::lint::EmittedEvents(contents);
      emitted_in_src.insert(kinds.begin(), kinds.end());
    }
    // Span usage counts from src/ and tools/ — both are held to the
    // registry, so both keep a spans.def entry alive.
    if (rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0) {
      const std::set<std::string> spans = eadrl::lint::UsedSpans(contents);
      spans_in_scope.insert(spans.begin(), spans.end());
    }
  }
  if (config.have_events_registry) {
    std::vector<eadrl::lint::Finding> stale =
        eadrl::lint::CheckRegistryStaleness(RepoRelative(events_def, root),
                                            config, emitted_in_src);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }
  if (config.have_spans_registry) {
    std::vector<eadrl::lint::Finding> stale =
        eadrl::lint::CheckSpanRegistryStaleness(RepoRelative(spans_def, root),
                                                config, spans_in_scope);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }

  for (const eadrl::lint::Finding& finding : findings) {
    std::cout << eadrl::lint::FormatFinding(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "eadrl_lint: " << findings.size() << " finding(s) in "
              << scanned << " file(s)\n";
    return 1;
  }
  std::cerr << "eadrl_lint: clean (" << scanned << " files)\n";
  return 0;
}
