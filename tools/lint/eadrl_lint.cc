// eadrl_lint driver: walks the tree, runs every rule in tools/lint/lint.cc,
// prints `file:line: rule-id: message` per finding, exits nonzero if any.
//
// Usage:
//   eadrl_lint --root <repo-root> [--events <events.def>]
//              [--spans <spans.def>] [--locks <lock_order.def>]
//              [--format=text|json] [dir...]
//   eadrl_lint --list-rules
//
// Default dirs: src tests bench tools examples. Directories named
// `lint_fixtures` are skipped — they hold intentionally-bad inputs for
// tests/lint_selftest.cc.
//
// The lock rules need a repo-global view: ranked mutex member names must be
// unique across src/, so the driver first collects every binding site
// (CollectLockBindings) into one name -> rank map, flagging conflicts and
// unknown ranks, then runs the per-file checks against that map.

#include "tools/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string ReadAll(const fs::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  *ok = true;
  return os.str();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp";
}

std::string RepoRelative(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path events_def;  // default: <root>/src/obs/events.def
  fs::path spans_def;   // default: <root>/src/obs/spans.def
  fs::path locks_def;   // default: <root>/src/chk/lock_order.def
  bool json = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& [id, what] : eadrl::lint::RuleCatalog()) {
        std::cout << id << ": " << what << "\n";
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_def = argv[++i];
    } else if (arg == "--spans" && i + 1 < argc) {
      spans_def = argv[++i];
    } else if (arg == "--locks" && i + 1 < argc) {
      locks_def = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value != "text" && value != "json") {
        std::cerr << "eadrl_lint: unknown format " << value << "\n";
        return 2;
      }
      json = value == "json";
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value != "text" && value != "json") {
        std::cerr << "eadrl_lint: unknown format " << value << "\n";
        return 2;
      }
      json = value == "json";
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "eadrl_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tests", "bench", "tools", "examples"};
  if (events_def.empty()) events_def = root / "src" / "obs" / "events.def";
  if (spans_def.empty()) spans_def = root / "src" / "obs" / "spans.def";
  if (locks_def.empty()) locks_def = root / "src" / "chk" / "lock_order.def";

  std::vector<eadrl::lint::Finding> findings;
  eadrl::lint::Config config;
  bool events_ok = false;
  const std::string events_contents = ReadAll(events_def, &events_ok);
  if (events_ok) {
    config.registered_events = eadrl::lint::ParseEventsDef(
        RepoRelative(events_def, root), events_contents, &findings);
    config.have_events_registry = true;
  } else {
    std::cerr << "eadrl_lint: warning: no event registry at " << events_def
              << "; event-registry rules disabled\n";
  }
  bool spans_ok = false;
  const std::string spans_contents = ReadAll(spans_def, &spans_ok);
  if (spans_ok) {
    config.registered_spans = eadrl::lint::ParseSpansDef(
        RepoRelative(spans_def, root), spans_contents, &findings);
    config.have_spans_registry = true;
  } else {
    std::cerr << "eadrl_lint: warning: no span registry at " << spans_def
              << "; span-registry rules disabled\n";
  }
  bool locks_ok = false;
  const std::string locks_contents = ReadAll(locks_def, &locks_ok);
  if (locks_ok) {
    config.registered_locks = eadrl::lint::ParseLockOrderDef(
        RepoRelative(locks_def, root), locks_contents, &findings,
        &config.lock_order);
    config.have_lock_registry = true;
  } else {
    std::cerr << "eadrl_lint: warning: no lock registry at " << locks_def
              << "; lock rules disabled\n";
  }

  // Deterministic order: collect, then sort.
  std::vector<fs::path> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: read everything once; merge ranked-mutex bindings across src/
  // into the repo-global name -> rank map the lock-order rule matches
  // against. A name bound to two different ranks would make the terminal-
  // identifier match ambiguous, so it is a finding, not a silent pick.
  std::vector<std::pair<std::string, std::string>> sources;  // rel, contents
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    bool ok = false;
    std::string contents = ReadAll(file, &ok);
    if (!ok) {
      std::cerr << "eadrl_lint: cannot read " << file << "\n";
      return 2;
    }
    sources.emplace_back(RepoRelative(file, root), std::move(contents));
  }
  struct BindingHome {
    std::string rank;
    std::string file;
    size_t line;
  };
  std::map<std::string, BindingHome> bindings;
  std::set<std::string> bound_ranks;
  if (config.have_lock_registry) {
    for (const auto& [rel, contents] : sources) {
      if (rel.rfind("src/", 0) != 0) continue;
      for (const eadrl::lint::LockBindingSite& site :
           eadrl::lint::CollectLockBindings(contents)) {
        bound_ranks.insert(site.rank);
        const auto [it, inserted] =
            bindings.emplace(site.name, BindingHome{site.rank, rel, site.line});
        if (!inserted && it->second.rank != site.rank) {
          findings.push_back(
              {rel, site.line, "lock-registry",
               "mutex member '" + site.name + "' is bound to rank " +
                   site.rank + " here but to rank " + it->second.rank +
                   " at " + it->second.file + ":" +
                   std::to_string(it->second.line) +
                   "; ranked member names must be repo-unique"});
        }
      }
    }
    for (const auto& [name, home] : bindings) {
      config.lock_bindings.emplace(name, home.rank);
    }
  }

  std::set<std::string> emitted_in_src;
  std::set<std::string> spans_in_scope;
  size_t scanned = 0;
  for (const auto& [rel, contents] : sources) {
    ++scanned;
    std::vector<eadrl::lint::Finding> file_findings =
        eadrl::lint::CheckFile(rel, contents, config);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    if (rel.rfind("src/", 0) == 0) {
      const std::set<std::string> kinds = eadrl::lint::EmittedEvents(contents);
      emitted_in_src.insert(kinds.begin(), kinds.end());
    }
    // Span usage counts from src/ and tools/ — both are held to the
    // registry, so both keep a spans.def entry alive.
    if (rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0) {
      const std::set<std::string> spans = eadrl::lint::UsedSpans(contents);
      spans_in_scope.insert(spans.begin(), spans.end());
    }
  }
  if (config.have_events_registry) {
    std::vector<eadrl::lint::Finding> stale =
        eadrl::lint::CheckRegistryStaleness(RepoRelative(events_def, root),
                                            config, emitted_in_src);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }
  if (config.have_spans_registry) {
    std::vector<eadrl::lint::Finding> stale =
        eadrl::lint::CheckSpanRegistryStaleness(RepoRelative(spans_def, root),
                                                config, spans_in_scope);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }
  if (config.have_lock_registry) {
    std::vector<eadrl::lint::Finding> stale =
        eadrl::lint::CheckLockRegistryStaleness(RepoRelative(locks_def, root),
                                                config, bound_ranks);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }

  if (json) {
    std::cout << "[";
    for (size_t i = 0; i < findings.size(); ++i) {
      std::cout << (i == 0 ? "\n  " : ",\n  ")
                << eadrl::lint::FormatFindingJson(findings[i]);
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const eadrl::lint::Finding& finding : findings) {
      std::cout << eadrl::lint::FormatFinding(finding) << "\n";
    }
  }
  if (!findings.empty()) {
    std::cerr << "eadrl_lint: " << findings.size() << " finding(s) in "
              << scanned << " file(s)\n";
    return 1;
  }
  std::cerr << "eadrl_lint: clean (" << scanned << " files)\n";
  return 0;
}
